//! # FINGERS reproduction — umbrella crate
//!
//! A from-scratch Rust reproduction of *FINGERS: Exploiting Fine-Grained
//! Parallelism in Graph Mining Accelerators* (Chen, Tian, Gao — ASPLOS
//! 2022), including every substrate the paper depends on:
//!
//! | Crate | What it provides |
//! |-------|------------------|
//! | [`graph`] | CSR graphs, generators, Table 1 dataset stand-ins |
//! | [`pattern`] | Pattern-aware execution-plan compiler (orders, Eq. 1 schedules, symmetry breaking) |
//! | [`setops`] | Merge kernels + the segmented pipeline (head lists, task dividers, IU bitvectors, result collection) |
//! | [`mining`] | Software reference miner + brute-force oracle |
//! | [`sim`] | Shared-cache / DRAM / memory-system timing models |
//! | [`core`] | The FINGERS accelerator model (PE + chip + area/power) |
//! | [`flexminer`] | The FlexMiner baseline accelerator model |
//!
//! This umbrella crate re-exports everything under one namespace for the
//! examples and integration tests; applications can equally depend on the
//! individual crates.
//!
//! # Quickstart
//!
//! ```
//! use fingers_repro::core::chip::simulate_fingers;
//! use fingers_repro::core::config::ChipConfig;
//! use fingers_repro::graph::GraphBuilder;
//! use fingers_repro::pattern::benchmarks::Benchmark;
//!
//! let g = GraphBuilder::new()
//!     .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
//!     .build();
//! let report = simulate_fingers(&g, &Benchmark::Tc.plan(), &ChipConfig::single_pe());
//! assert_eq!(report.total_embeddings(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fingers_core as core;
pub use fingers_flexminer as flexminer;
pub use fingers_graph as graph;
pub use fingers_mining as mining;
pub use fingers_pattern as pattern;
pub use fingers_setops as setops;
pub use fingers_sim as sim;
