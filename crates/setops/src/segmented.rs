//! End-to-end segmented set-operation pipeline.
//!
//! Glues segmentation → head lists → task-divider pairing → IU execution →
//! result collection into one call, returning both the exact result (always
//! equal to the whole-list merge kernels — enforced by property tests) and
//! the statistics the accelerator timing model consumes: per-workload IU
//! cycles, divider cycles, and collector receive counts.

use serde::{Deserialize, Serialize};

use crate::bitvector::{iu_execute, IuEmission, SegmentSide};
use crate::collector::ResultCollector;
use crate::pairing::{pair, Workload};
use crate::segment::Segments;
use crate::{Elem, SegmentedConfig, SetOpKind};

/// Outcome of one segmented set operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentedOutcome {
    /// The exact operation result (sorted, duplicate-free).
    pub result: Vec<Elem>,
    /// Busy cycles of each IU workload, in issue order. The PE timing model
    /// schedules these onto physical IUs.
    pub workload_cycles: Vec<u64>,
    /// The balanced workloads themselves (long segment + short run each).
    pub workloads: Vec<Workload>,
    /// Task-divider busy cycles (head-list streaming).
    pub divider_cycles: u64,
    /// Number of `(segment, bitvector)` results the collector received; the
    /// serial collection time is proportional to this.
    pub collector_receives: u64,
}

impl SegmentedOutcome {
    /// Total IU busy cycles across all workloads.
    pub fn total_iu_cycles(&self) -> u64 {
        self.workload_cycles.iter().sum()
    }
}

/// Executes `kind` on `(short, long)` through the full segmented pipeline.
///
/// Both inputs must be sorted and duplicate-free. The result always equals
/// [`merge::apply`](crate::merge::apply) on the same inputs.
///
/// # Example
///
/// ```
/// use fingers_setops::{segmented, SetOpKind, SegmentedConfig};
/// let out = segmented::execute(
///     SetOpKind::Subtract,
///     &[1, 7, 11, 18],
///     &[1, 3, 4, 5, 7, 8, 9, 12, 13, 15, 18, 22, 26, 28],
///     &SegmentedConfig { long_segment_len: 8, short_segment_len: 4, max_load: 2 },
/// );
/// assert_eq!(out.result, vec![11]); // the paper's Figure 8 answer
/// ```
pub fn execute(
    kind: SetOpKind,
    short: &[Elem],
    long: &[Elem],
    config: &SegmentedConfig,
) -> SegmentedOutcome {
    let long_segs = Segments::new(long, config.long_segment_len);
    let short_segs = Segments::new(short, config.short_segment_len);
    let long_heads = long_segs.head_list();
    let short_heads = short_segs.head_list();
    let short_lasts: Vec<Elem> = (0..short_segs.count())
        .map(|i| short_segs.last_of(i))
        .collect();

    let pairing = pair(
        &long_heads,
        &short_heads,
        &short_lasts,
        kind,
        config.max_load,
    );

    // Execute every workload on a (virtual) IU.
    let mut emissions: Vec<IuEmission> = Vec::new();
    let mut workload_cycles = Vec::with_capacity(pairing.workloads.len());
    for w in &pairing.workloads {
        let shorts: Vec<(usize, &[Elem])> =
            w.shorts.clone().map(|i| (i, short_segs.get(i))).collect();
        let out = iu_execute(kind, w.long_idx, long_segs.get(w.long_idx), &shorts);
        workload_cycles.push(out.cycles);
        emissions.extend(out.emissions);
    }

    // For subtraction, short segments that overlapped no long segment pass
    // through unchanged: inject zero bitvectors for them.
    if kind == SetOpKind::Subtract {
        for i in pairing.unpaired_shorts.clone() {
            emissions.push(IuEmission {
                side: SegmentSide::Short,
                seg_idx: i,
                bitvec: crate::bitvector::SegBitvec::zeros(short_segs.get(i).len()),
            });
        }
    }

    // Round-robin collection: results for the same segment must be adjacent
    // and segments in increasing order. Workloads are generated in long-
    // segment order; for subtraction, re-key by short segment.
    emissions.sort_by_key(|e| e.seg_idx);

    let mut collector = ResultCollector::new(kind);
    for e in emissions {
        let elems = match e.side {
            SegmentSide::Long => long_segs.get(e.seg_idx),
            SegmentSide::Short => short_segs.get(e.seg_idx),
        };
        collector.receive(e.seg_idx, elems, e.bitvec);
    }
    let collector_receives = collector.receive_count();
    let result = collector.finish();

    SegmentedOutcome {
        result,
        workload_cycles,
        workloads: pairing.workloads,
        divider_cycles: pairing.divider_cycles,
        collector_receives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge;
    use proptest::prelude::*;

    fn small_config() -> SegmentedConfig {
        SegmentedConfig {
            long_segment_len: 4,
            short_segment_len: 2,
            max_load: 2,
        }
    }

    #[test]
    fn empty_inputs() {
        for kind in SetOpKind::ALL {
            let out = execute(kind, &[], &[], &SegmentedConfig::default());
            assert!(out.result.is_empty(), "{kind}");
        }
    }

    #[test]
    fn empty_short_set() {
        let long = [1, 2, 3, 4, 5];
        let cfg = SegmentedConfig::default();
        assert!(execute(SetOpKind::Intersect, &[], &long, &cfg)
            .result
            .is_empty());
        assert!(execute(SetOpKind::Subtract, &[], &long, &cfg)
            .result
            .is_empty());
        assert_eq!(
            execute(SetOpKind::AntiSubtract, &[], &long, &cfg).result,
            long.to_vec()
        );
    }

    #[test]
    fn empty_long_set() {
        let short = [1, 2, 3];
        let cfg = SegmentedConfig::default();
        assert!(execute(SetOpKind::Intersect, &short, &[], &cfg)
            .result
            .is_empty());
        assert_eq!(
            execute(SetOpKind::Subtract, &short, &[], &cfg).result,
            short.to_vec()
        );
        assert!(execute(SetOpKind::AntiSubtract, &short, &[], &cfg)
            .result
            .is_empty());
    }

    #[test]
    fn figure_8_full_pipeline() {
        // Figure 8: short [1, 7, 11, 18] minus the long list whose first two
        // segments are [1, 3, 4, 5, 7, 8, 9, 12] and [13, 15, 18, 22, ...].
        let short = [1, 7, 11, 18];
        let long = [1, 3, 4, 5, 7, 8, 9, 12, 13, 15, 18, 22, 26, 28, 33, 34];
        let cfg = SegmentedConfig {
            long_segment_len: 8,
            short_segment_len: 4,
            max_load: 2,
        };
        let out = execute(SetOpKind::Subtract, &short, &long, &cfg);
        assert_eq!(out.result, vec![11]);
    }

    #[test]
    fn statistics_are_populated() {
        let short: Vec<Elem> = (0..20).map(|i| i * 3).collect();
        let long: Vec<Elem> = (0..50).collect();
        let out = execute(SetOpKind::Intersect, &short, &long, &small_config());
        assert!(!out.workloads.is_empty());
        assert_eq!(out.workload_cycles.len(), out.workloads.len());
        assert!(out.total_iu_cycles() > 0);
        assert!(out.divider_cycles > 0);
        assert!(out.collector_receives >= out.workloads.len() as u64);
    }

    #[test]
    fn identical_sets_intersect_to_themselves() {
        let set: Vec<Elem> = (0..40).map(|i| i * 2).collect();
        let cfg = SegmentedConfig::default();
        assert_eq!(execute(SetOpKind::Intersect, &set, &set, &cfg).result, set);
        assert!(execute(SetOpKind::Subtract, &set, &set, &cfg)
            .result
            .is_empty());
        assert!(execute(SetOpKind::AntiSubtract, &set, &set, &cfg)
            .result
            .is_empty());
    }

    #[test]
    fn single_element_sets() {
        let cfg = SegmentedConfig::default();
        assert_eq!(
            execute(SetOpKind::Intersect, &[5], &[5], &cfg).result,
            vec![5]
        );
        assert!(execute(SetOpKind::Intersect, &[5], &[6], &cfg)
            .result
            .is_empty());
        assert_eq!(
            execute(SetOpKind::Subtract, &[5], &[6], &cfg).result,
            vec![5]
        );
        assert_eq!(
            execute(SetOpKind::AntiSubtract, &[5], &[4, 6], &cfg).result,
            vec![4, 6]
        );
    }

    #[test]
    fn max_load_one_still_exact() {
        let short: Vec<Elem> = (0..30).collect();
        let long: Vec<Elem> = (10..60).collect();
        let cfg = SegmentedConfig {
            long_segment_len: 4,
            short_segment_len: 2,
            max_load: 1,
        };
        let out = execute(SetOpKind::Intersect, &short, &long, &cfg);
        let expected: Vec<Elem> = (10..30).collect();
        assert_eq!(out.result, expected);
        // max_load 1 forces many single-short workloads.
        assert!(out.workloads.iter().all(|w| w.load() <= 1));
    }

    #[test]
    fn disjoint_ranges_cost_little() {
        // Short set entirely below the long set: intersection pairs nothing.
        let short: Vec<Elem> = (0..50).collect();
        let long: Vec<Elem> = (1000..1200).collect();
        let out = execute(
            SetOpKind::Intersect,
            &short,
            &long,
            &SegmentedConfig::default(),
        );
        assert!(out.result.is_empty());
        assert!(out.workloads.is_empty(), "no overlapping segments to pair");
    }

    fn sorted_set(max_val: u32, max_len: usize) -> impl Strategy<Value = Vec<Elem>> {
        proptest::collection::btree_set(0..max_val, 0..max_len)
            .prop_map(|s| s.into_iter().collect())
    }

    proptest! {
        /// The headline invariant: the segmented pipeline computes exactly
        /// the same set as the whole-list merge kernels, for every
        /// operation, every input shape, and every segmentation geometry.
        #[test]
        fn pipeline_matches_merge_reference(
            short in sorted_set(300, 60),
            long in sorted_set(300, 120),
            long_len in 1usize..20,
            short_len in 1usize..8,
            max_load in 1usize..5,
        ) {
            let cfg = SegmentedConfig {
                long_segment_len: long_len,
                short_segment_len: short_len,
                max_load,
            };
            for kind in SetOpKind::ALL {
                let expected = merge::apply(kind, &short, &long);
                let got = execute(kind, &short, &long, &cfg);
                prop_assert_eq!(&got.result, &expected, "kind {}", kind);
            }
        }

        /// Total IU work is bounded by a small multiple of the input sizes:
        /// over-pairing may re-stream segments, but never blows up.
        #[test]
        fn work_is_bounded(
            short in sorted_set(300, 60),
            long in sorted_set(300, 120),
        ) {
            let cfg = SegmentedConfig::default();
            for kind in SetOpKind::ALL {
                let out = execute(kind, &short, &long, &cfg);
                let bound = (4 * (short.len() + long.len()) + 64) as u64;
                prop_assert!(out.total_iu_cycles() <= bound,
                    "kind {}: {} > {}", kind, out.total_iu_cycles(), bound);
            }
        }
    }
}
