//! The task-divider model: segment pairing, load table, load balancing.
//!
//! Paper Section 4.2 / Figure 7: the divider organizes the long head list as
//! a binary tree, streams each short head through it to find `pos_i` (the
//! index of the long head immediately larger than the short head), fills a
//! load table with the number and starting index of the short segments
//! paired with each long segment, and finally splits over-loaded long
//! segments across multiple intersect units using a maximum-load threshold.

use serde::{Deserialize, Serialize};
use std::ops::Range;

use crate::{Elem, SetOpKind};

/// One intersect-unit workload: one long segment plus a contiguous run of
/// paired short segments (possibly empty, for anti-subtraction).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Index of the long segment this IU streams.
    pub long_idx: usize,
    /// Half-open range of paired short-segment indices.
    pub shorts: Range<usize>,
}

impl Workload {
    /// Number of short segments in this workload.
    pub fn load(&self) -> usize {
        self.shorts.len()
    }
}

/// Complete output of one task-divider pass over a pair of head lists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pairing {
    /// Per-long-segment load (number of paired short segments): the load
    /// table of Figure 7.
    pub load_table: Vec<usize>,
    /// Per-long-segment starting short-segment index (meaningful when the
    /// load is non-zero).
    pub start_table: Vec<usize>,
    /// Balanced IU workloads (the task table of Figure 7), in long-segment
    /// order.
    pub workloads: Vec<Workload>,
    /// Prefix of short segments that overlap no long segment at all. For
    /// subtraction these pass through unmodified; for intersection they
    /// contribute nothing.
    pub unpaired_shorts: Range<usize>,
    /// Divider busy cycles: one per streamed short head plus one per long
    /// head scanned when emitting the task table. Head lists are shorter
    /// than the sets by `s_l`/`s_s`, which is why this never dominates the
    /// IU compute time (Section 4.2, "Overheads of task dividers").
    pub divider_cycles: u64,
}

/// Pairs the segments of a short and a long set from their head lists and
/// balances the loads onto IU workloads.
///
/// `short_lasts[i]` must be the largest element of short segment `i`; the
/// hardware equivalently uses the next short head as the exclusive bound,
/// with the real tail bound for the final segment.
///
/// For `SetOpKind::AntiSubtract`, long segments with zero paired short
/// segments still produce (empty) workloads, because their elements all
/// survive `long − short` (Figure 7's "omit... except for anti-subtraction").
///
/// # Panics
///
/// Panics if `max_load == 0` or if the head/last arrays disagree in length.
pub fn pair(
    long_heads: &[Elem],
    short_heads: &[Elem],
    short_lasts: &[Elem],
    kind: SetOpKind,
    max_load: usize,
) -> Pairing {
    assert!(max_load > 0, "max_load must be positive");
    assert_eq!(
        short_heads.len(),
        short_lasts.len(),
        "one last element per short segment"
    );

    let n_long = long_heads.len();
    let n_short = short_heads.len();
    let mut load_table = vec![0usize; n_long];
    let mut start_table = vec![0usize; n_long];
    let mut unpaired_end = 0usize;

    for i in 0..n_short {
        // First long head strictly greater than the short segment's bounds.
        let q = long_heads.partition_point(|&h| h <= short_lasts[i]);
        if q == 0 {
            // The whole short segment lies before the first long segment.
            unpaired_end = i + 1;
            continue;
        }
        let pos = long_heads.partition_point(|&h| h <= short_heads[i]);
        let lo = pos.saturating_sub(1);
        let hi = q - 1;
        for j in lo..=hi {
            if load_table[j] == 0 {
                start_table[j] = i;
            }
            load_table[j] += 1;
        }
    }

    let mut workloads = Vec::new();
    for j in 0..n_long {
        let load = load_table[j];
        if load == 0 {
            if kind == SetOpKind::AntiSubtract {
                workloads.push(Workload {
                    long_idx: j,
                    shorts: 0..0,
                });
            }
            continue;
        }
        let start = start_table[j];
        let mut chunk_start = start;
        while chunk_start < start + load {
            let chunk_end = (chunk_start + max_load).min(start + load);
            workloads.push(Workload {
                long_idx: j,
                shorts: chunk_start..chunk_end,
            });
            chunk_start = chunk_end;
        }
    }

    Pairing {
        load_table,
        start_table,
        workloads,
        unpaired_shorts: 0..unpaired_end,
        divider_cycles: (n_short + n_long) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The head lists of the paper's Figure 7: long heads 10, 25, 44, 57,
    /// 68, 80 (with a binary tree of 10/44/68 at the top) and short heads
    /// 26, 33, 47, 50, 76.
    #[test]
    fn figure_7_example() {
        let long_heads = [10, 25, 44, 57, 68, 80];
        let short_heads = [26, 33, 47, 50, 76];
        // Last elements: each short segment ends just before the next head.
        let short_lasts = [32, 46, 49, 75, 79];
        let p = pair(
            &long_heads,
            &short_heads,
            &short_lasts,
            SetOpKind::Intersect,
            2,
        );
        // Long segment 0 ([10, 25)) pairs nothing; segment 1 ([25, 44))
        // pairs shorts 0-1; segment 2 ([44, 57)) pairs shorts 1-3; segments
        // 3 and 4 pair the wide short segment 3 ([50, 75]) plus, for
        // segment 4, short 4. (Figure 7 bounds the last pairing by the next
        // short head; we use each short segment's true last element, which
        // pairs the wide segment 3 with every long segment it overlaps.)
        assert_eq!(p.load_table, vec![0, 2, 3, 1, 2, 0]);
        assert_eq!(p.start_table[1], 0);
        assert_eq!(p.start_table[2], 1);
        assert_eq!(p.start_table[3], 3);
        assert_eq!(p.start_table[4], 3);
        // With max load 2, long segment 2's load of 3 splits across two IUs
        // (the red box in Figure 7).
        let seg2: Vec<_> = p.workloads.iter().filter(|w| w.long_idx == 2).collect();
        assert_eq!(seg2.len(), 2);
        assert_eq!(seg2[0].shorts, 1..3);
        assert_eq!(seg2[1].shorts, 3..4);
        // Long segment 0 (load 0) is omitted for intersection.
        assert!(p.workloads.iter().all(|w| w.long_idx != 0));
    }

    #[test]
    fn anti_subtraction_keeps_empty_long_segments() {
        let p = pair(&[10, 20], &[], &[], SetOpKind::AntiSubtract, 2);
        assert_eq!(p.workloads.len(), 2);
        assert!(p.workloads.iter().all(|w| w.load() == 0));
    }

    #[test]
    fn intersection_drops_empty_long_segments() {
        let p = pair(&[10, 20], &[], &[], SetOpKind::Intersect, 2);
        assert!(p.workloads.is_empty());
    }

    #[test]
    fn shorts_before_all_longs_are_unpaired() {
        let p = pair(
            &[100],
            &[1, 50, 150],
            &[40, 99, 200],
            SetOpKind::Subtract,
            4,
        );
        assert_eq!(p.unpaired_shorts, 0..2);
        assert_eq!(p.load_table, vec![1]);
        assert_eq!(p.start_table, vec![2]);
    }

    #[test]
    fn empty_long_set_leaves_all_shorts_unpaired() {
        let p = pair(&[], &[1, 9], &[5, 20], SetOpKind::Subtract, 2);
        assert_eq!(p.unpaired_shorts, 0..2);
        assert!(p.workloads.is_empty());
    }

    #[test]
    fn max_load_one_gives_one_short_per_workload() {
        let long_heads = [0];
        let short_heads = [1, 5, 9, 13];
        let short_lasts = [4, 8, 12, 16];
        let p = pair(
            &long_heads,
            &short_heads,
            &short_lasts,
            SetOpKind::Intersect,
            1,
        );
        assert_eq!(p.workloads.len(), 4);
        for (i, w) in p.workloads.iter().enumerate() {
            assert_eq!(w.shorts, i..i + 1);
        }
    }

    #[test]
    fn workload_shorts_cover_exactly_the_load() {
        let long_heads = [0, 100, 200];
        let short_heads = [10, 20, 30, 40, 110];
        let short_lasts = [15, 25, 35, 45, 150];
        let p = pair(
            &long_heads,
            &short_heads,
            &short_lasts,
            SetOpKind::Intersect,
            2,
        );
        let covered: usize = p
            .workloads
            .iter()
            .filter(|w| w.long_idx == 0)
            .map(Workload::load)
            .sum();
        assert_eq!(covered, p.load_table[0]);
        assert_eq!(p.load_table[0], 4);
    }

    #[test]
    #[should_panic(expected = "max_load")]
    fn zero_max_load_rejected() {
        pair(&[1], &[1], &[1], SetOpKind::Intersect, 0);
    }

    #[test]
    fn divider_cycles_scale_with_head_counts() {
        let p = pair(&[1, 2, 3], &[1, 2], &[1, 2], SetOpKind::Intersect, 2);
        assert_eq!(p.divider_cycles, 5);
    }

    mod properties {
        use super::*;
        use crate::segment::Segments;
        use proptest::prelude::*;

        fn sorted_set(max: u32, len: usize) -> impl Strategy<Value = Vec<Elem>> {
            proptest::collection::btree_set(0..max, 1..len).prop_map(|s| s.into_iter().collect())
        }

        proptest! {
            /// Coverage: every (short, long) segment pair whose value
            /// ranges overlap is assigned to some workload — the property
            /// that makes the segmented pipeline exact.
            #[test]
            #[allow(clippy::needless_range_loop)] // i, j index several parallel collections
            fn overlapping_pairs_are_covered(
                short in sorted_set(500, 80),
                long in sorted_set(500, 160),
                sl in 2usize..20,
                ss in 1usize..8,
                max_load in 1usize..5,
            ) {
                let long_segs = Segments::new(&long, sl);
                let short_segs = Segments::new(&short, ss);
                let long_heads = long_segs.head_list();
                let short_heads = short_segs.head_list();
                let short_lasts: Vec<Elem> =
                    (0..short_segs.count()).map(|i| short_segs.last_of(i)).collect();
                let p = pair(&long_heads, &short_heads, &short_lasts, SetOpKind::Intersect, max_load);
                for i in 0..short_segs.count() {
                    for j in 0..long_segs.count() {
                        // Ranges overlap if some element could match:
                        // short seg i spans [head_i, last_i], long seg j
                        // spans [head_j, last_j].
                        let overlap = short_heads[i] <= long_segs.last_of(j)
                            && long_heads[j] <= short_lasts[i];
                        if overlap {
                            let covered = p
                                .workloads
                                .iter()
                                .any(|w| w.long_idx == j && w.shorts.contains(&i));
                            prop_assert!(covered, "short {i} x long {j} uncovered");
                        }
                    }
                }
            }

            /// No workload ever exceeds the max-load threshold.
            #[test]
            fn max_load_respected(
                short in sorted_set(500, 80),
                long in sorted_set(500, 160),
                max_load in 1usize..5,
            ) {
                let long_segs = Segments::new(&long, 16);
                let short_segs = Segments::new(&short, 4);
                let short_lasts: Vec<Elem> =
                    (0..short_segs.count()).map(|i| short_segs.last_of(i)).collect();
                let p = pair(
                    &long_segs.head_list(),
                    &short_segs.head_list(),
                    &short_lasts,
                    SetOpKind::Subtract,
                    max_load,
                );
                for w in &p.workloads {
                    prop_assert!(w.load() <= max_load);
                }
            }
        }
    }
}
