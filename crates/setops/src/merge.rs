//! Whole-list one-pass merge kernels for sorted sets.
//!
//! These are the functional reference semantics for the segmented pipeline,
//! and also model the serial compute unit of a FlexMiner-style PE: one
//! element comparison per cycle, streaming both inputs once (paper
//! Section 2.2, IntersectX/FlexMiner-style comparators).

// lint: hot-path(alloc)
// lint: hot-path(index)

use crate::{Elem, SetOpKind};

/// `a ∩ b` for sorted, duplicate-free slices. Output is sorted.
///
/// # Example
///
/// ```
/// assert_eq!(fingers_setops::merge::intersect(&[1, 3, 5], &[3, 4, 5]), vec![3, 5]);
/// ```
pub fn intersect(a: &[Elem], b: &[Elem]) -> Vec<Elem> {
    // lint: allow-alloc(allocating convenience wrapper; hot loops call intersect_into with a recycled buffer)
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersect_into(a, b, &mut out);
    out
}

/// `a ∩ b` appended into `out` (the caller-owned buffer is cleared first).
/// The allocation-free kernel behind [`intersect`]; mining inner loops call
/// this with a recycled scratch buffer so steady-state DFS performs no heap
/// allocation per embedding.
pub fn intersect_into(a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        // lint: allow-index(i and j are bounded by the loop condition)
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]); // lint: allow-index(i < a.len() from the loop condition)
                i += 1;
                j += 1;
            }
        }
    }
}

/// `a − b` for sorted, duplicate-free slices. Output is sorted.
///
/// # Example
///
/// ```
/// assert_eq!(fingers_setops::merge::subtract(&[1, 3, 5], &[3, 4, 5]), vec![1]);
/// ```
pub fn subtract(a: &[Elem], b: &[Elem]) -> Vec<Elem> {
    // lint: allow-alloc(allocating convenience wrapper; hot loops call subtract_into with a recycled buffer)
    let mut out = Vec::with_capacity(a.len());
    subtract_into(a, b, &mut out);
    out
}

/// `a − b` appended into `out` (cleared first). Allocation-free kernel
/// behind [`subtract`]; see [`intersect_into`].
pub fn subtract_into(a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        // lint: allow-index(i < a.len() from the loop; j < b.len() is checked first in the disjunction)
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]); // lint: allow-index(i < a.len() from the loop condition)
            i += 1;
        // lint: allow-index(this branch is only reached when j < b.len())
        } else if a[i] > b[j] {
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
}

/// Applies `kind` to the paper's (short, long) operand convention:
/// `Intersect → short ∩ long`, `Subtract → short − long`,
/// `AntiSubtract → long − short`.
pub fn apply(kind: SetOpKind, short: &[Elem], long: &[Elem]) -> Vec<Elem> {
    // lint: allow-alloc(allocating convenience wrapper; hot loops call apply_into with a recycled buffer)
    let mut out = Vec::new();
    apply_into(kind, short, long, &mut out);
    out
}

/// [`apply`] into a caller-owned buffer (cleared first); the scratch-reusing
/// entry point the mining executor's arena uses.
pub fn apply_into(kind: SetOpKind, short: &[Elem], long: &[Elem], out: &mut Vec<Elem>) {
    match kind {
        SetOpKind::Intersect => intersect_into(short, long, out),
        SetOpKind::Subtract => subtract_into(short, long, out),
        SetOpKind::AntiSubtract => subtract_into(long, short, out),
    }
}

/// `|a ∩ b|` by a one-pass merge, writing no output.
///
/// The count-only kernel behind [`count`]: terminal-counting plan levels
/// (DESIGN.md § count fusion & bound pushing) only need the cardinality of
/// the last candidate set, so the executor skips materialization entirely.
pub fn intersect_count(a: &[Elem], b: &[Elem]) -> u64 {
    let mut n: u64 = 0;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        // lint: allow-index(i and j are bounded by the loop condition)
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// `|apply(kind, short, long)|` without materializing the result.
///
/// All three operations reduce to intersection counting on sorted
/// duplicate-free operands: `|short − long| = |short| − |short ∩ long|` and
/// `|long − short| = |long| − |short ∩ long|`, so one merge pass that never
/// writes an element serves every kind.
pub fn count(kind: SetOpKind, short: &[Elem], long: &[Elem]) -> u64 {
    let both = intersect_count(short, long);
    match kind {
        SetOpKind::Intersect => both,
        SetOpKind::Subtract => short.len() as u64 - both,
        SetOpKind::AntiSubtract => long.len() as u64 - both,
    }
}

/// `|apply(kind, trim(short, bound), trim(long, bound))|`: bound pushing —
/// both operands are trimmed to elements strictly greater than the optional
/// lower bound *before* the merge pass, so restricted elements are never
/// even compared. Equals filtering the materialized result afterwards for
/// every `kind` (property-tested in this module and in
/// `tests/properties.rs`).
pub fn count_bounded(kind: SetOpKind, short: &[Elem], long: &[Elem], bound: Option<Elem>) -> u64 {
    count(
        kind,
        crate::bound::trim(short, bound),
        crate::bound::trim(long, bound),
    )
}

/// Number of cycles a serial one-element-per-cycle merge comparator spends
/// on inputs of these lengths: each cycle consumes at least one element from
/// one input, and the pass ends when either side (for intersection) or the
/// first side (for subtraction) is exhausted. We use the conservative
/// `|a| + |b|` bound the paper's IU timing also uses (`s_l + Σ s_s`).
pub fn merge_cycles(a_len: usize, b_len: usize) -> u64 {
    (a_len + b_len) as u64
}

/// Exact cycle count of a serial one-element-per-cycle merge comparator
/// applying `kind` to `(short, long)`: one pointer advance per cycle, and
/// the pass terminates as soon as the remaining input cannot affect the
/// result (for intersection, when either side is exhausted; for
/// subtraction, when the side being emitted is exhausted). This is the cost
/// a FlexMiner-style serial unit pays.
pub fn merge_steps(kind: SetOpKind, short: &[Elem], long: &[Elem]) -> u64 {
    let (emit, filter) = match kind {
        SetOpKind::Intersect => (short, long), // either exhausting ends it
        SetOpKind::Subtract => (short, long),
        SetOpKind::AntiSubtract => (long, short),
    };
    let mut i = 0; // emit side
    let mut j = 0; // filter side
    let mut steps: u64 = 0;
    while i < emit.len() && j < filter.len() {
        steps += 1;
        // lint: allow-index(i and j are bounded by the loop condition)
        match emit[i].cmp(&filter[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    match kind {
        // Intersection ends when either side is exhausted.
        SetOpKind::Intersect => steps,
        // Subtractions must still emit the rest of the emit side.
        _ => steps + (emit.len() - i) as u64,
    }
}

/// `true` if `s` is strictly increasing (the invariant all kernels assume).
pub fn is_sorted_set(s: &[Elem]) -> bool {
    s.windows(2).all(|w| w[0] < w[1]) // lint: allow-index(windows(2) yields exactly-2-element slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect(&[1, 2, 3], &[2, 3, 4]), vec![2, 3]);
        assert_eq!(intersect(&[], &[1, 2]), Vec::<Elem>::new());
        assert_eq!(intersect(&[1, 2], &[]), Vec::<Elem>::new());
        assert_eq!(intersect(&[1, 5, 9], &[2, 6, 10]), Vec::<Elem>::new());
    }

    #[test]
    fn subtract_basic() {
        assert_eq!(subtract(&[1, 2, 3], &[2]), vec![1, 3]);
        assert_eq!(subtract(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(subtract(&[], &[1]), Vec::<Elem>::new());
        assert_eq!(subtract(&[1, 2], &[1, 2, 3]), Vec::<Elem>::new());
    }

    #[test]
    fn apply_matches_paper_operand_convention() {
        let short = [1, 4, 7];
        let long = [2, 4, 6, 7, 9];
        assert_eq!(apply(SetOpKind::Intersect, &short, &long), vec![4, 7]);
        assert_eq!(apply(SetOpKind::Subtract, &short, &long), vec![1]);
        assert_eq!(apply(SetOpKind::AntiSubtract, &short, &long), vec![2, 6, 9]);
    }

    #[test]
    fn subtraction_identity_of_section_4_3() {
        // A − B = A − (A ∩ B): the identity that lets a single intersect
        // unit implement every operation.
        let a = [1, 3, 5, 7, 9];
        let b = [2, 3, 4, 7];
        assert_eq!(subtract(&a, &b), subtract(&a, &intersect(&a, &b)));
    }

    #[test]
    fn into_variants_clear_and_reuse_the_buffer() {
        let mut buf = vec![99, 98, 97];
        intersect_into(&[1, 2, 3], &[2, 3, 4], &mut buf);
        assert_eq!(buf, vec![2, 3]);
        subtract_into(&[1, 2, 3], &[2], &mut buf);
        assert_eq!(buf, vec![1, 3]);
        let cap = buf.capacity();
        apply_into(SetOpKind::AntiSubtract, &[2], &[1, 2, 3], &mut buf);
        assert_eq!(buf, vec![1, 3]);
        assert_eq!(buf.capacity(), cap, "reuse must not reallocate here");
    }

    #[test]
    fn merge_cycles_is_sum() {
        assert_eq!(merge_cycles(16, 8), 24);
        assert_eq!(merge_cycles(0, 0), 0);
    }

    #[test]
    fn merge_steps_terminates_early() {
        // Intersect: short [1, 2] against a long tail — stops once the
        // short side is exhausted.
        let long: Vec<Elem> = (0..100).collect();
        assert!(merge_steps(SetOpKind::Intersect, &[1, 2], &long) <= 5);
        // Subtract emits all of the short side but stops scanning long.
        assert!(merge_steps(SetOpKind::Subtract, &[1, 2], &long) <= 6);
        // Anti-subtract must emit the whole long side.
        assert!(merge_steps(SetOpKind::AntiSubtract, &[1, 2], &long) >= 100);
    }

    #[test]
    fn merge_steps_bounded_by_sum() {
        let a: Vec<Elem> = (0..50).map(|i| i * 3).collect();
        let b: Vec<Elem> = (0..70).map(|i| i * 2 + 1).collect();
        for kind in SetOpKind::ALL {
            let s = merge_steps(kind, &a, &b);
            assert!(s <= merge_cycles(a.len(), b.len()), "{kind}: {s}");
            assert!(s >= a.len().min(b.len()) as u64);
        }
    }

    #[test]
    fn count_matches_apply_len() {
        let short = [1, 4, 7];
        let long = [2, 4, 6, 7, 9];
        for kind in SetOpKind::ALL {
            assert_eq!(
                count(kind, &short, &long),
                apply(kind, &short, &long).len() as u64
            );
        }
    }

    fn sorted_set_strategy(max_len: usize) -> impl Strategy<Value = Vec<Elem>> {
        proptest::collection::btree_set(0u32..500, 0..max_len).prop_map(|s| s.into_iter().collect())
    }

    proptest! {
        #[test]
        fn count_bounded_matches_trimmed_apply(
            a in sorted_set_strategy(64),
            b in sorted_set_strategy(64),
            bound in proptest::option::of(0u32..520),
        ) {
            for kind in SetOpKind::ALL {
                let expected = apply(
                    kind,
                    crate::bound::trim(&a, bound),
                    crate::bound::trim(&b, bound),
                ).len() as u64;
                prop_assert_eq!(count_bounded(kind, &a, &b, bound), expected);
            }
        }

        #[test]
        fn intersect_matches_btreeset(a in sorted_set_strategy(64), b in sorted_set_strategy(64)) {
            let sa: BTreeSet<_> = a.iter().copied().collect();
            let sb: BTreeSet<_> = b.iter().copied().collect();
            let expected: Vec<Elem> = sa.intersection(&sb).copied().collect();
            prop_assert_eq!(intersect(&a, &b), expected);
        }

        #[test]
        fn subtract_matches_btreeset(a in sorted_set_strategy(64), b in sorted_set_strategy(64)) {
            let sa: BTreeSet<_> = a.iter().copied().collect();
            let sb: BTreeSet<_> = b.iter().copied().collect();
            let expected: Vec<Elem> = sa.difference(&sb).copied().collect();
            prop_assert_eq!(subtract(&a, &b), expected);
        }

        #[test]
        fn outputs_stay_sorted_sets(a in sorted_set_strategy(64), b in sorted_set_strategy(64)) {
            for kind in SetOpKind::ALL {
                prop_assert!(is_sorted_set(&apply(kind, &a, &b)));
            }
        }

        #[test]
        fn intersect_is_commutative(a in sorted_set_strategy(64), b in sorted_set_strategy(64)) {
            prop_assert_eq!(intersect(&a, &b), intersect(&b, &a));
        }

        #[test]
        fn partition_identity(a in sorted_set_strategy(64), b in sorted_set_strategy(64)) {
            // |A| = |A ∩ B| + |A − B|
            prop_assert_eq!(a.len(), intersect(&a, &b).len() + subtract(&a, &b).len());
        }
    }
}
