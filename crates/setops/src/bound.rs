//! Shared lower-bound (symmetry-breaking) helpers.
//!
//! Plan compilation breaks pattern automorphisms by restricting some levels
//! to vertices strictly greater than an already-mapped vertex (paper
//! Section 2.1's `u_i < u_j` restrictions). Everywhere in the workspace the
//! convention is the same: a bound `b` excludes every element `c <= b` and
//! keeps every `c > b`. This module is the single home of that convention —
//! the mining executor's restriction logic and the bounded count kernels
//! ([`crate::merge::count_bounded`] and friends) both call it, so the
//! `partition_point` predicate can never drift between them.

// lint: hot-path(index)

use crate::Elem;

/// Index of the first element of sorted `set` strictly greater than `bound`
/// (`set.len()` when every element is `<= bound`).
///
/// # Example
///
/// ```
/// assert_eq!(fingers_setops::bound::lower_bound_start(&[1, 3, 5, 7], 4), 2);
/// assert_eq!(fingers_setops::bound::lower_bound_start(&[1, 3], 9), 2);
/// ```
#[inline]
pub fn lower_bound_start(set: &[Elem], bound: Elem) -> usize {
    set.partition_point(|&c| c <= bound)
}

/// `set` trimmed to the elements strictly greater than the optional bound;
/// `None` means unrestricted (the whole slice is returned). This is the
/// operand-side form of bound pushing: trimming *before* a kernel runs is
/// equivalent to filtering its output afterwards, for all three
/// [`crate::SetOpKind`]s (see DESIGN.md § count fusion & bound pushing).
#[inline]
pub fn trim(set: &[Elem], bound: Option<Elem>) -> &[Elem] {
    match bound {
        // lint: allow-index(partition_point returns an index <= set.len(), and a range slice at len is the valid empty tail)
        Some(b) => &set[lower_bound_start(set, b)..],
        None => set,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_is_first_strictly_greater() {
        assert_eq!(lower_bound_start(&[], 3), 0);
        assert_eq!(lower_bound_start(&[4, 5], 3), 0);
        assert_eq!(lower_bound_start(&[3, 4, 5], 3), 1);
        assert_eq!(lower_bound_start(&[1, 2, 3], 3), 3);
    }

    #[test]
    fn trim_none_is_identity() {
        let s = [1, 5, 9];
        assert_eq!(trim(&s, None), &s[..]);
    }

    #[test]
    fn trim_drops_at_most_bound() {
        assert_eq!(trim(&[1, 4, 7, 9], Some(4)), &[7, 9]);
        assert_eq!(trim(&[1, 4, 7, 9], Some(0)), &[1, 4, 7, 9]);
        assert_eq!(trim(&[1, 4], Some(9)), &[] as &[Elem]);
    }
}
