//! The intersect-unit (IU) compute model.
//!
//! Paper Section 4.3: a single hardware unit type computes *every* set
//! operation as a segment intersection, exploiting `A − B = A − (A ∩ B)`.
//! The unit streams the long segment and its paired short segments through a
//! comparator and emits the result as a bitvector:
//!
//! - for intersection and anti-subtraction, one bit per element of the
//!   *long* segment (1 = present in the intersection);
//! - for subtraction, one bit per element of each *short* segment
//!   (1 = present in the intersection), padded with 1s.

use serde::{Deserialize, Serialize};

use crate::merge::merge_cycles;
use crate::Elem;
use crate::SetOpKind;

/// A result bitvector over one segment. The paper's segments are 16 and 4
/// elements; iso-area sweeps stretch segments to several hundred, so the
/// storage is a small word array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegBitvec {
    words: Vec<u64>,
    len: usize,
}

impl SegBitvec {
    /// All-zeros bitvector of the given length.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Whether bit `i` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Length in bits (= elements of the associated segment).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitvector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bitwise OR with another result for the *same* segment — the paper's
    /// unified aggregation rule for all three operations.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ (different segments).
    pub fn or_assign(&mut self, other: &SegBitvec) {
        assert_eq!(self.len, other.len, "OR across different segments");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

/// Identifies which side's segment a bitvector annotates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SegmentSide {
    /// A segment of the long set (neighbor list).
    Long,
    /// A segment of the short set (candidate vertex set).
    Short,
}

/// One `(segment, bitvector)` result emitted by an IU toward the result
/// collector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IuEmission {
    /// Which side the segment belongs to (long for ∩/anti−, short for −).
    pub side: SegmentSide,
    /// Segment index within its set.
    pub seg_idx: usize,
    /// Presence-in-intersection bitvector over that segment.
    pub bitvec: SegBitvec,
}

/// Result of executing one IU workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IuOutput {
    /// Emissions toward the result collector.
    pub emissions: Vec<IuEmission>,
    /// Busy cycles: one element consumed per cycle over the long segment
    /// and all paired short segments (the paper's `s_l + Σ s_s ≈ 28`
    /// estimate for a long segment with two or three shorts).
    pub cycles: u64,
}

/// Executes one IU workload: one long segment against a run of consecutive
/// short segments (`shorts` are `(short_idx, elements)` pairs, consecutive
/// and in order, so their concatenation is sorted).
///
/// Regardless of `kind`, the hardware computes the intersection; `kind`
/// only selects which side's segments the bitvectors annotate.
///
/// # Panics
///
/// Panics if a segment is longer than 64 elements.
pub fn iu_execute(
    kind: SetOpKind,
    long_idx: usize,
    long_seg: &[Elem],
    shorts: &[(usize, &[Elem])],
) -> IuOutput {
    let short_total: usize = shorts.iter().map(|(_, s)| s.len()).sum();
    let cycles = merge_cycles(long_seg.len(), short_total);

    let mut emissions = Vec::new();
    match kind {
        SetOpKind::Intersect | SetOpKind::AntiSubtract => {
            let mut bv = SegBitvec::zeros(long_seg.len());
            for (p, &x) in long_seg.iter().enumerate() {
                if shorts.iter().any(|(_, s)| s.binary_search(&x).is_ok()) {
                    bv.set(p);
                }
            }
            emissions.push(IuEmission {
                side: SegmentSide::Long,
                seg_idx: long_idx,
                bitvec: bv,
            });
        }
        SetOpKind::Subtract => {
            for &(short_idx, seg) in shorts {
                let mut bv = SegBitvec::zeros(seg.len());
                for (p, &x) in seg.iter().enumerate() {
                    if long_seg.binary_search(&x).is_ok() {
                        bv.set(p);
                    }
                }
                emissions.push(IuEmission {
                    side: SegmentSide::Short,
                    seg_idx: short_idx,
                    bitvec: bv,
                });
            }
        }
    }
    IuOutput { emissions, cycles }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitvec_set_get_count() {
        let mut bv = SegBitvec::zeros(4);
        assert_eq!(bv.count_ones(), 0);
        bv.set(0);
        bv.set(3);
        assert!(bv.get(0) && !bv.get(1) && !bv.get(2) && bv.get(3));
        assert_eq!(bv.count_ones(), 2);
    }

    #[test]
    fn bitvec_or_merges_results() {
        let mut a = SegBitvec::zeros(4);
        a.set(0);
        let mut b = SegBitvec::zeros(4);
        b.set(2);
        a.or_assign(&b);
        assert!(a.get(0) && a.get(2));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "different segments")]
    fn bitvec_or_rejects_length_mismatch() {
        let mut a = SegBitvec::zeros(4);
        a.or_assign(&SegBitvec::zeros(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitvec_set_bounds_checked() {
        SegBitvec::zeros(2).set(2);
    }

    /// The paper's Figure 8 subtraction example: long segment
    /// [1, 3, 4, 5, 7, 8, 9, 12] against short segment [1, 7, 11, 18]
    /// produces bitvector 1 1 0 0 (1 and 7 present, 11 and 18 absent).
    #[test]
    fn figure_8_subtraction_bitvector() {
        let long = [1, 3, 4, 5, 7, 8, 9, 12];
        let short = [1, 7, 11, 18];
        let out = iu_execute(SetOpKind::Subtract, 0, &long, &[(0, &short)]);
        assert_eq!(out.emissions.len(), 1);
        let bv = &out.emissions[0].bitvec;
        assert!(bv.get(0) && bv.get(1) && !bv.get(2) && !bv.get(3));
        assert_eq!(out.emissions[0].side, SegmentSide::Short);
    }

    /// Figure 8 continued: the second long segment [13, 15, 18, 22] marks
    /// only 18 → bitvector 0 0 0 1 over the same short segment; the
    /// collector will OR 1100 | 0001 = 1101, and the surviving (0-bit)
    /// element is 11 — matching the paper's final answer.
    #[test]
    fn figure_8_second_pair() {
        let long = [13, 15, 18, 22];
        let short = [1, 7, 11, 18];
        let out = iu_execute(SetOpKind::Subtract, 1, &long, &[(0, &short)]);
        let bv = &out.emissions[0].bitvec;
        assert!(!bv.get(0) && !bv.get(1) && !bv.get(2) && bv.get(3));
    }

    #[test]
    fn intersect_marks_long_side() {
        let long = [2, 4, 6, 8];
        let short = [4, 8, 10];
        let out = iu_execute(SetOpKind::Intersect, 7, &long, &[(3, &short)]);
        assert_eq!(out.emissions.len(), 1);
        let e = &out.emissions[0];
        assert_eq!(e.side, SegmentSide::Long);
        assert_eq!(e.seg_idx, 7);
        assert!(!e.bitvec.get(0) && e.bitvec.get(1) && !e.bitvec.get(2) && e.bitvec.get(3));
    }

    #[test]
    fn anti_subtract_with_no_shorts_emits_zero_bitvec() {
        let long = [1, 2, 3];
        let out = iu_execute(SetOpKind::AntiSubtract, 0, &long, &[]);
        assert_eq!(out.emissions[0].bitvec.count_ones(), 0);
        assert_eq!(out.cycles, 3);
    }

    #[test]
    fn cycles_are_total_streamed_elements() {
        let long = [1, 2, 3, 4];
        let s1 = [1, 2];
        let s2 = [3];
        let out = iu_execute(SetOpKind::Subtract, 0, &long, &[(0, &s1), (1, &s2)]);
        assert_eq!(out.cycles, 7);
    }
}
