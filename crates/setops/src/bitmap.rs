//! Dense-bitmap set-operation kernels — the third kernel tier.
//!
//! The merge kernels stream both operands (`O(s + l)`); galloping probes
//! the long side by exponential search (`O(s · log(l/s))`). When the long
//! operand is the adjacency of a high-degree *hub* vertex that gets reused
//! across many set operations, a third representation wins: a dense
//! [`NeighborBitmap`] over the vertex-ID universe, built once from the CSR
//! row and probed in `O(1)` per short element (`O(s)` per operation, one
//! word load each). This is the SISA-style set-centric representation
//! specialized to the mining hot path; the cache that amortizes
//! construction lives in `fingers-mining`.
//!
//! All three kernels take the paper's `(short, long)` operand convention
//! with the *long* side represented by the bitmap; outputs are sorted and
//! bit-identical to the [`merge`](crate::merge) reference (property-tested
//! below), so swapping tiers can never change mining counts.

// lint: hot-path(alloc)
// lint: hot-path(index)

use serde::{Deserialize, Serialize};

use crate::{Elem, SetOpKind};

/// A dense bitmap of one vertex's adjacency over the ID universe `0..n`.
///
/// One bit per potential neighbor; `words` is a `u64` array so membership
/// is a single word load + mask. The backing allocation is reusable via
/// [`refill`](NeighborBitmap::refill), which is what lets a per-worker
/// cache rebuild evicted entries without heap traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborBitmap {
    words: Vec<u64>,
    universe: usize,
    ones: usize,
}

impl NeighborBitmap {
    /// Number of `u64` words needed to cover a universe of `universe` IDs.
    pub const fn words_for(universe: usize) -> usize {
        universe.div_ceil(64)
    }

    /// An all-zeros bitmap over `0..universe`.
    pub fn new(universe: usize) -> Self {
        Self {
            // lint: allow-alloc(one-time bitmap construction; the mining tier reuses it via refill)
            words: vec![0; Self::words_for(universe)],
            universe,
            ones: 0,
        }
    }

    /// Builds a bitmap over `0..universe` from a sorted, duplicate-free,
    /// in-range element list (a CSR neighbor row).
    ///
    /// # Panics
    ///
    /// Panics if an element is `>= universe`.
    pub fn from_sorted(universe: usize, elems: &[Elem]) -> Self {
        let mut b = Self::new(universe);
        b.refill(universe, elems);
        b
    }

    /// Rebuilds this bitmap in place for a (possibly different) element
    /// list, reusing the backing words. Only grows the allocation when the
    /// universe grows — rebuilding for the same graph never reallocates.
    ///
    /// # Panics
    ///
    /// Panics if an element is `>= universe`.
    pub fn refill(&mut self, universe: usize, elems: &[Elem]) {
        let need = Self::words_for(universe);
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
        self.words.iter_mut().for_each(|w| *w = 0);
        self.universe = universe;
        self.ones = elems.len();
        for &x in elems {
            let i = x as usize;
            assert!(i < universe, "element {x} outside universe {universe}");
            // lint: allow-index(i < universe asserted above, so i >> 6 < words_for(universe))
            self.words[i >> 6] |= 1u64 << (i & 63);
        }
    }

    /// Whether `x` is in the set. IDs outside the universe are absent, not
    /// an error, so the probe side never needs bounds pre-checks.
    #[inline]
    pub fn contains(&self, x: Elem) -> bool {
        let i = x as usize;
        // lint: allow-index(the conjunction short-circuits: the word is only read when i < universe)
        i < self.universe && (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// The ID universe size this bitmap covers.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of set bits (= the represented set's cardinality).
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Whether the represented set is empty.
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Words covering the current universe (the word-scan cost of
    /// [`iter_ones`](NeighborBitmap::iter_ones), used by adaptive
    /// dispatch).
    pub fn word_count(&self) -> usize {
        Self::words_for(self.universe)
    }

    /// Capacity of the backing allocation in words (≥ [`word_count`]
    /// (NeighborBitmap::word_count); tests use it to assert refills do not
    /// reallocate).
    pub fn capacity_words(&self) -> usize {
        self.words.len()
    }

    /// The backing words covering the current universe, for word-sweep
    /// kernels ([`crate::simd::and_popcount`]). Sliced to
    /// [`word_count`](NeighborBitmap::word_count) — the backing vector may
    /// be longer after a recycled refill, and its tail is stale.
    pub fn words(&self) -> &[u64] {
        // lint: allow-index(word_count() <= words.len(): refill only grows the backing vector)
        &self.words[..self.word_count()]
    }

    /// Iterates the set elements in ascending order via word-level
    /// `trailing_zeros` scanning.
    pub fn iter_ones(&self) -> Ones<'_> {
        // lint: allow-index(word_count() <= words.len(): refill only grows the backing vector)
        let words = &self.words[..self.word_count()];
        Ones {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

/// Ascending iterator over the set bits of a [`NeighborBitmap`].
#[derive(Debug, Clone)]
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = Elem;

    fn next(&mut self) -> Option<Elem> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            // lint: allow-index(word_idx < words.len() checked by the early return above)
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(self.word_idx as Elem * 64 + bit)
    }
}

/// `short ∩ long` where `long` is the bitmap: probe each short element,
/// `O(|short|)` word loads. Output is sorted because `short` is.
pub fn intersect_bitmap_into(short: &[Elem], long: &NeighborBitmap, out: &mut Vec<Elem>) {
    out.clear();
    for &x in short {
        if long.contains(x) {
            out.push(x);
        }
    }
}

/// `short − long` where `long` is the bitmap: probe each short element and
/// keep the misses. `O(|short|)`.
pub fn subtract_bitmap_into(short: &[Elem], long: &NeighborBitmap, out: &mut Vec<Elem>) {
    out.clear();
    for &x in short {
        if !long.contains(x) {
            out.push(x);
        }
    }
}

/// `long − short` where `long` is the bitmap: scan the bitmap's set bits
/// in order (word-level skip over zero words) while merging against the
/// sorted short list. `O(words + |long| + |short|)` — cheaper than the
/// merge kernel exactly when the word scan is smaller than restreaming the
/// long list, which is what adaptive dispatch checks.
pub fn anti_subtract_bitmap_into(short: &[Elem], long: &NeighborBitmap, out: &mut Vec<Elem>) {
    out.clear();
    let mut si = 0usize;
    for v in long.iter_ones() {
        // lint: allow-index(si < short.len() short-circuits before the read)
        while si < short.len() && short[si] < v {
            si += 1;
        }
        // lint: allow-index(si < short.len() short-circuits before the read)
        if si < short.len() && short[si] == v {
            si += 1;
        } else {
            out.push(v);
        }
    }
}

/// Applies `kind` with the paper's `(short, long)` operand convention,
/// with the long side held as a dense bitmap.
pub fn apply_into(kind: SetOpKind, short: &[Elem], long: &NeighborBitmap, out: &mut Vec<Elem>) {
    match kind {
        SetOpKind::Intersect => intersect_bitmap_into(short, long, out),
        SetOpKind::Subtract => subtract_bitmap_into(short, long, out),
        SetOpKind::AntiSubtract => anti_subtract_bitmap_into(short, long, out),
    }
}

/// `|short ∩ long|` by probing the bitmap: one word load per short element,
/// no output written. The count-only form of [`intersect_bitmap_into`].
pub fn intersect_count(short: &[Elem], long: &NeighborBitmap) -> u64 {
    short.iter().filter(|&&x| long.contains(x)).count() as u64
}

/// `|apply(kind, short, long)|` without materializing, with the long side
/// resident as a bitmap.
///
/// Bound-pushing contract: `short` must already be trimmed to the elements
/// strictly above any active lower bound, and `long_len` is the cardinality
/// of the long operand *after the same trim*. The bitmap itself stays the
/// full adjacency — a probe from a trimmed short element can never hit a
/// long element at or below the bound, so no bitmap masking is needed.
///
/// Note the contrast with the materializing tier: anti-subtraction there
/// needs a word scan to *emit* the long side, so adaptive dispatch weighs
/// `⌈n/64⌉` words against restreaming. Counting reduces every kind to
/// `|short ∩ long|` plus arithmetic, so probing (`O(|short|)`) serves all
/// three — which is why [`crate::adaptive::select_count_tier`] can always
/// prefer a resident bitmap.
pub fn count(kind: SetOpKind, short: &[Elem], long: &NeighborBitmap, long_len: usize) -> u64 {
    let both = intersect_count(short, long);
    match kind {
        SetOpKind::Intersect => both,
        SetOpKind::Subtract => short.len() as u64 - both,
        SetOpKind::AntiSubtract => long_len as u64 - both,
    }
}

/// `|a ∩ b|` when *both* sides are resident bitmaps: word-wise AND +
/// popcount, `O(words)` with no per-element work at all — the degenerate
/// intersect-count form the tentpole calls for. Universes may differ; bits
/// beyond the shorter universe cannot intersect.
pub fn intersect_count_resident(a: &NeighborBitmap, b: &NeighborBitmap) -> u64 {
    let words = a.word_count().min(b.word_count());
    // lint: allow-index(words = min of both word counts, each <= its backing length)
    a.words[..words]
        .iter()
        // lint: allow-index(words = min of both word counts, each <= its backing length)
        .zip(&b.words[..words])
        .map(|(x, y)| (x & y).count_ones() as u64)
        .sum()
}

/// [`intersect_count_resident`] through the SIMD tier's word sweep: the
/// hardware `popcnt` instruction when the runtime probe finds it, the
/// identical software popcount otherwise. The executor dispatches here
/// when `EngineConfig::simd` is on, keeping the scalar sweep above as the
/// measurable `--no-simd` baseline.
pub fn intersect_count_resident_simd(a: &NeighborBitmap, b: &NeighborBitmap) -> u64 {
    crate::simd::and_popcount(a.words(), b.words())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge;
    use proptest::prelude::*;

    fn check_all_kinds(universe: usize, short: &[Elem], long_elems: &[Elem]) {
        let bm = NeighborBitmap::from_sorted(universe, long_elems);
        let mut got = Vec::new();
        for kind in SetOpKind::ALL {
            apply_into(kind, short, &bm, &mut got);
            assert_eq!(
                got,
                merge::apply(kind, short, long_elems),
                "{kind} short={short:?} long={long_elems:?}"
            );
        }
    }

    #[test]
    fn construction_and_membership() {
        let bm = NeighborBitmap::from_sorted(200, &[0, 63, 64, 65, 128, 199]);
        assert_eq!(bm.universe(), 200);
        assert_eq!(bm.count_ones(), 6);
        assert_eq!(bm.word_count(), 4);
        for x in [0u32, 63, 64, 65, 128, 199] {
            assert!(bm.contains(x), "{x}");
        }
        for x in [1u32, 62, 66, 127, 198, 200, 1_000_000] {
            assert!(!bm.contains(x), "{x}");
        }
        assert_eq!(
            bm.iter_ones().collect::<Vec<_>>(),
            vec![0, 63, 64, 65, 128, 199]
        );
    }

    #[test]
    fn empty_and_full_bitmaps() {
        let empty = NeighborBitmap::new(100);
        assert!(empty.is_empty());
        assert_eq!(empty.iter_ones().count(), 0);
        let zero_universe = NeighborBitmap::new(0);
        assert!(!zero_universe.contains(0));
        assert_eq!(zero_universe.word_count(), 0);
        assert_eq!(zero_universe.iter_ones().count(), 0);
        let all: Vec<Elem> = (0..130).collect();
        let full = NeighborBitmap::from_sorted(130, &all);
        assert_eq!(full.iter_ones().collect::<Vec<_>>(), all);
    }

    #[test]
    fn refill_reuses_allocation() {
        let mut bm = NeighborBitmap::from_sorted(500, &[1, 2, 3, 499]);
        let cap = bm.capacity_words();
        bm.refill(500, &[7, 450]);
        assert_eq!(bm.capacity_words(), cap, "same-universe refill reallocated");
        assert!(bm.contains(7) && bm.contains(450));
        assert!(!bm.contains(1) && !bm.contains(499), "stale bits survive");
        assert_eq!(bm.count_ones(), 2);
        // A smaller universe shrinks the visible words but keeps storage.
        bm.refill(100, &[64]);
        assert_eq!(bm.capacity_words(), cap);
        assert_eq!(bm.word_count(), 2);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![64]);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn from_sorted_rejects_out_of_range() {
        NeighborBitmap::from_sorted(10, &[10]);
    }

    #[test]
    fn kernels_match_merge_on_handpicked_cases() {
        // Empty / singleton operands.
        check_all_kinds(50, &[], &[]);
        check_all_kinds(50, &[], &[1, 2, 3]);
        check_all_kinds(50, &[5], &[]);
        check_all_kinds(50, &[5], &[5]);
        check_all_kinds(50, &[5], &[6]);
        // Fully disjoint ranges and full containment.
        check_all_kinds(100, &[0, 1, 2], &[90, 95, 99]);
        check_all_kinds(100, &[10, 20, 30], &[5, 10, 15, 20, 25, 30, 35]);
        // Word-boundary elements.
        check_all_kinds(200, &[63, 64, 127, 128], &[0, 63, 64, 65, 128, 191, 192]);
    }

    fn sorted_set(max: u32, len: usize) -> impl Strategy<Value = Vec<Elem>> {
        proptest::collection::btree_set(0..max, 0..len).prop_map(|s| s.into_iter().collect())
    }

    proptest! {
        /// Random operand mixes: the bitmap kernels agree with the merge
        /// reference on every operation.
        #[test]
        fn matches_merge_kernels_random(
            short in sorted_set(2000, 120),
            long in sorted_set(2000, 400),
        ) {
            check_all_kinds(2000, &short, &long);
        }

        /// Adversarial dense long / sparse short: a hub adjacency covering
        /// most of a small universe probed by a few candidates.
        #[test]
        fn matches_merge_kernels_dense_long(
            short in sorted_set(256, 8),
            long in sorted_set(256, 250),
        ) {
            check_all_kinds(256, &short, &long);
        }

        /// Adversarial sparse long / dense short: the skew opposite of what
        /// dispatch would pick, still bit-identical.
        #[test]
        fn matches_merge_kernels_dense_short(
            short in sorted_set(256, 250),
            long in sorted_set(256, 8),
        ) {
            check_all_kinds(256, &short, &long);
        }

        /// Bitmap counts equal the length of the trimmed materialized
        /// result (the satellite property, bitmap tier): `short` is trimmed
        /// before probing and `long_len` carries the trimmed long
        /// cardinality, matching the executor's fused dispatch.
        #[test]
        fn count_bounded_matches_trimmed_apply(
            short in sorted_set(2000, 120),
            long in sorted_set(2000, 400),
            bound in proptest::option::of(0u32..2100),
        ) {
            let bm = NeighborBitmap::from_sorted(2000, &long);
            let ts = crate::bound::trim(&short, bound);
            let tl = crate::bound::trim(&long, bound);
            for kind in SetOpKind::ALL {
                let expected = merge::apply(kind, ts, tl).len() as u64;
                prop_assert_eq!(count(kind, ts, &bm, tl.len()), expected, "{}", kind);
            }
        }

        /// Word-AND popcount equals the probe-based intersect count when
        /// both operands are resident.
        #[test]
        fn resident_popcount_matches_probe_count(
            a in sorted_set(2000, 200),
            b in sorted_set(1500, 200),
        ) {
            let ba = NeighborBitmap::from_sorted(2000, &a);
            let bb = NeighborBitmap::from_sorted(1500, &b);
            let expected = merge::intersect(&a, &b).len() as u64;
            prop_assert_eq!(intersect_count_resident(&ba, &bb), expected);
            prop_assert_eq!(intersect_count_resident(&bb, &ba), expected);
            prop_assert_eq!(intersect_count(&a, &bb), expected);
            // The SIMD word sweep is bit-identical to the scalar sweep.
            prop_assert_eq!(intersect_count_resident_simd(&ba, &bb), expected);
            prop_assert_eq!(intersect_count_resident_simd(&bb, &ba), expected);
        }

        /// `iter_ones` round-trips construction exactly.
        #[test]
        fn iter_ones_roundtrip(elems in sorted_set(700, 128)) {
            let bm = NeighborBitmap::from_sorted(700, &elems);
            prop_assert_eq!(bm.iter_ones().collect::<Vec<_>>(), elems);
        }
    }
}
