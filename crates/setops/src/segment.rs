//! Fixed-length segmentation of sorted sets and head-list generation.
//!
//! Segment-level parallelism (paper Section 3.4) divides each sorted set
//! into non-overlapping fixed-length segments. The *head list* — the first
//! element of every segment — is what the task dividers work with: it is
//! shorter than the set by a factor of the segment length, which is why the
//! divider latency "does not dominate the pipeline stages" (Section 4.2).

use crate::Elem;

/// A view of a sorted set as fixed-length segments.
///
/// The final segment may be shorter than `seg_len`. An empty set has zero
/// segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segments<'a> {
    set: &'a [Elem],
    seg_len: usize,
}

impl<'a> Segments<'a> {
    /// Creates the segment view.
    ///
    /// # Panics
    ///
    /// Panics if `seg_len == 0`.
    pub fn new(set: &'a [Elem], seg_len: usize) -> Self {
        assert!(seg_len > 0, "segment length must be positive");
        Self { set, seg_len }
    }

    /// Number of segments (`⌈|set| / seg_len⌉`).
    pub fn count(&self) -> usize {
        self.set.len().div_ceil(self.seg_len)
    }

    /// The `i`-th segment.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.count()`.
    pub fn get(&self, i: usize) -> &'a [Elem] {
        let start = i * self.seg_len;
        assert!(start < self.set.len(), "segment index {i} out of range");
        let end = (start + self.seg_len).min(self.set.len());
        &self.set[start..end]
    }

    /// The configured segment length.
    pub fn seg_len(&self) -> usize {
        self.seg_len
    }

    /// The underlying set.
    pub fn set(&self) -> &'a [Elem] {
        self.set
    }

    /// The head list: first element of every segment (paper Figure 7).
    pub fn head_list(&self) -> Vec<Elem> {
        (0..self.count()).map(|i| self.get(i)[0]).collect()
    }

    /// Iterates over all segments.
    pub fn iter(&self) -> impl Iterator<Item = &'a [Elem]> + '_ {
        (0..self.count()).map(|i| self.get(i))
    }

    /// Largest element of segment `i` (segments are sorted, so this is the
    /// last element).
    // §11: segments are constructed non-empty (Segments::new splits a
    // non-empty set into ceil(len/width) chunks), so an empty segment is a
    // construction bug worth a panic, not a recoverable error.
    #[allow(clippy::expect_used)] // §11: justified above
    pub fn last_of(&self, i: usize) -> Elem {
        *self.get(i).last().expect("segments are non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_division() {
        let set: Vec<Elem> = (0..8).collect();
        let segs = Segments::new(&set, 4);
        assert_eq!(segs.count(), 2);
        assert_eq!(segs.get(0), &[0, 1, 2, 3]);
        assert_eq!(segs.get(1), &[4, 5, 6, 7]);
    }

    #[test]
    fn ragged_tail() {
        let set: Vec<Elem> = (0..10).collect();
        let segs = Segments::new(&set, 4);
        assert_eq!(segs.count(), 3);
        assert_eq!(segs.get(2), &[8, 9]);
    }

    #[test]
    fn empty_set_has_no_segments() {
        let segs = Segments::new(&[], 4);
        assert_eq!(segs.count(), 0);
        assert!(segs.head_list().is_empty());
    }

    #[test]
    fn head_list_matches_figure_7_example() {
        // Long set from the paper's Figure 7 head list: 10, 25, 44, 57, 68, 80
        // with segment length 1 each head is the element itself; use length 2
        // on a concrete expansion instead.
        let set = [10, 12, 25, 30, 44, 50, 57, 60, 68, 70, 80, 90];
        let segs = Segments::new(&set, 2);
        assert_eq!(segs.head_list(), vec![10, 25, 44, 57, 68, 80]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_segment_length_rejected() {
        Segments::new(&[1], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_segment_rejected() {
        let set = [1, 2, 3];
        Segments::new(&set, 2).get(2);
    }

    proptest! {
        #[test]
        fn segments_reassemble_to_set(
            set in proptest::collection::btree_set(0u32..1000, 0..100),
            seg_len in 1usize..20,
        ) {
            let set: Vec<Elem> = set.into_iter().collect();
            let segs = Segments::new(&set, seg_len);
            let rebuilt: Vec<Elem> = segs.iter().flatten().copied().collect();
            prop_assert_eq!(rebuilt, set.clone());
            prop_assert_eq!(segs.head_list().len(), segs.count());
        }

        #[test]
        fn heads_are_strictly_increasing(
            set in proptest::collection::btree_set(0u32..1000, 1..100),
            seg_len in 1usize..20,
        ) {
            let set: Vec<Elem> = set.into_iter().collect();
            let heads = Segments::new(&set, seg_len).head_list();
            prop_assert!(heads.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
