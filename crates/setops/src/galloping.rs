//! Galloping (exponential-search) set operations for skewed operand sizes.
//!
//! The merge kernels in [`merge`](crate::merge) model the hardware's
//! one-element-per-cycle comparators. Software miners, however, use
//! galloping when one operand is much shorter: for each element of the
//! short list, exponentially probe then binary-search the long list —
//! `O(s · log(l/s))` instead of `O(s + l)`. This is the kernel behind the
//! SIMD intersection literature the paper cites for segment-level
//! parallelism (Inoue et al.).

// lint: hot-path(alloc)
// lint: hot-path(index)

use crate::{merge, Elem, SetOpKind};

/// `short ∩ long` by galloping. Both inputs sorted and duplicate-free.
///
/// # Example
///
/// ```
/// let long: Vec<u32> = (0..1000).collect();
/// assert_eq!(fingers_setops::galloping::intersect(&[3, 999], &long), vec![3, 999]);
/// ```
pub fn intersect(short: &[Elem], long: &[Elem]) -> Vec<Elem> {
    // lint: allow-alloc(allocating convenience wrapper; hot loops call intersect_into with a recycled buffer)
    let mut out = Vec::with_capacity(short.len());
    intersect_into(short, long, &mut out);
    out
}

/// `short ∩ long` by galloping, into a caller-owned buffer (cleared first).
/// Allocation-free kernel behind [`intersect`], for scratch-arena reuse.
pub fn intersect_into(short: &[Elem], long: &[Elem], out: &mut Vec<Elem>) {
    out.clear();
    let mut base = 0usize;
    for &x in short {
        // lint: allow-index(base <= long.len(): checked after each advance, and a range slice at len is the valid empty tail)
        match gallop_search(&long[base..], x) {
            Ok(pos) => {
                out.push(x);
                base += pos + 1;
            }
            Err(pos) => base += pos,
        }
        if base >= long.len() {
            break;
        }
    }
}

/// `short − long` by galloping.
pub fn subtract(short: &[Elem], long: &[Elem]) -> Vec<Elem> {
    // lint: allow-alloc(allocating convenience wrapper; hot loops call subtract_into with a recycled buffer)
    let mut out = Vec::with_capacity(short.len());
    subtract_into(short, long, &mut out);
    out
}

/// `short − long` by galloping, into a caller-owned buffer (cleared first).
pub fn subtract_into(short: &[Elem], long: &[Elem], out: &mut Vec<Elem>) {
    out.clear();
    let mut base = 0usize;
    for (i, &x) in short.iter().enumerate() {
        if base >= long.len() {
            out.extend_from_slice(&short[i..]); // lint: allow-index(i < short.len() from enumerate)
            break;
        }
        // lint: allow-index(base < long.len() guaranteed by the check above)
        match gallop_search(&long[base..], x) {
            Ok(pos) => base += pos + 1,
            Err(pos) => {
                out.push(x);
                base += pos;
            }
        }
    }
}

/// Applies `kind` with the paper's (short, long) operand convention, using
/// galloping for the probe side.
pub fn apply(kind: SetOpKind, short: &[Elem], long: &[Elem]) -> Vec<Elem> {
    // lint: allow-alloc(allocating convenience wrapper; hot loops call apply_into with a recycled buffer)
    let mut out = Vec::new();
    apply_into(kind, short, long, &mut out);
    out
}

/// [`apply`] into a caller-owned buffer (cleared first).
pub fn apply_into(kind: SetOpKind, short: &[Elem], long: &[Elem], out: &mut Vec<Elem>) {
    match kind {
        SetOpKind::Intersect => intersect_into(short, long, out),
        SetOpKind::Subtract => subtract_into(short, long, out),
        // Anti-subtraction emits most of the long side; galloping the
        // short probes into it is still the right shape.
        SetOpKind::AntiSubtract => merge::subtract_into(long, short, out),
    }
}

/// `|short ∩ long|` by galloping, writing no output — the count-only kernel
/// for skewed operands (see [`crate::merge::intersect_count`] for why the
/// executor wants counts without materialization).
pub fn intersect_count(short: &[Elem], long: &[Elem]) -> u64 {
    let mut n: u64 = 0;
    let mut base = 0usize;
    for &x in short {
        // lint: allow-index(base <= long.len(): checked after each advance, and a range slice at len is the valid empty tail)
        match gallop_search(&long[base..], x) {
            Ok(pos) => {
                n += 1;
                base += pos + 1;
            }
            Err(pos) => base += pos,
        }
        if base >= long.len() {
            break;
        }
    }
    n
}

/// `|apply(kind, short, long)|` without materializing, galloping the short
/// probes. Unlike the materializing [`apply_into`] — where anti-subtraction
/// must stream the long side to *emit* it — every count reduces to
/// `|short ∩ long|` plus arithmetic, so galloping serves all three kinds.
pub fn count(kind: SetOpKind, short: &[Elem], long: &[Elem]) -> u64 {
    let both = intersect_count(short, long);
    match kind {
        SetOpKind::Intersect => both,
        SetOpKind::Subtract => short.len() as u64 - both,
        SetOpKind::AntiSubtract => long.len() as u64 - both,
    }
}

/// [`count`] with both operands trimmed to elements strictly greater than
/// the optional lower bound before any probing (bound pushing; same
/// contract as [`crate::merge::count_bounded`]).
pub fn count_bounded(kind: SetOpKind, short: &[Elem], long: &[Elem], bound: Option<Elem>) -> u64 {
    count(
        kind,
        crate::bound::trim(short, bound),
        crate::bound::trim(long, bound),
    )
}

/// Exponential search for `x` in sorted `slice`: like
/// `slice.binary_search(&x)` but `O(log position)` when `x` lands early.
fn gallop_search(slice: &[Elem], x: Elem) -> Result<usize, usize> {
    let mut bound = 1usize;
    // lint: allow-index(bound >= 1 always, and bound - 1 < slice.len() from the conjunction order)
    while bound < slice.len() && slice[bound - 1] < x {
        bound *= 2;
    }
    let lo = bound / 2;
    let hi = bound.min(slice.len());
    // lint: allow-index(lo <= hi <= slice.len(): lo = bound/2 < hi unless both clamp to len)
    match slice[lo..hi].binary_search(&x) {
        Ok(p) => Ok(lo + p),
        Err(p) => Err(lo + p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intersect_skewed() {
        let long: Vec<Elem> = (0..10_000).map(|i| i * 2).collect();
        assert_eq!(intersect(&[0, 5, 9998], &long), vec![0, 9998]);
        assert_eq!(intersect(&[], &long), Vec::<Elem>::new());
        assert_eq!(intersect(&[1, 3], &[]), Vec::<Elem>::new());
    }

    #[test]
    fn subtract_skewed() {
        let long: Vec<Elem> = (0..100).map(|i| i * 2).collect();
        assert_eq!(subtract(&[1, 2, 3], &long), vec![1, 3]);
        assert_eq!(subtract(&[500, 501], &long), vec![500, 501]);
    }

    #[test]
    fn empty_operands() {
        for kind in SetOpKind::ALL {
            assert_eq!(apply(kind, &[], &[]), Vec::<Elem>::new(), "{kind} both");
            assert_eq!(
                apply(kind, &[], &[1, 2, 3]),
                merge::apply(kind, &[], &[1, 2, 3]),
                "{kind} short empty"
            );
            assert_eq!(
                apply(kind, &[4, 9], &[]),
                merge::apply(kind, &[4, 9], &[]),
                "{kind} long empty"
            );
        }
    }

    #[test]
    fn single_element_sets() {
        for kind in SetOpKind::ALL {
            for (s, l) in [([5], [5]), ([5], [6]), ([6], [5])] {
                assert_eq!(
                    apply(kind, &s, &l),
                    merge::apply(kind, &s, &l),
                    "{kind} {s:?} vs {l:?}"
                );
            }
        }
    }

    #[test]
    fn fully_disjoint_ranges() {
        let low: Vec<Elem> = (0..20).collect();
        let high: Vec<Elem> = (1000..1040).collect();
        for kind in SetOpKind::ALL {
            // Short entirely before the long range, and entirely after.
            assert_eq!(
                apply(kind, &low, &high),
                merge::apply(kind, &low, &high),
                "{kind} low/high"
            );
            assert_eq!(
                apply(kind, &high, &low),
                merge::apply(kind, &high, &low),
                "{kind} high/low"
            );
        }
        assert_eq!(intersect(&low, &high), Vec::<Elem>::new());
        assert_eq!(subtract(&low, &high), low);
    }

    #[test]
    fn fully_contained_operands() {
        let long: Vec<Elem> = (0..200).collect();
        let short: Vec<Elem> = (50..60).collect();
        for kind in SetOpKind::ALL {
            assert_eq!(
                apply(kind, &short, &long),
                merge::apply(kind, &short, &long),
                "{kind}"
            );
        }
        assert_eq!(intersect(&short, &long), short);
        assert_eq!(subtract(&short, &long), Vec::<Elem>::new());
    }

    /// `long == short` length ties at the dispatch boundary: galloping must
    /// stay correct for the shapes `select_tier` only sends it *past* the
    /// crossover, including exactly-at-the-tie and equal-length operands.
    #[test]
    fn dispatch_boundary_length_ties() {
        use crate::adaptive::GALLOP_CROSSOVER;
        let short: Vec<Elem> = (0..8).map(|i| i * 7).collect();
        for extra in [0usize, 1] {
            let long: Vec<Elem> = (0..short.len() * GALLOP_CROSSOVER + extra)
                .map(|i| i as Elem * 3)
                .collect();
            for kind in SetOpKind::ALL {
                assert_eq!(
                    apply(kind, &short, &long),
                    merge::apply(kind, &short, &long),
                    "{kind} at crossover{}",
                    if extra == 0 { " tie" } else { " + 1" }
                );
            }
        }
        // long == short (maximally tied lengths, identical contents).
        for kind in SetOpKind::ALL {
            assert_eq!(
                apply(kind, &short, &short),
                merge::apply(kind, &short, &short),
                "{kind} self"
            );
        }
    }

    fn sorted_set(max: u32, len: usize) -> impl Strategy<Value = Vec<Elem>> {
        proptest::collection::btree_set(0..max, 0..len).prop_map(|s| s.into_iter().collect())
    }

    proptest! {
        /// Galloping kernels agree with the merge kernels everywhere.
        #[test]
        fn matches_merge_kernels(
            short in sorted_set(2000, 50),
            long in sorted_set(2000, 400),
        ) {
            for kind in SetOpKind::ALL {
                prop_assert_eq!(
                    apply(kind, &short, &long),
                    merge::apply(kind, &short, &long),
                    "{}", kind
                );
            }
        }

        /// Count kernels equal the length of the trimmed materialized result
        /// (the satellite property: `count(op, a, b, bound) ==
        /// apply(op, trim(a), trim(b)).len()`), galloping tier.
        #[test]
        fn count_bounded_matches_trimmed_apply(
            short in sorted_set(2000, 50),
            long in sorted_set(2000, 400),
            bound in proptest::option::of(0u32..2100),
        ) {
            for kind in SetOpKind::ALL {
                let expected = merge::apply(
                    kind,
                    crate::bound::trim(&short, bound),
                    crate::bound::trim(&long, bound),
                ).len() as u64;
                prop_assert_eq!(count_bounded(kind, &short, &long, bound), expected, "{}", kind);
            }
        }

        /// The gallop search agrees with plain binary search.
        #[test]
        fn gallop_search_matches_binary_search(
            hay in sorted_set(500, 100),
            needle in 0u32..500,
        ) {
            prop_assert_eq!(gallop_search(&hay, needle), hay.binary_search(&needle));
        }
    }
}
