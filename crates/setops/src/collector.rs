//! The result collector: round-robin aggregation of IU bitvectors.
//!
//! Paper Section 4.3: results for the same segment arriving from multiple
//! IUs are merged with bitwise OR; when the incoming segment index changes,
//! the previous segment is complete, is translated back to list form, and is
//! concatenated onto the output set. For intersection the 1-bits survive;
//! for (anti-)subtraction the 0-bits survive (`A − B₁ − B₂ =
//! (A − B₁) ∩ (A − B₂)`, again a bitwise OR of the presence bitvectors).

use crate::bitvector::SegBitvec;
use crate::{Elem, SetOpKind};

/// Streaming aggregator of `(segment, bitvector)` results.
///
/// Feed results via [`receive`](Self::receive) in non-decreasing segment
/// order (the hardware's round-robin collection guarantees results for the
/// same segment are adjacent), then call [`finish`](Self::finish).
#[derive(Debug)]
pub struct ResultCollector<'a> {
    kind: SetOpKind,
    current: Option<(usize, &'a [Elem], SegBitvec)>,
    out: Vec<Elem>,
    receives: u64,
}

impl<'a> ResultCollector<'a> {
    /// Creates a collector for one set operation.
    pub fn new(kind: SetOpKind) -> Self {
        Self {
            kind,
            current: None,
            out: Vec::new(),
            receives: 0,
        }
    }

    /// Receives one IU result: the bitvector over segment `seg_idx`, whose
    /// elements are `elems`.
    ///
    /// # Panics
    ///
    /// Panics if `seg_idx` decreases with respect to the previous call, or
    /// if the bitvector length does not match the segment length.
    pub fn receive(&mut self, seg_idx: usize, elems: &'a [Elem], bitvec: SegBitvec) {
        assert_eq!(
            elems.len(),
            bitvec.len(),
            "bitvector/segment length mismatch"
        );
        self.receives += 1;
        match &mut self.current {
            Some((cur_idx, _, acc)) if *cur_idx == seg_idx => {
                acc.or_assign(&bitvec);
            }
            Some((cur_idx, _, _)) => {
                assert!(
                    seg_idx > *cur_idx,
                    "segments must arrive in non-decreasing order ({seg_idx} after {cur_idx})"
                );
                self.flush();
                self.current = Some((seg_idx, elems, bitvec));
            }
            None => {
                self.current = Some((seg_idx, elems, bitvec));
            }
        }
    }

    fn flush(&mut self) {
        if let Some((_, elems, acc)) = self.current.take() {
            let keep_ones = self.kind == SetOpKind::Intersect;
            for (p, &x) in elems.iter().enumerate() {
                if acc.get(p) == keep_ones {
                    self.out.push(x);
                }
            }
        }
    }

    /// Number of results received so far (one per IU emission; the serial
    /// collection cost is proportional to this).
    pub fn receive_count(&self) -> u64 {
        self.receives
    }

    /// Flushes the final segment and returns the aggregated sorted list.
    pub fn finish(mut self) -> Vec<Elem> {
        self.flush();
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(len: usize, ones: &[usize]) -> SegBitvec {
        let mut b = SegBitvec::zeros(len);
        for &i in ones {
            b.set(i);
        }
        b
    }

    /// The paper's Figure 8 end-to-end subtraction: short segment
    /// [1, 7, 11, 18], bitvectors 1100 and 0001 from two IUs → OR = 1101 →
    /// surviving element 11.
    #[test]
    fn figure_8_aggregation() {
        let short = [1, 7, 11, 18];
        let mut c = ResultCollector::new(SetOpKind::Subtract);
        c.receive(0, &short, bv(4, &[0, 1]));
        c.receive(0, &short, bv(4, &[3]));
        assert_eq!(c.finish(), vec![11]);
    }

    #[test]
    fn intersection_keeps_ones() {
        let seg = [2, 4, 6, 8];
        let mut c = ResultCollector::new(SetOpKind::Intersect);
        c.receive(0, &seg, bv(4, &[1, 3]));
        assert_eq!(c.finish(), vec![4, 8]);
    }

    #[test]
    fn anti_subtraction_keeps_zeros() {
        let seg = [2, 4, 6];
        let mut c = ResultCollector::new(SetOpKind::AntiSubtract);
        c.receive(0, &seg, bv(3, &[1]));
        assert_eq!(c.finish(), vec![2, 6]);
    }

    #[test]
    fn segment_change_flushes_previous() {
        let seg0 = [1, 3];
        let seg1 = [5, 7];
        let mut c = ResultCollector::new(SetOpKind::Intersect);
        c.receive(0, &seg0, bv(2, &[0]));
        c.receive(2, &seg1, bv(2, &[1]));
        assert_eq!(c.finish(), vec![1, 7]);
    }

    #[test]
    fn empty_collector_finishes_empty() {
        let c = ResultCollector::new(SetOpKind::Intersect);
        assert!(c.finish().is_empty());
    }

    #[test]
    fn receive_count_tracks_emissions() {
        let seg = [1];
        let mut c = ResultCollector::new(SetOpKind::Intersect);
        c.receive(0, &seg, bv(1, &[]));
        c.receive(0, &seg, bv(1, &[0]));
        assert_eq!(c.receive_count(), 2);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_segments_rejected() {
        let seg = [1];
        let mut c = ResultCollector::new(SetOpKind::Intersect);
        c.receive(1, &seg, bv(1, &[]));
        c.receive(0, &seg, bv(1, &[]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_rejected() {
        let seg = [1, 2];
        let mut c = ResultCollector::new(SetOpKind::Intersect);
        c.receive(0, &seg, bv(1, &[]));
    }
}
