//! Fourth kernel tier: explicit SIMD kernels for the three set operations
//! on sorted `u32` lists, plus a hardware-popcount word sweep for the
//! resident-bitmap count kernel.
//!
//! The list kernels use the shuffle-based block-compare scheme of
//! EmptyHeaded-style engines: load four elements of each operand, compare
//! all sixteen pairs with four cyclic-rotation `cmpeq` rounds, and reduce
//! the per-lane hit mask with `movemask`. The block whose maximum is
//! smaller advances (both advance on a tie), so every equal pair is
//! compared exactly once; a scalar merge finishes the sub-block tails.
//! Outputs and counts are bit-identical to [`crate::merge`] — the
//! property tests at the bottom of this module and the cross-tier suites
//! in `tests/properties.rs` pin that, so tier choice stays a pure
//! performance decision (DESIGN.md §14).
//!
//! **Guarding.** Intrinsics are triple-gated: the `simd` cargo feature
//! (off → this module is pure delegation to the scalar merge kernels),
//! the target architecture (`core::arch::x86_64`; other architectures,
//! including aarch64, currently take the mandatory scalar fallback), and
//! a cached runtime probe (`is_x86_feature_detected!`). Every public
//! entry point is safe and total on every target — [`available`] reports
//! which path actually runs.
// lint: hot-path(alloc)
// lint: hot-path(index)

// The only unsafe code in the workspace lives behind this module's
// runtime feature probe; the crate root denies unsafe_code everywhere
// else. Safety arguments are local `// SAFETY:` comments.
#![allow(unsafe_code)]

use crate::{bound, merge, Elem, SetOpKind};

/// Lane width of the block-compare kernels (four `u32`s per 128-bit
/// vector). Sub-block tails fall back to the scalar merge.
pub const SIMD_BLOCK: usize = 4;

/// Whether the vector list kernels actually run on this build + CPU:
/// the `simd` cargo feature is enabled, the target is x86_64, and the
/// runtime probe found SSE2. `false` means every entry point in this
/// module delegates to [`crate::merge`] — same results, scalar speed.
pub fn available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        detect().0
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Whether the word-AND sweep uses the hardware `popcnt` instruction
/// (feature + arch + runtime probe, like [`available`]). When `false`,
/// [`and_popcount`] uses the portable software popcount — still correct,
/// still branch-free.
pub fn popcount_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        detect().1
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn detect() -> (bool, bool) {
    use std::sync::OnceLock;
    static PROBE: OnceLock<(bool, bool)> = OnceLock::new();
    *PROBE.get_or_init(|| {
        (
            std::arch::is_x86_feature_detected!("sse2"),
            std::arch::is_x86_feature_detected!("popcnt"),
        )
    })
}

/// `a ∩ b` appended into `out` (cleared first), block-compared four lanes
/// at a time when [`available`]; the scalar merge otherwise. Operands
/// must be strictly increasing duplicate-free sets, like every kernel in
/// this crate.
pub fn intersect_into(a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if detect().0 {
        // SAFETY: SSE2 presence was verified by the runtime probe above.
        unsafe { x86::intersect_into_sse2(a, b, out) };
        return;
    }
    merge::intersect_into(a, b, out);
}

/// `a − b` appended into `out` (cleared first); vector path when
/// [`available`], scalar merge otherwise.
pub fn subtract_into(a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if detect().0 {
        // SAFETY: SSE2 presence was verified by the runtime probe above.
        unsafe { x86::subtract_into_sse2(a, b, out) };
        return;
    }
    merge::subtract_into(a, b, out);
}

/// Applies `kind` to the paper's `(short, long)` operand convention into a
/// caller-owned buffer — the SIMD-tier sibling of
/// [`crate::merge::apply_into`]. Anti-subtraction swaps the operands into
/// the same subtract kernel, exactly as the galloping tier does.
pub fn apply_into(kind: SetOpKind, short: &[Elem], long: &[Elem], out: &mut Vec<Elem>) {
    match kind {
        SetOpKind::Intersect => intersect_into(short, long, out),
        SetOpKind::Subtract => subtract_into(short, long, out),
        SetOpKind::AntiSubtract => subtract_into(long, short, out),
    }
}

/// Allocating convenience wrapper over [`apply_into`] for tests and
/// sweeps; mining loops use the `_into` form with a recycled buffer.
pub fn apply(kind: SetOpKind, short: &[Elem], long: &[Elem]) -> Vec<Elem> {
    // lint: allow-alloc(allocating convenience wrapper; hot loops call apply_into with a recycled buffer)
    let mut out = Vec::new();
    apply_into(kind, short, long, &mut out);
    out
}

/// `|a ∩ b|` with no output buffer: the block-compare loop accumulates
/// `movemask` popcounts instead of pushing elements. Scalar merge count
/// when the vector path is unavailable.
pub fn intersect_count(a: &[Elem], b: &[Elem]) -> u64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if detect().0 {
        // SAFETY: SSE2 presence was verified by the runtime probe above.
        return unsafe { x86::intersect_count_sse2(a, b) };
    }
    merge::intersect_count(a, b)
}

/// `|apply(kind, short, long)|` without materializing the result, via the
/// same count identity as [`crate::merge::count`]: every kind reduces to
/// `|short ∩ long|` plus operand-length arithmetic.
pub fn count(kind: SetOpKind, short: &[Elem], long: &[Elem]) -> u64 {
    let both = intersect_count(short, long);
    match kind {
        SetOpKind::Intersect => both,
        SetOpKind::Subtract => short.len() as u64 - both,
        SetOpKind::AntiSubtract => long.len() as u64 - both,
    }
}

/// Bound-pushed count: both operands are trimmed to elements strictly
/// greater than the optional symmetry-breaking bound *before* the block
/// loop, sharing [`crate::bound::trim`] with every other tier so the
/// `c <= bound` convention cannot drift.
pub fn count_bounded(kind: SetOpKind, short: &[Elem], long: &[Elem], bound: Option<Elem>) -> u64 {
    count(kind, bound::trim(short, bound), bound::trim(long, bound))
}

/// Zipped word-AND + popcount over two bitmap word slices — the sweep
/// behind the resident×resident intersection count
/// ([`crate::bitmap::intersect_count_resident`]). Uses the hardware
/// `popcnt` instruction when [`popcount_available`]; the portable
/// software popcount otherwise. Slices of unequal length are zipped to
/// the shorter one (bits past the shorter universe cannot intersect).
pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if detect().1 {
        // SAFETY: popcnt presence was verified by the runtime probe above.
        return unsafe { x86::and_popcount_popcnt(a, b) };
    }
    and_popcount_scalar(a, b)
}

fn and_popcount_scalar(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| u64::from((x & y).count_ones()))
        .sum()
}

/// The guarded x86_64 kernels. Everything here assumes the runtime SSE2
/// (resp. popcnt) probe already passed — the public dispatchers above are
/// the only callers.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use crate::Elem;
    use core::arch::x86_64::{
        __m128i, _mm_castsi128_ps, _mm_cmpeq_epi32, _mm_loadu_si128, _mm_movemask_ps, _mm_or_si128,
        _mm_shuffle_epi32,
    };

    /// 4-bit mask of `a`-lanes `a[i..i+4]` that occur anywhere in
    /// `b[j..j+4]`: four `cmpeq` rounds against cyclic rotations of the
    /// `b` block compare all sixteen pairs.
    ///
    /// # Safety
    ///
    /// Requires SSE2 and `i + 4 <= a.len() && j + 4 <= b.len()`.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn block_match_mask(a: &[Elem], i: usize, b: &[Elem], j: usize) -> u32 {
        debug_assert!(i + 4 <= a.len() && j + 4 <= b.len());
        // SAFETY: the caller guarantees four readable elements at each
        // offset; `loadu` has no alignment requirement.
        let va = unsafe { _mm_loadu_si128(a.as_ptr().add(i).cast::<__m128i>()) };
        let vb = unsafe { _mm_loadu_si128(b.as_ptr().add(j).cast::<__m128i>()) };
        let m0 = _mm_cmpeq_epi32(va, vb);
        let m1 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b00_11_10_01)); // rotate 1
        let m2 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b01_00_11_10)); // rotate 2
        let m3 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b10_01_00_11)); // rotate 3
        let any = _mm_or_si128(_mm_or_si128(m0, m1), _mm_or_si128(m2, m3));
        _mm_movemask_ps(_mm_castsi128_ps(any)) as u32
    }

    /// Why the block loop is exhaustive: a block only advances when its
    /// maximum is `<=` the other block's maximum, so any element of the
    /// advancing block is `<` every element of the other operand beyond
    /// its current block — no equal pair is ever skipped. `seen`
    /// accumulates the hit mask of the *current* `a` block across rounds
    /// in which only `b` advances, so the scalar tail knows which lanes
    /// of a partially processed block were already resolved. Operands
    /// are strictly increasing duplicate-free sets, so a lane matches at
    /// most once and in-round lane order emission stays sorted.
    ///
    /// # Safety
    ///
    /// Requires SSE2 (the dispatcher's runtime probe).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn intersect_into_sse2(a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
        out.clear();
        let (mut i, mut j) = (0usize, 0usize);
        let mut seen: u32 = 0;
        while i + 4 <= a.len() && j + 4 <= b.len() {
            // SAFETY: loop condition guarantees both blocks are in bounds.
            let hits = unsafe { block_match_mask(a, i, b, j) };
            let fresh = hits & !seen;
            for k in 0..4 {
                if fresh & (1 << k) != 0 {
                    out.push(a[i + k]); // lint: allow-index(i + 4 <= a.len() from the loop condition, k < 4)
                }
            }
            seen |= hits;
            let amax = a[i + 3]; // lint: allow-index(i + 4 <= a.len() from the loop condition)
            let bmax = b[j + 3]; // lint: allow-index(j + 4 <= b.len() from the loop condition)
            if bmax <= amax {
                j += 4;
            }
            if amax <= bmax {
                i += 4;
                seen = 0;
            }
        }
        // Partially processed a-block: lanes in `seen` are already
        // emitted; the rest rejoin the scalar tail below.
        if seen != 0 {
            debug_assert!(i + 4 <= a.len());
            for k in 0..4 {
                if seen & (1 << k) != 0 {
                    continue;
                }
                let x = a[i + k]; // lint: allow-index(seen != 0 implies i + 4 <= a.len(); see the debug_assert)
                                  // lint: allow-index(j < b.len() from the loop condition)
                while j < b.len() && b[j] < x {
                    j += 1;
                }
                // lint: allow-index(j < b.len() checked first in the conjunction)
                if j < b.len() && b[j] == x {
                    out.push(x);
                    j += 1;
                }
            }
            i += 4;
        }
        while i < a.len() && j < b.len() {
            // lint: allow-index(i and j are bounded by the loop condition)
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]); // lint: allow-index(i < a.len() from the loop condition)
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Count-only form of [`intersect_into_sse2`]: accumulates popcounts
    /// of the fresh hit masks instead of pushing elements.
    ///
    /// # Safety
    ///
    /// Requires SSE2 (the dispatcher's runtime probe).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn intersect_count_sse2(a: &[Elem], b: &[Elem]) -> u64 {
        let mut n: u64 = 0;
        let (mut i, mut j) = (0usize, 0usize);
        let mut seen: u32 = 0;
        while i + 4 <= a.len() && j + 4 <= b.len() {
            // SAFETY: loop condition guarantees both blocks are in bounds.
            let hits = unsafe { block_match_mask(a, i, b, j) };
            n += u64::from((hits & !seen).count_ones());
            seen |= hits;
            let amax = a[i + 3]; // lint: allow-index(i + 4 <= a.len() from the loop condition)
            let bmax = b[j + 3]; // lint: allow-index(j + 4 <= b.len() from the loop condition)
            if bmax <= amax {
                j += 4;
            }
            if amax <= bmax {
                i += 4;
                seen = 0;
            }
        }
        if seen != 0 {
            debug_assert!(i + 4 <= a.len());
            for k in 0..4 {
                if seen & (1 << k) != 0 {
                    continue;
                }
                let x = a[i + k]; // lint: allow-index(seen != 0 implies i + 4 <= a.len(); see the debug_assert)
                                  // lint: allow-index(j < b.len() from the loop condition)
                while j < b.len() && b[j] < x {
                    j += 1;
                }
                // lint: allow-index(j < b.len() checked first in the conjunction)
                if j < b.len() && b[j] == x {
                    n += 1;
                    j += 1;
                }
            }
            i += 4;
        }
        while i < a.len() && j < b.len() {
            // lint: allow-index(i and j are bounded by the loop condition)
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// `a − b` via the same block compare: an `a` block's unmatched lanes
    /// are emitted only when the block advances (every `b` element that
    /// could still match has been compared by then — see
    /// [`intersect_into_sse2`]'s exhaustiveness argument).
    ///
    /// # Safety
    ///
    /// Requires SSE2 (the dispatcher's runtime probe).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn subtract_into_sse2(a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
        out.clear();
        let (mut i, mut j) = (0usize, 0usize);
        let mut seen: u32 = 0;
        while i + 4 <= a.len() && j + 4 <= b.len() {
            // SAFETY: loop condition guarantees both blocks are in bounds.
            seen |= unsafe { block_match_mask(a, i, b, j) };
            let amax = a[i + 3]; // lint: allow-index(i + 4 <= a.len() from the loop condition)
            let bmax = b[j + 3]; // lint: allow-index(j + 4 <= b.len() from the loop condition)
            if amax <= bmax {
                for k in 0..4 {
                    if seen & (1 << k) == 0 {
                        out.push(a[i + k]); // lint: allow-index(i + 4 <= a.len() from the loop condition, k < 4)
                    }
                }
                i += 4;
                seen = 0;
            }
            if bmax <= amax {
                j += 4;
            }
        }
        // Partially processed a-block: matched lanes are excluded for
        // good; unmatched lanes still need the remaining b tail.
        if seen != 0 {
            debug_assert!(i + 4 <= a.len());
            for k in 0..4 {
                if seen & (1 << k) != 0 {
                    continue;
                }
                let x = a[i + k]; // lint: allow-index(seen != 0 implies i + 4 <= a.len(); see the debug_assert)
                                  // lint: allow-index(j < b.len() from the loop condition)
                while j < b.len() && b[j] < x {
                    j += 1;
                }
                // lint: allow-index(j < b.len() checked first in the conjunction)
                if j < b.len() && b[j] == x {
                    j += 1;
                } else {
                    out.push(x);
                }
            }
            i += 4;
        }
        while i < a.len() {
            // lint: allow-index(i < a.len() from the loop; j < b.len() is checked first in the disjunction)
            if j >= b.len() || a[i] < b[j] {
                out.push(a[i]); // lint: allow-index(i < a.len() from the loop condition)
                i += 1;
            // lint: allow-index(this branch is only reached when j < b.len())
            } else if a[i] > b[j] {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
    }

    /// Word-AND + popcount sweep with the hardware `popcnt` instruction
    /// (`count_ones` lowers to `popcnt` under this target feature).
    ///
    /// # Safety
    ///
    /// Requires popcnt (the dispatcher's runtime probe).
    #[target_feature(enable = "popcnt")]
    pub(super) unsafe fn and_popcount_popcnt(a: &[u64], b: &[u64]) -> u64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| u64::from((x & y).count_ones()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_all_kinds(short: &[Elem], long: &[Elem]) {
        for kind in SetOpKind::ALL {
            let expected = merge::apply(kind, short, long);
            assert_eq!(apply(kind, short, long), expected, "{kind}");
            assert_eq!(
                count(kind, short, long),
                expected.len() as u64,
                "count {kind}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_operands() {
        assert_all_kinds(&[], &[]);
        assert_all_kinds(&[], &[1, 2, 3, 4, 5]);
        assert_all_kinds(&[1, 2, 3, 4, 5], &[]);
        assert_all_kinds(&[3], &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_all_kinds(&[1, 2, 3, 4, 5, 6, 7, 8], &[9]);
    }

    #[test]
    fn aligned_tails_exactly_multiple_of_block() {
        // Both operands a multiple of the 4-lane block: no scalar tail.
        let a: Vec<Elem> = (0..32).map(|i| i * 3).collect();
        let b: Vec<Elem> = (0..16).map(|i| i * 6).collect();
        assert_all_kinds(&a, &b);
        // One element past the block boundary on each side.
        let a5: Vec<Elem> = (0..33).map(|i| i * 3).collect();
        let b5: Vec<Elem> = (0..17).map(|i| i * 6).collect();
        assert_all_kinds(&a5, &b5);
        assert_all_kinds(&a5, &b);
        assert_all_kinds(&a, &b5);
    }

    #[test]
    fn matches_straddling_block_boundaries() {
        // Equal runs that force a stationary a-block across several
        // b-block advances (exercises the `seen` accumulation) and vice
        // versa.
        let a: Vec<Elem> = vec![0, 1, 2, 3, 100, 101, 102, 103];
        let b: Vec<Elem> = (0..104).collect();
        assert_all_kinds(&a, &b);
        assert_all_kinds(&b, &a);
        let sparse: Vec<Elem> = (0..40).map(|i| i * 11).collect();
        let dense: Vec<Elem> = (0..440).collect();
        assert_all_kinds(&sparse, &dense);
        assert_all_kinds(&dense, &sparse);
    }

    #[test]
    fn identical_and_disjoint_operands() {
        let a: Vec<Elem> = (0..23).map(|i| i * 2).collect();
        let b: Vec<Elem> = (0..23).map(|i| i * 2 + 1).collect();
        assert_all_kinds(&a, &a);
        assert_all_kinds(&a, &b);
    }

    #[test]
    fn into_variants_clear_the_buffer() {
        let mut buf = vec![99, 98, 97];
        intersect_into(&[1, 2, 3, 4, 5], &[2, 4, 6, 8], &mut buf);
        assert_eq!(buf, vec![2, 4]);
        subtract_into(&[1, 2, 3, 4, 5], &[2, 4, 6, 8], &mut buf);
        assert_eq!(buf, vec![1, 3, 5]);
    }

    #[test]
    fn availability_is_consistent_with_build_gates() {
        // On x86_64 with the feature on, the probe must find SSE2 (it is
        // baseline for the architecture); elsewhere both report false.
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        assert!(available());
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        {
            assert!(!available());
            assert!(!popcount_available());
        }
    }

    #[test]
    fn and_popcount_matches_scalar_and_zips_to_shorter() {
        let a = [u64::MAX, 0b1011, 0, 0xdead_beef_dead_beef];
        let b = [u64::MAX, 0b1101, u64::MAX];
        let expected = and_popcount_scalar(&a, &b);
        assert_eq!(and_popcount(&a, &b), expected);
        assert_eq!(and_popcount(&b, &a), expected);
        assert_eq!(and_popcount(&a[..3], &b), expected);
        assert_eq!(and_popcount(&[], &b), 0);
        assert_eq!(expected, 64 + 2);
    }

    fn sorted_set_strategy(max_len: usize) -> impl Strategy<Value = Vec<Elem>> {
        proptest::collection::btree_set(0u32..500, 0..max_len).prop_map(|s| s.into_iter().collect())
    }

    fn word_vec_strategy() -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::btree_set(0u32..100_000, 0..64).prop_map(|s| {
            s.into_iter()
                .map(|x| u64::from(x).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect()
        })
    }

    proptest! {
        /// Every kernel form (plain / count / bounded × ∩ / − / anti−)
        /// is identical to the merge reference on random sorted sets.
        #[test]
        fn all_forms_match_merge_reference(
            a in sorted_set_strategy(128),
            b in sorted_set_strategy(128),
            bound in proptest::option::of(0u32..520),
        ) {
            let mut buf = Vec::new();
            for kind in SetOpKind::ALL {
                let expected = merge::apply(kind, &a, &b);
                apply_into(kind, &a, &b, &mut buf);
                prop_assert_eq!(&buf, &expected, "apply {}", kind);
                prop_assert_eq!(
                    count(kind, &a, &b),
                    expected.len() as u64,
                    "count {}", kind
                );
                prop_assert_eq!(
                    count_bounded(kind, &a, &b, bound),
                    merge::count_bounded(kind, &a, &b, bound),
                    "count_bounded {}", kind
                );
            }
        }

        /// The word sweep equals the software popcount for arbitrary
        /// word vectors (covers the popcnt-enabled path on x86_64).
        /// Words are derived from set draws via a mixing multiply so the
        /// bit patterns are dense and irregular.
        #[test]
        fn and_popcount_matches_software(
            a in word_vec_strategy(),
            b in word_vec_strategy(),
        ) {
            prop_assert_eq!(and_popcount(&a, &b), and_popcount_scalar(&a, &b));
        }

        /// Dense value ranges force many matches per block, including
        /// multi-round stationary blocks.
        #[test]
        fn dense_collisions_match_merge(
            a in proptest::collection::btree_set(0u32..64, 0..48)
                .prop_map(|s| s.into_iter().collect::<Vec<Elem>>()),
            b in proptest::collection::btree_set(0u32..64, 0..48)
                .prop_map(|s| s.into_iter().collect::<Vec<Elem>>()),
        ) {
            for kind in SetOpKind::ALL {
                prop_assert_eq!(
                    apply(kind, &a, &b),
                    merge::apply(kind, &a, &b),
                    "{}", kind
                );
            }
        }
    }
}
