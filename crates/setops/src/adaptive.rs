//! Adaptive kernel-tier selection for the software mining hot path.
//!
//! The crate offers four interchangeable kernel tiers for every set
//! operation — all bit-identical in output, so the choice is purely a
//! performance decision made per call:
//!
//! 1. [`merge`](crate::merge) — one-pass streaming, `O(s + l)`; best when
//!    the operands are comparably sized.
//! 2. [`galloping`](crate::galloping) — exponential search of the long
//!    side, `O(s · log(l/s))`; best for skewed operands.
//! 3. [`bitmap`](crate::bitmap) — `O(1)` word probes against a dense
//!    [`NeighborBitmap`](crate::bitmap::NeighborBitmap) of the long side,
//!    `O(s)` per op; best when the long side is a cached hub adjacency.
//! 4. [`simd`](crate::simd) — shuffle-based block compares, four lanes
//!    per step; best in the merge region once both operands are long
//!    enough to amortize the vector setup.
//!
//! [`select_tier`] / [`select_tier_with`] are the single place the
//! crossover policy lives. The mining executor consults them for every
//! scheduled set operation; the bench harness uses the same functions so
//! microbenchmarks measure exactly what the miner dispatches.

use crate::SetOpKind;

/// Long/short length ratio above which galloping beats the one-pass merge:
/// probing `s` candidates into a list of length `l` costs
/// `O(s · log(l/s))` versus merge's `O(s + l)`, which crosses over once
/// `l/s` clears the constant-factor gap between a branchy binary search
/// step and a streaming compare. 16× is the measured crossover for these
/// kernels (see the `bitmap_kernels` bench experiment); it is deliberately
/// conservative so near-balanced operands stay on the cheaper merge.
///
/// This is the **only** definition of the crossover — call sites must use
/// [`select_tier`] (or this constant) rather than re-hardcoding `16`.
pub const GALLOP_CROSSOVER: usize = 16;

/// Minimum length **both** operands must reach before the SIMD tier
/// replaces the merge in its region of the crossover space. Below it the
/// per-call overhead (dispatch, partial blocks, the scalar tail) eats the
/// 4-lane win; the `simd_kernels` bench experiment measures the region.
/// Like [`GALLOP_CROSSOVER`], this constant is the **only** definition —
/// call sites must go through [`select_tier_with`] /
/// [`select_count_tier_with`].
pub const SIMD_MIN_LEN: usize = 16;

/// Which kernel family executes one set operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// One-pass whole-list merge ([`crate::merge`]).
    Merge,
    /// Exponential-search probing ([`crate::galloping`]).
    Galloping,
    /// Dense-bitmap word probes ([`crate::bitmap`]).
    Bitmap,
    /// Shuffle-based 4-lane block compare ([`crate::simd`]).
    Simd,
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelTier::Merge => "merge",
            KernelTier::Galloping => "galloping",
            KernelTier::Bitmap => "bitmap",
            KernelTier::Simd => "simd",
        })
    }
}

/// Picks the kernel tier for one `(short, long)` operation.
///
/// `resident_words` is `Some(w)` when a dense bitmap of the long operand is
/// available (cached, or cheap to build because the long side is a hub the
/// caller's cache covers), where `w` is the bitmap's word count — the cost
/// of a full word scan. `None` means only the list tiers are available.
///
/// Policy:
///
/// - **Intersect / Subtract** with a bitmap available: always `Bitmap` —
///   probing costs one word load per short element, which undercuts both
///   list kernels for every operand shape.
/// - **AntiSubtract** with a bitmap available: `Bitmap` only when the word
///   scan (`w`) is no more expensive than restreaming both lists
///   (`s + l`); emitting the long side means the output is `Ω(l − s)`
///   either way, so only the scan overhead differs.
/// - Otherwise: `Galloping` when `l > s · `[`GALLOP_CROSSOVER`], `Merge`
///   when the ratio ties or is below (ties stream; see the boundary tests).
///
/// Equivalent to [`select_tier_with`] with the SIMD tier disabled — the
/// compatibility spelling for call sites that predate the fourth tier.
pub fn select_tier(
    kind: SetOpKind,
    short_len: usize,
    long_len: usize,
    resident_words: Option<usize>,
) -> KernelTier {
    select_tier_with(kind, short_len, long_len, resident_words, false)
}

/// [`select_tier`] with the fourth tier in play. `simd` is the caller's
/// *policy* toggle (`EngineConfig::simd`, the CLI `--no-simd` flag); it
/// is ANDed with [`crate::simd::available`]'s build/CPU probe here, so
/// callers never have to consult the probe themselves and a `Simd`
/// verdict always means the vector kernels actually run.
///
/// Crossover policy for the new tier: the SIMD block compare replaces the
/// **merge** in the balanced region — same streaming cost shape, four
/// lanes per step — once both operands reach [`SIMD_MIN_LEN`]. It never
/// replaces galloping (for `l/s` beyond [`GALLOP_CROSSOVER`] the
/// `O(s · log(l/s))` probe count beats any constant-factor streaming win)
/// and never outranks a resident bitmap (`O(s)` word probes).
pub fn select_tier_with(
    kind: SetOpKind,
    short_len: usize,
    long_len: usize,
    resident_words: Option<usize>,
    simd: bool,
) -> KernelTier {
    if let Some(words) = resident_words {
        match kind {
            SetOpKind::Intersect | SetOpKind::Subtract => return KernelTier::Bitmap,
            SetOpKind::AntiSubtract => {
                if words <= short_len + long_len {
                    return KernelTier::Bitmap;
                }
            }
        }
    }
    if long_len > short_len.saturating_mul(GALLOP_CROSSOVER) {
        KernelTier::Galloping
    } else if simd && short_len.min(long_len) >= SIMD_MIN_LEN && crate::simd::available() {
        KernelTier::Simd
    } else {
        KernelTier::Merge
    }
}

/// Picks the kernel tier for one **count-only** `(short, long)` operation —
/// the sibling of [`select_tier`] for fused terminal counting, kept here so
/// the crossover policy for count ops lives in the same single place.
///
/// `resident` is true when a dense bitmap of the long operand is available.
/// No word count is needed: counting never emits the long side, because
/// every kind reduces to `|short ∩ long|` plus operand-length arithmetic
/// (see [`crate::bitmap::count`]). The policy therefore differs from the
/// materializing one in exactly one way — **anti-subtract counts take the
/// bitmap unconditionally** when resident (`O(short)` probes, no
/// `⌈n/64⌉`-word scan to weigh), while the list-tier crossover is the same
/// [`GALLOP_CROSSOVER`] ratio with the same tie-goes-to-merge semantics.
pub fn select_count_tier(
    kind: SetOpKind,
    short_len: usize,
    long_len: usize,
    resident: bool,
) -> KernelTier {
    select_count_tier_with(kind, short_len, long_len, resident, false)
}

/// [`select_count_tier`] with the fourth tier in play — the count-only
/// sibling of [`select_tier_with`], with the identical SIMD region
/// (merge's balanced region, both operands `>=` [`SIMD_MIN_LEN`], policy
/// toggle ANDed with the runtime probe). Count ops reduce to
/// `|short ∩ long|` for every kind, which is exactly the block-compare
/// kernel's best case: no output is materialized, only `movemask`
/// popcounts accumulate.
pub fn select_count_tier_with(
    kind: SetOpKind,
    short_len: usize,
    long_len: usize,
    resident: bool,
    simd: bool,
) -> KernelTier {
    let _ = kind; // every kind counts via intersection — kind cannot matter
    if resident {
        return KernelTier::Bitmap;
    }
    if long_len > short_len.saturating_mul(GALLOP_CROSSOVER) {
        KernelTier::Galloping
    } else if simd && short_len.min(long_len) >= SIMD_MIN_LEN && crate::simd::available() {
        KernelTier::Simd
    } else {
        KernelTier::Merge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_operands_gallop_balanced_operands_merge() {
        assert_eq!(
            select_tier(SetOpKind::Intersect, 4, 65, None),
            KernelTier::Galloping
        );
        assert_eq!(
            select_tier(SetOpKind::Intersect, 100, 100, None),
            KernelTier::Merge
        );
        assert_eq!(
            select_tier(SetOpKind::Subtract, 0, 1, None),
            KernelTier::Galloping
        );
    }

    /// The dispatch boundary: a long side of exactly `short × 16` ties and
    /// stays on merge; one element more crosses into galloping. This pins
    /// the `>` (not `>=`) semantics every call site relies on.
    #[test]
    fn crossover_boundary_tie_goes_to_merge() {
        for s in [1usize, 3, 10, 100] {
            let tie = s * GALLOP_CROSSOVER;
            assert_eq!(
                select_tier(SetOpKind::Intersect, s, tie, None),
                KernelTier::Merge,
                "tie at short={s}"
            );
            assert_eq!(
                select_tier(SetOpKind::Intersect, s, tie + 1, None),
                KernelTier::Galloping,
                "past tie at short={s}"
            );
        }
    }

    #[test]
    fn huge_short_side_does_not_overflow() {
        assert_eq!(
            select_tier(SetOpKind::Intersect, usize::MAX, usize::MAX, None),
            KernelTier::Merge
        );
    }

    #[test]
    fn probes_prefer_bitmap_whenever_resident() {
        for kind in [SetOpKind::Intersect, SetOpKind::Subtract] {
            for (s, l) in [(1usize, 1usize), (10, 1000), (1000, 10)] {
                assert_eq!(
                    select_tier(kind, s, l, Some(1_000_000)),
                    KernelTier::Bitmap,
                    "{kind} s={s} l={l}"
                );
            }
        }
    }

    #[test]
    fn count_tier_always_prefers_resident_bitmap() {
        for kind in SetOpKind::ALL {
            for (s, l) in [(1usize, 1usize), (10, 1000), (1000, 10), (50, 150)] {
                assert_eq!(
                    select_count_tier(kind, s, l, true),
                    KernelTier::Bitmap,
                    "{kind} s={s} l={l}"
                );
            }
        }
    }

    #[test]
    fn count_tier_list_crossover_matches_select_tier() {
        for kind in SetOpKind::ALL {
            for (s, l) in [(4usize, 65usize), (100, 100), (0, 1), (3, 48), (3, 49)] {
                assert_eq!(
                    select_count_tier(kind, s, l, false),
                    select_tier(SetOpKind::Intersect, s, l, None),
                    "{kind} s={s} l={l}"
                );
            }
        }
    }

    /// The SIMD tier claims exactly the merge's balanced region with both
    /// operands at or past `SIMD_MIN_LEN` — never the galloping or bitmap
    /// regions — and only when the policy toggle and the runtime probe
    /// agree. (On non-x86_64 or scalar-only builds the probe is false and
    /// every would-be Simd verdict collapses to Merge; both outcomes are
    /// accepted below so the test is green on any target.)
    #[test]
    fn simd_tier_claims_only_the_balanced_region() {
        let simd_or_merge = |t: KernelTier| {
            if crate::simd::available() {
                assert_eq!(t, KernelTier::Simd);
            } else {
                assert_eq!(t, KernelTier::Merge);
            }
        };
        for kind in SetOpKind::ALL {
            // Balanced and long enough: Simd (probe permitting).
            simd_or_merge(select_tier_with(kind, 64, 64, None, true));
            simd_or_merge(select_count_tier_with(kind, 64, 64, false, true));
            simd_or_merge(select_tier_with(
                kind,
                SIMD_MIN_LEN,
                SIMD_MIN_LEN,
                None,
                true,
            ));
            // One operand below the minimum: Merge, regardless of probe.
            assert_eq!(
                select_tier_with(kind, SIMD_MIN_LEN - 1, SIMD_MIN_LEN, None, true),
                KernelTier::Merge
            );
            assert_eq!(
                select_count_tier_with(kind, SIMD_MIN_LEN, SIMD_MIN_LEN - 1, false, true),
                KernelTier::Merge
            );
            // Policy toggle off: identical to the legacy selectors.
            assert_eq!(
                select_tier_with(kind, 64, 64, None, false),
                select_tier(kind, 64, 64, None)
            );
            // Past the galloping crossover: still galloping.
            assert_eq!(
                select_tier_with(kind, 20, 20 * GALLOP_CROSSOVER + 1, None, true),
                KernelTier::Galloping
            );
            assert_eq!(
                select_count_tier_with(kind, 20, 20 * GALLOP_CROSSOVER + 1, false, true),
                KernelTier::Galloping
            );
            // Resident bitmap still outranks Simd for counts.
            assert_eq!(
                select_count_tier_with(kind, 64, 64, true, true),
                KernelTier::Bitmap
            );
        }
        // Resident bitmap outranks Simd for materializing ∩/−.
        for kind in [SetOpKind::Intersect, SetOpKind::Subtract] {
            assert_eq!(
                select_tier_with(kind, 64, 64, Some(4), true),
                KernelTier::Bitmap
            );
        }
    }

    #[test]
    fn anti_subtract_weighs_word_scan_against_restream() {
        // Small universe: scanning 4 words beats restreaming 200 elements.
        assert_eq!(
            select_tier(SetOpKind::AntiSubtract, 50, 150, Some(4)),
            KernelTier::Bitmap
        );
        // Huge universe, short lists: word scan would dominate — fall back
        // to the list tiers (here the merge, operands being balanced).
        assert_eq!(
            select_tier(SetOpKind::AntiSubtract, 50, 150, Some(100_000)),
            KernelTier::Merge
        );
        // ... and to galloping when also skewed.
        assert_eq!(
            select_tier(SetOpKind::AntiSubtract, 2, 1000, Some(100_000)),
            KernelTier::Galloping
        );
    }
}
