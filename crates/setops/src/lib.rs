//! Set-operation substrate for the FINGERS reproduction.
//!
//! Pattern-aware graph mining reduces to set intersection and subtraction on
//! sorted vertex-ID lists (paper Section 2.1). This crate implements both the
//! straightforward whole-list merge kernels and the full segmented pipeline
//! that a FINGERS processing element executes (Sections 3.4, 4.2, 4.3):
//!
//! - [`merge`]: one-pass merge-based ∩ / − / anti− on whole sorted lists —
//!   the functional reference, and the unit of work a FlexMiner-style PE
//!   performs serially.
//! - [`galloping`]: exponential-search kernels for skewed operand sizes
//!   (the software-miner fast path).
//! - [`bitmap`]: dense-bitmap kernels probing a cached hub adjacency
//!   ([`bitmap::NeighborBitmap`]) in one word load per element — the third
//!   software kernel tier.
//! - [`simd`]: shuffle-based block-compare kernels over guarded
//!   `core::arch` intrinsics with runtime feature detection and a
//!   mandatory scalar fallback — the fourth software kernel tier, plus
//!   the hardware-popcount word sweep behind the resident-bitmap count.
//! - [`adaptive`]: the per-call tier choosers ([`adaptive::select_tier`]
//!   for materializing ops, [`adaptive::select_count_tier`] for fused
//!   count-only ops) and the single documented galloping-crossover constant
//!   ([`adaptive::GALLOP_CROSSOVER`]).
//! - [`bound`]: the shared lower-bound (symmetry-breaking) convention —
//!   `c <= bound` is excluded — used by the mining executor's restriction
//!   logic and the bounded count kernels alike.
//!
//! The three kernel tiers additionally expose count-only forms
//! (`merge::count`, `galloping::count`, `bitmap::count` and the
//! `count_bounded` bound-pushing entry points) that return a cardinality
//! without writing an output buffer — the substrate for the mining
//! executor's fused terminal counting (DESIGN.md § count fusion & bound
//! pushing).
//! - [`segment`]: fixed-length segmentation (`s_l = 16`, `s_s = 4`) and head
//!   lists (the first element of every segment).
//! - [`pairing`]: the task-divider model — binary-search matching of short
//!   heads against the long head list, the load table, and max-load
//!   splitting of long-segment workloads across intersect units.
//! - [`bitvector`]: the intersect-unit (IU) compute model — every operation
//!   is computed as a segment intersection whose result is a bitvector.
//! - [`collector`]: round-robin result aggregation with bitwise OR and
//!   translation back to a sorted list.
//! - [`segmented`]: the end-to-end pipeline gluing the above together,
//!   returning both the exact result and per-IU cycle statistics. Property
//!   tests assert it always equals the whole-list merge kernels.
//!
//! # Example
//!
//! ```
//! use fingers_setops::{merge, segmented, SetOpKind, SegmentedConfig};
//!
//! let candidate = vec![1, 4, 7, 9, 12, 15];
//! let neighbors = vec![2, 4, 6, 8, 9, 10, 15, 20];
//! let reference = merge::apply(SetOpKind::Intersect, &candidate, &neighbors);
//! let pipeline = segmented::execute(
//!     SetOpKind::Intersect,
//!     &candidate,
//!     &neighbors,
//!     &SegmentedConfig::default(),
//! );
//! assert_eq!(pipeline.result, reference);
//! assert_eq!(pipeline.result, vec![4, 9, 15]);
//! ```

// Denied (not forbidden) so exactly one module can opt back in: the
// guarded SIMD intrinsics in `simd`, which carries its own
// `#![allow(unsafe_code)]` with per-site SAFETY arguments. Everything
// else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod bitmap;
pub mod bitvector;
pub mod bound;
pub mod collector;
pub mod galloping;
pub mod merge;
pub mod pairing;
pub mod segment;
pub mod segmented;
pub mod simd;

use serde::{Deserialize, Serialize};

/// Element type of the sorted sets (vertex IDs).
pub type Elem = u32;

/// Default long-segment length `s_l` (paper Section 3.4: neighbor lists are
/// pre-divided into read-only fixed-length segments of size 16).
pub const LONG_SEGMENT_LEN: usize = 16;

/// Default short-segment length `s_s` (candidate vertex sets are divided
/// into segments of size 4 during computation).
pub const SHORT_SEGMENT_LEN: usize = 4;

/// The three set operations of the paper's Equation (1).
///
/// All three take a *short* set (the partially materialized candidate vertex
/// set `S_j(i)`) and a *long* set (the neighbor list `N(u_i)`):
///
/// - `Intersect`: `short ∩ long`
/// - `Subtract`: `short − long`
/// - `AntiSubtract`: `long − short`
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetOpKind {
    /// `S_j(i) ∩ N(u_i)` — `u_j` connected to `u_i`.
    Intersect,
    /// `S_j(i) − N(u_i)` — `u_j` disconnected from `u_i`.
    Subtract,
    /// `N(u_i) − S_j(i)` — `u_j` connected only to `u_i` among ancestors so
    /// far; the candidate set materialization was postponed to this level.
    AntiSubtract,
}

impl SetOpKind {
    /// All three operations, for exhaustive tests and sweeps.
    pub const ALL: [SetOpKind; 3] = [
        SetOpKind::Intersect,
        SetOpKind::Subtract,
        SetOpKind::AntiSubtract,
    ];
}

impl std::fmt::Display for SetOpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SetOpKind::Intersect => "intersect",
            SetOpKind::Subtract => "subtract",
            SetOpKind::AntiSubtract => "anti-subtract",
        };
        f.write_str(s)
    }
}

/// Configuration of the segmented pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentedConfig {
    /// Long (neighbor-list) segment length `s_l`.
    pub long_segment_len: usize,
    /// Short (candidate-set) segment length `s_s`.
    pub short_segment_len: usize,
    /// Maximum number of short segments assigned to one IU for a single long
    /// segment before the load is split across IUs (paper Figure 7,
    /// "max load").
    pub max_load: usize,
}

impl Default for SegmentedConfig {
    fn default() -> Self {
        Self {
            long_segment_len: LONG_SEGMENT_LEN,
            short_segment_len: SHORT_SEGMENT_LEN,
            max_load: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_constants() {
        let c = SegmentedConfig::default();
        assert_eq!(c.long_segment_len, 16);
        assert_eq!(c.short_segment_len, 4);
    }

    #[test]
    fn kind_display_is_nonempty() {
        for k in SetOpKind::ALL {
            assert!(!k.to_string().is_empty());
        }
    }
}
