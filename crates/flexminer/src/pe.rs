//! The FlexMiner PE: serial DFS walker with a single merge unit.

use std::collections::HashMap;
use std::rc::Rc;

use fingers_core::chip::PeModel;
use fingers_core::stats::{ChipReport, PeStats};
use fingers_graph::{CsrGraph, VertexId};
use fingers_pattern::{ExecutionPlan, MultiPlan, PlanOp};
use fingers_setops::{merge, Elem, SetOpKind};
use fingers_sim::{Cycle, MemoryConfig, MemorySystem, SetAssocCache, MEM_SCALE};
use serde::{Deserialize, Serialize};

/// Configuration of one FlexMiner PE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlexMinerPeConfig {
    /// Private (c-map/neighbor) cache capacity in paper-scale bytes.
    pub private_cache_bytes: u64,
    /// Private-cache hit latency in cycles.
    pub private_hit_latency: Cycle,
    /// Fixed per-task control overhead in cycles.
    pub pipeline_overhead: u64,
}

impl Default for FlexMinerPeConfig {
    fn default() -> Self {
        Self {
            private_cache_bytes: 32 * 1024,
            private_hit_latency: 2,
            pipeline_overhead: 4,
        }
    }
}

/// Chip configuration: FlexMiner's largest published configuration is
/// 40 PEs, the iso-area counterpart of 20 FINGERS PEs (Section 6.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlexMinerChipConfig {
    /// Number of PEs (default 40).
    pub num_pes: usize,
    /// Per-PE configuration.
    pub pe: FlexMinerPeConfig,
    /// Memory-system configuration (identical substrate to FINGERS).
    pub memory: MemoryConfig,
    /// NoC hop latency in cycles (same mesh model as the FINGERS chip).
    pub noc_per_hop: Cycle,
    /// NoC injection/ejection overhead in cycles.
    pub noc_base: Cycle,
}

impl Default for FlexMinerChipConfig {
    fn default() -> Self {
        Self {
            num_pes: 40,
            pe: FlexMinerPeConfig::default(),
            memory: MemoryConfig::paper_default(),
            noc_per_hop: 1,
            noc_base: 2,
        }
    }
}

impl FlexMinerChipConfig {
    /// A single-PE chip (Section 6.2's comparison unit).
    pub fn single_pe() -> Self {
        Self {
            num_pes: 1,
            ..Self::default()
        }
    }

    /// Sets the shared-cache capacity in paper-scale MB (Figure 13 sweep).
    pub fn with_shared_cache_mb(mut self, mb: f64) -> Self {
        self.memory = MemoryConfig::with_shared_cache_mb(mb);
        self
    }
}

/// Memoization key for identical in-task computations: operand
/// identities, operation discriminant, and symmetry-breaking clip bound.
type MemoKey = (usize, usize, u8, Option<Elem>);
type Memo = HashMap<MemoKey, Rc<Vec<Elem>>>;

/// One stack entry of the strict-DFS walk.
#[derive(Debug, Clone)]
struct Frame {
    plan_idx: usize,
    level: usize,
    mapped: Rc<Vec<VertexId>>,
    /// Candidate sets materialized so far, by target level (copy-on-extend;
    /// k ≤ 10 so this stays tiny).
    sets: Rc<Vec<Option<Rc<Vec<Elem>>>>>,
}

/// The FlexMiner PE simulation state.
#[derive(Debug)]
pub struct FlexMinerPe<'g> {
    graph: &'g CsrGraph,
    plans: Vec<&'g ExecutionPlan>,
    cfg: FlexMinerPeConfig,
    private: SetAssocCache,
    now: Cycle,
    stack: Vec<Frame>,
    stats: PeStats,
    noc_latency: Cycle,
}

impl<'g> FlexMinerPe<'g> {
    /// Creates a PE executing `multi` on `graph`.
    ///
    /// # Panics
    ///
    /// Panics if any pattern has fewer than 2 vertices.
    pub fn new(graph: &'g CsrGraph, multi: &'g MultiPlan, cfg: FlexMinerPeConfig) -> Self {
        let plans: Vec<&ExecutionPlan> = multi.plans().iter().collect();
        assert!(
            plans.iter().all(|p| p.pattern_size() >= 2),
            "patterns must have at least 2 vertices"
        );
        let private = SetAssocCache::new((cfg.private_cache_bytes / MEM_SCALE).max(1024), 64, 8);
        Self {
            graph,
            stats: PeStats {
                num_ius: 1,
                embeddings: vec![0; plans.len()],
                ..PeStats::default()
            },
            plans,
            cfg,
            private,
            now: 0,
            stack: Vec::new(),
            noc_latency: 0,
        }
    }

    /// Sets this PE's one-way NoC latency to the shared cache.
    pub fn set_noc_latency(&mut self, latency: Cycle) {
        self.noc_latency = latency;
    }

    /// Blocking fetch of a neighbor list through the private cache; missed
    /// lines go to the shared memory system.
    fn fetch_list(&mut self, v: VertexId, mem: &mut MemorySystem) -> Cycle {
        let addr = self.graph.neighbor_list_addr(v);
        let bytes = self.graph.neighbor_list_bytes(v);
        let line = 64u64;
        let first = addr / line;
        let last = if bytes == 0 {
            first
        } else {
            (addr + bytes - 1) / line
        };
        let mut done = self.now + self.cfg.private_hit_latency;
        for l in first..=last {
            if !self.private.access(l * line) {
                let out = mem.fetch(self.now, l * line, line);
                done = done.max(out.completion + self.noc_latency + self.cfg.private_hit_latency);
            }
        }
        done
    }

    /// Executes one DFS task (extend at `frame.level`): serial set ops on
    /// the single merge unit, then push children in reverse order.
    fn run_task(&mut self, frame: Frame, mem: &mut MemorySystem) {
        let plan = self.plans[frame.plan_idx];
        let k = plan.pattern_size();
        let level = frame.level;
        let u = frame.mapped[level];
        self.stats.tasks += 1;

        // Blocking fetch: the intrinsic DFS dependency stall of Section 2.3.
        let data_done = self.fetch_list(u, mem);
        if data_done > self.now {
            self.stats.stall_cycles += data_done - self.now;
        }
        let mut t = self.now.max(data_done);

        let streamed: Rc<Vec<Elem>> = Rc::new(self.graph.neighbors(u).to_vec());
        let mut sets: Vec<Option<Rc<Vec<Elem>>>> = (*frame.sets).clone();
        let mut memo: Memo = HashMap::new();

        for op in plan.actions_at(level) {
            let target = op.target();
            let bound = known_bound(plan, target, level, &frame.mapped);
            let result = match *op {
                PlanOp::Init { .. } => {
                    let key = (Rc::as_ptr(&streamed) as usize, usize::MAX, 0, bound);
                    match memo.get(&key) {
                        Some(s) => Rc::clone(s),
                        None => {
                            let r = Rc::new(clip(&streamed, bound).to_vec());
                            memo.insert(key, Rc::clone(&r));
                            r
                        }
                    }
                }
                PlanOp::InitAnti { short, .. } => {
                    // The ancestor's list must be re-streamed for this op.
                    let list_done = self.fetch_list(frame.mapped[short], mem);
                    t = t.max(list_done);
                    let short_list = Rc::new(self.graph.neighbors(frame.mapped[short]).to_vec());
                    let key = (Rc::as_ptr(&short_list) as usize, u as usize, 1, bound);
                    self.serial_op(
                        &mut memo,
                        key,
                        SetOpKind::AntiSubtract,
                        clip(&short_list, bound),
                        clip(&streamed, bound),
                        &mut t,
                    )
                }
                PlanOp::Apply { list, kind, .. } => {
                    // §11: verified plans never Apply to a target before
                    // its base op ran (fingers-verify's use-before-init
                    // check); a miss is a plan bug, not a runtime error.
                    #[allow(clippy::expect_used)] // §11: justified above
                    let short = sets[target]
                        .as_ref()
                        .map(Rc::clone)
                        .expect("Apply requires a materialized set");
                    let long: Rc<Vec<Elem>> = if list == level {
                        Rc::clone(&streamed)
                    } else {
                        let list_done = self.fetch_list(frame.mapped[list], mem);
                        t = t.max(list_done);
                        Rc::new(self.graph.neighbors(frame.mapped[list]).to_vec())
                    };
                    // Streaming the long operand again for this op: the
                    // private cache decides whether it is on chip.
                    if list == level {
                        let done = self.fetch_list(u, mem);
                        t = t.max(done);
                    }
                    let key = (
                        Rc::as_ptr(&short) as usize,
                        Rc::as_ptr(&long) as usize,
                        2 + kind as u8,
                        bound,
                    );
                    self.serial_op(
                        &mut memo,
                        key,
                        kind,
                        clip(&short, bound),
                        clip(&long, bound),
                        &mut t,
                    )
                }
            };
            sets[target] = Some(result);
        }

        t += self.cfg.pipeline_overhead;
        self.now = self.now.max(t);
        self.stats.cycles = self.now;

        // Candidates for the next level.
        let next = level + 1;
        // §11: verified plans materialize S_{next} at some level <= level
        // (fingers-verify's materialization check); a miss is a plan bug.
        #[allow(clippy::expect_used)]
        let final_set = sets[next].as_ref().expect("S_{next} materialized");
        let full_bound = known_bound(plan, next, level, &frame.mapped);
        let candidates: Vec<VertexId> = clip(final_set, full_bound)
            .iter()
            .copied()
            .filter(|c| !frame.mapped.contains(c))
            .collect();

        if next == k - 1 {
            self.stats.embeddings[frame.plan_idx] += candidates.len() as u64;
        } else {
            let sets = Rc::new(sets);
            // Strict DFS: push children in reverse so the smallest-ID
            // candidate is explored first.
            for &c in candidates.iter().rev() {
                let mut mapped = (*frame.mapped).clone();
                mapped.push(c);
                self.stack.push(Frame {
                    plan_idx: frame.plan_idx,
                    level: next,
                    mapped: Rc::new(mapped),
                    sets: Rc::clone(&sets),
                });
            }
        }
    }

    /// One serial merge-unit operation: one element per cycle over both
    /// inputs, memoized for identical operand pairs.
    fn serial_op(
        &mut self,
        memo: &mut Memo,
        key: MemoKey,
        kind: SetOpKind,
        short: &[Elem],
        long: &[Elem],
        t: &mut Cycle,
    ) -> Rc<Vec<Elem>> {
        if let Some(s) = memo.get(&key) {
            return Rc::clone(s);
        }
        let cycles = merge::merge_steps(kind, short, long).max(1);
        *t += cycles;
        self.stats.iu_busy_cycles += cycles;
        self.stats.balance_busy += cycles;
        self.stats.balance_span += cycles;
        self.stats.set_ops += 1;
        self.stats.workloads += 1;
        let r = Rc::new(merge::apply(kind, short, long));
        memo.insert(key, Rc::clone(&r));
        r
    }
}

fn clip(set: &[Elem], bound: Option<Elem>) -> &[Elem] {
    match bound {
        Some(b) => &set[set.partition_point(|&x| x <= b)..],
        None => set,
    }
}

fn known_bound(
    plan: &ExecutionPlan,
    target: usize,
    level: usize,
    mapped: &[VertexId],
) -> Option<Elem> {
    plan.schedule(target)
        .lower_bounds
        .iter()
        .filter(|&&a| a <= level)
        .map(|&a| mapped[a])
        .max()
}

impl PeModel for FlexMinerPe<'_> {
    fn now(&self) -> Cycle {
        self.now
    }

    fn set_now(&mut self, c: Cycle) {
        self.now = self.now.max(c);
    }

    fn has_work(&self) -> bool {
        !self.stack.is_empty()
    }

    fn start_tree(&mut self, root: VertexId) {
        for plan_idx in (0..self.plans.len()).rev() {
            let k = self.plans[plan_idx].pattern_size();
            self.stack.push(Frame {
                plan_idx,
                level: 0,
                mapped: Rc::new(vec![root]),
                sets: Rc::new(vec![None; k]),
            });
        }
    }

    fn step(&mut self, mem: &mut MemorySystem) {
        if let Some(frame) = self.stack.pop() {
            self.run_task(frame, mem);
        }
    }

    fn take_stats(&mut self) -> PeStats {
        self.stats.cycles = self.now;
        std::mem::take(&mut self.stats)
    }
}

/// Simulates a FlexMiner chip executing `multi` over `graph`.
pub fn simulate_flexminer(
    graph: &CsrGraph,
    multi: &MultiPlan,
    config: &FlexMinerChipConfig,
) -> ChipReport {
    let mut mem = MemorySystem::new(config.memory);
    let noc = fingers_sim::MeshNoc::for_pes(config.num_pes, config.noc_per_hop, config.noc_base);
    let mut pes: Vec<FlexMinerPe> = (0..config.num_pes)
        .map(|i| {
            let mut pe = FlexMinerPe::new(graph, multi, config.pe.clone());
            pe.set_noc_latency(noc.pe_latency(i));
            pe
        })
        .collect();
    fingers_core::chip::run_chip_with_roots(
        pes.as_mut_slice(),
        &mut mem,
        fingers_core::chip::root_order(graph, fingers_core::chip::RootSchedule::Sequential),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingers_core::chip::simulate_fingers;
    use fingers_core::config::ChipConfig;
    use fingers_graph::gen::erdos_renyi;
    use fingers_graph::GraphBuilder;
    use fingers_mining::count_benchmark;
    use fingers_pattern::benchmarks::Benchmark;

    #[test]
    fn k4_triangles() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .build();
        let r = simulate_flexminer(&g, &Benchmark::Tc.plan(), &FlexMinerChipConfig::single_pe());
        assert_eq!(r.embeddings, vec![4]);
    }

    /// Functional equivalence with the software miner for every benchmark.
    #[test]
    fn counts_match_software_miner() {
        let g = erdos_renyi(60, 240, 11);
        for bench in Benchmark::ALL {
            let expected = count_benchmark(&g, bench);
            let cfg = FlexMinerChipConfig {
                num_pes: 3,
                ..FlexMinerChipConfig::default()
            };
            let r = simulate_flexminer(&g, &bench.plan(), &cfg);
            assert_eq!(r.embeddings, expected.per_pattern, "{bench}");
        }
    }

    /// The headline direction: a FINGERS PE beats a FlexMiner PE on a graph
    /// with long neighbor lists.
    #[test]
    fn fingers_single_pe_is_faster() {
        let g = erdos_renyi(150, 3000, 5); // avg degree 40
        let multi = Benchmark::Tc.plan();
        let fm = simulate_flexminer(&g, &multi, &FlexMinerChipConfig::single_pe());
        let fi = simulate_fingers(&g, &multi, &ChipConfig::single_pe());
        assert_eq!(fm.embeddings, fi.embeddings);
        assert!(
            fi.cycles < fm.cycles,
            "FINGERS {} vs FlexMiner {}",
            fi.cycles,
            fm.cycles
        );
    }

    #[test]
    fn more_pes_scale() {
        let g = erdos_renyi(120, 700, 3);
        let multi = Benchmark::Tc.plan();
        let one = simulate_flexminer(&g, &multi, &FlexMinerChipConfig::single_pe());
        let eight = simulate_flexminer(
            &g,
            &multi,
            &FlexMinerChipConfig {
                num_pes: 8,
                ..FlexMinerChipConfig::default()
            },
        );
        assert!(eight.cycles * 2 < one.cycles);
        assert_eq!(eight.embeddings, one.embeddings);
    }
}
