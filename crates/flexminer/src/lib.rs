//! FlexMiner baseline accelerator model (paper Section 2.2 / Section 5).
//!
//! FlexMiner (Chen et al., ISCA 2021) is the state-of-the-art pattern-aware
//! graph mining accelerator the paper compares against. Its chip-level
//! architecture matches FINGERS (multiple PEs + shared cache + DRAM + global
//! root scheduler), so this crate reuses `fingers-core`'s
//! [`PeModel`](fingers_core::chip::PeModel) driver and memory substrate and
//! replaces only the PE internals, exactly as the paper does ("we can just
//! tune the concrete PE designs"):
//!
//! - **strict DFS**, one task at a time, with *blocking* neighbor-list
//!   fetches (no branch-level parallelism — the long-memory-stall
//!   inefficiency of Section 2.3);
//! - a **single serial merge unit** consuming one element per cycle, with
//!   set operations executed sequentially (no set- or segment-level
//!   parallelism);
//! - a **per-PE private cache** in front of the shared cache for neighbor
//!   lists (standing in for FlexMiner's c-map/neighbor caching; FINGERS
//!   instead keeps candidate sets private and streams neighbor lists).
//!
//! Both designs execute identical compiled plans (vertex orders, schedules,
//! restrictions), per the paper's methodology.
//!
//! # Example
//!
//! ```
//! use fingers_flexminer::{simulate_flexminer, FlexMinerChipConfig};
//! use fingers_graph::GraphBuilder;
//! use fingers_pattern::benchmarks::Benchmark;
//!
//! let g = GraphBuilder::new()
//!     .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
//!     .build();
//! let r = simulate_flexminer(&g, &Benchmark::Tc.plan(), &FlexMinerChipConfig::single_pe());
//! assert_eq!(r.total_embeddings(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pe;

pub use pe::{simulate_flexminer, FlexMinerChipConfig, FlexMinerPe, FlexMinerPeConfig};
