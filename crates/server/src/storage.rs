//! Storage layer: named, load-once graphs shared immutably across queries.
//!
//! A [`GraphRegistry`] is built once at daemon startup from `name=spec`
//! pairs, loading each graph exactly once and running top-k hub selection
//! once per graph. Every stored graph is an `Arc<CsrGraph>` plus its
//! precomputed `Arc<HubSet>`; queries clone the `Arc`s (refcount bumps,
//! no copies), so a thousand concurrent queries on the same graph share
//! one CSR and one hub set. The registry itself is immutable after
//! construction — the whole layer is lock-free at query time.

use std::collections::BTreeMap;
use std::sync::Arc;

use fingers_graph::datasets::Dataset;
use fingers_graph::hubs::HubSet;
use fingers_graph::CsrGraph;
use fingers_mining::EngineConfig;

/// Where a registered graph comes from (same spec grammar as the CLI's
/// `--graph`: a file path, `dataset:<abbrev>`, or `gen:<er|pl>:<n>:<m>:<seed>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSpec {
    /// A whitespace edge-list file.
    File(String),
    /// A Table 1 stand-in dataset.
    Dataset(Dataset),
    /// `gen:er:<n>:<m>:<seed>` — Erdős–Rényi.
    ErdosRenyi {
        /// Vertices.
        n: usize,
        /// Edges.
        m: usize,
        /// Seed.
        seed: u64,
    },
    /// `gen:pl:<n>:<m>:<seed>` — Chung–Lu power law.
    PowerLaw {
        /// Vertices.
        n: usize,
        /// Edges.
        m: usize,
        /// Seed.
        seed: u64,
    },
}

impl GraphSpec {
    /// Parses a spec string.
    ///
    /// # Errors
    ///
    /// A description of why the spec is malformed.
    pub fn parse(spec: &str) -> Result<GraphSpec, String> {
        if let Some(abbrev) = spec.strip_prefix("dataset:") {
            let dataset = Dataset::ALL
                .into_iter()
                .find(|d| {
                    d.abbrev().eq_ignore_ascii_case(abbrev) || d.name().eq_ignore_ascii_case(abbrev)
                })
                .ok_or_else(|| format!("unknown dataset {abbrev:?}"))?;
            return Ok(GraphSpec::Dataset(dataset));
        }
        if let Some(rest) = spec.strip_prefix("gen:") {
            let parts: Vec<&str> = rest.split(':').collect();
            if parts.len() != 4 {
                return Err(format!(
                    "generator spec {spec:?} must be gen:<er|pl>:<n>:<m>:<seed>"
                ));
            }
            let num = |s: &str, what: &str| {
                s.parse::<u64>()
                    .map_err(|_| format!("bad {what} in {spec:?}"))
            };
            let n = num(parts[1], "vertex count")? as usize;
            let m = num(parts[2], "edge count")? as usize;
            let seed = num(parts[3], "seed")?;
            return match parts[0] {
                "er" => Ok(GraphSpec::ErdosRenyi { n, m, seed }),
                "pl" => Ok(GraphSpec::PowerLaw { n, m, seed }),
                other => Err(format!("unknown generator {other:?}")),
            };
        }
        Ok(GraphSpec::File(spec.to_owned()))
    }

    /// Loads or generates the graph.
    ///
    /// # Errors
    ///
    /// I/O and parse failures for file sources, rendered as text.
    pub fn load(&self) -> Result<CsrGraph, String> {
        match self {
            GraphSpec::File(path) => {
                let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
                fingers_graph::io::read_edge_list(std::io::BufReader::new(file))
                    .map_err(|e| format!("{path}: {e}"))
            }
            GraphSpec::Dataset(d) => Ok(d.load()),
            GraphSpec::ErdosRenyi { n, m, seed } => {
                Ok(fingers_graph::gen::erdos_renyi(*n, *m, *seed))
            }
            GraphSpec::PowerLaw { n, m, seed } => Ok(fingers_graph::gen::chung_lu_power_law(
                &fingers_graph::gen::ChungLuConfig::new(*n, *m, *seed),
            )),
        }
    }
}

/// One resident graph: the shared CSR, its precomputed hub set, and
/// metadata for the stats endpoint.
#[derive(Debug)]
pub struct StoredGraph {
    /// Registry name (protocol `graph` field).
    pub name: String,
    /// The spec the graph was loaded from, as given.
    pub spec: String,
    /// The immutable CSR, shared across every query.
    pub graph: Arc<CsrGraph>,
    /// Hub set for the bitmap kernel tier, identified once at load time
    /// (`None` when the engine config disables the tier).
    pub hubs: Option<Arc<HubSet>>,
}

/// The storage layer: a name → [`StoredGraph`] map, immutable after build.
#[derive(Debug, Default)]
pub struct GraphRegistry {
    graphs: BTreeMap<String, Arc<StoredGraph>>,
}

impl GraphRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads `spec` under `name`, precomputing the hub set with `config`'s
    /// hub budget. Replaces any previous graph of the same name.
    ///
    /// # Errors
    ///
    /// The spec parse or load failure, rendered as text.
    pub fn load(&mut self, name: &str, spec: &str, config: &EngineConfig) -> Result<(), String> {
        if name.is_empty() {
            return Err("graph name must be nonempty".into());
        }
        let parsed = GraphSpec::parse(spec)?;
        let graph = Arc::new(parsed.load()?);
        let hubs = config.hub_set(&graph);
        self.graphs.insert(
            name.to_owned(),
            Arc::new(StoredGraph {
                name: name.to_owned(),
                spec: spec.to_owned(),
                graph,
                hubs,
            }),
        );
        Ok(())
    }

    /// The stored graph registered under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<StoredGraph>> {
        self.graphs.get(name).cloned()
    }

    /// Registered names, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.graphs.keys().map(String::as_str)
    }

    /// Every stored graph, in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<StoredGraph>> {
        self.graphs.values()
    }

    /// Number of resident graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_cli_spec_grammar() {
        assert_eq!(
            GraphSpec::parse("gen:er:100:300:7").expect("er"),
            GraphSpec::ErdosRenyi {
                n: 100,
                m: 300,
                seed: 7
            }
        );
        assert_eq!(
            GraphSpec::parse("gen:pl:50:200:3").expect("pl"),
            GraphSpec::PowerLaw {
                n: 50,
                m: 200,
                seed: 3
            }
        );
        assert_eq!(
            GraphSpec::parse("dataset:Mi").expect("dataset"),
            GraphSpec::Dataset(Dataset::Mico)
        );
        assert_eq!(
            GraphSpec::parse("edges.txt").expect("file"),
            GraphSpec::File("edges.txt".into())
        );
        assert!(GraphSpec::parse("gen:er:100:300").is_err());
        assert!(GraphSpec::parse("gen:zz:1:2:3").is_err());
        assert!(GraphSpec::parse("dataset:Nope").is_err());
    }

    #[test]
    fn registry_loads_once_and_shares() {
        let mut reg = GraphRegistry::new();
        reg.load("g1", "gen:er:100:400:1", &EngineConfig::default())
            .expect("loads");
        assert_eq!(reg.len(), 1);
        let a = reg.get("g1").expect("stored");
        let b = reg.get("g1").expect("stored");
        // Same Arc, not a reload.
        assert!(Arc::ptr_eq(&a.graph, &b.graph));
        assert!(a.hubs.is_some(), "default config precomputes hubs");
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.names().collect::<Vec<_>>(), vec!["g1"]);
    }

    #[test]
    fn registry_respects_bitmap_disabled() {
        let mut reg = GraphRegistry::new();
        reg.load("g", "gen:er:50:100:2", &EngineConfig::without_bitmap())
            .expect("loads");
        assert!(reg.get("g").expect("stored").hubs.is_none());
    }

    #[test]
    fn bad_specs_and_files_are_typed_errors() {
        let mut reg = GraphRegistry::new();
        assert!(reg
            .load("g", "gen:er:1:2", &EngineConfig::default())
            .is_err());
        assert!(reg
            .load("g", "/no/such/file", &EngineConfig::default())
            .is_err());
        assert!(reg
            .load("", "gen:er:1:2:3", &EngineConfig::default())
            .is_err());
        assert!(reg.is_empty());
    }
}
