//! Model-checked harnesses for the scheduler's concurrency protocols.
//!
//! Two invariants ride on the [`fingers_conc::model`] explorer here:
//!
//! 1. **Phoenix rebuild never strands a queued job.** A protocol model of
//!    [`crate::sched`]'s queue/condvar/close handshake in which a worker
//!    dies after its first job and — exactly as the `Phoenix` drop guard
//!    does — spawns its own replacement. Under every bounded interleaving
//!    of pushes, deaths, respawns, and shutdown, each queued job is
//!    processed exactly once and exactly one rebuild happens. A protocol
//!    bug that left the replacement parked on the condvar past `close`
//!    would surface as a deadlock, which the explorer reports as a
//!    violation.
//! 2. **The degradation ladder is monotone under charge-only traffic.** A
//!    reader sampling [`crate::sched::degradation_for`] over a gauge that
//!    concurrent workers only charge must never observe the rung go
//!    *down* — admission decisions may lag pressure but must not flap.
//!
//! The harnesses model the protocol rather than spawning the real pool:
//! production workers are OS threads owned by [`crate::Scheduler`], while
//! model threads must be born via [`Sim::spawn`] so the explorer owns
//! their schedule. The queue/close/respawn state machine is copied
//! faithfully from `sched.rs` (`Core::dequeue`, `Scheduler::shutdown`,
//! `Phoenix::drop`); keep the two in sync when touching either.

use crate::sched::{degradation_for, Degradation};
use fingers_conc::model::{check, CheckOptions, CheckReport, Sim};
use fingers_conc::sync::atomic::{AtomicUsize, Ordering};
use fingers_conc::sync::{Condvar, Mutex, PoisonError};
use fingers_mining::MemGauge;
use std::collections::VecDeque;
use std::sync::Arc;

/// The queue/close handshake of `sched::Core`, reduced to its essentials.
struct MiniCore {
    /// `(pending jobs, closed)` — guarded together, as in `QueueState`.
    // lock: queue
    queue: Mutex<(VecDeque<u32>, bool)>,
    ready: Condvar,
    rebuilds: AtomicUsize,
}

impl MiniCore {
    fn new() -> Self {
        MiniCore {
            queue: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            rebuilds: AtomicUsize::new(0),
        }
    }

    /// Mirror of `Core::dequeue`: pop, or wait until closed.
    fn dequeue(&self) -> Option<u32> {
        // lock: queue
        let mut state = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = state.0.pop_front() {
                return Some(job);
            }
            if state.1 {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn push(&self, job: u32) {
        // lock: queue
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .0
            .push_back(job);
        self.ready.notify_one();
    }

    /// Mirror of `Scheduler::shutdown`'s queue half: close, wake everyone.
    fn close(&self) {
        // lock: queue
        self.queue.lock().unwrap_or_else(PoisonError::into_inner).1 = true;
        self.ready.notify_all();
    }
}

/// A worker that never dies: drains the queue until `close`.
fn drain(core: &MiniCore) -> Vec<u32> {
    let mut done = Vec::new();
    while let Some(job) = core.dequeue() {
        done.push(job);
    }
    done
}

/// Invariant: the phoenix respawn protocol processes every queued job
/// exactly once and rebuilds the pool exactly once, under every bounded
/// interleaving of push, worker death, respawn, and close.
pub fn phoenix_rebuild_check(opts: CheckOptions) -> CheckReport {
    check("phoenix-rebuild", opts, |sim| {
        let core = Arc::new(MiniCore::new());
        let first = {
            let core = Arc::clone(&core);
            let sim2: Sim = sim.clone();
            sim.spawn(move || {
                // The mortal worker: completes one job, then "panics". The
                // phoenix guard's Drop runs during unwind and respawns a
                // replacement before the thread is gone — modelled here by
                // spawning the immortal replacement at the death site.
                let mine = core.dequeue().into_iter().collect::<Vec<_>>();
                // ord: relaxed(monotonic stats counter, as in Phoenix::drop)
                core.rebuilds.fetch_add(1, Ordering::Relaxed);
                let replacement = {
                    let core = Arc::clone(&core);
                    sim2.spawn(move || drain(&core))
                };
                (mine, replacement)
            })
        };
        core.push(7);
        core.push(8);
        core.close();
        let (mine, replacement) = first.join();
        let mut done = mine;
        done.extend(replacement.join());
        done.sort_unstable();
        assert_eq!(done, vec![7, 8], "every queued job processed exactly once");
        // ord: relaxed(read after both workers joined)
        assert_eq!(core.rebuilds.load(Ordering::Relaxed), 1, "one rebuild");
    })
}

/// Invariant: under charge-only traffic the degradation rung a reader
/// observes never decreases — pressure readings may lag but cannot flap
/// back toward `Normal` while memory only grows.
pub fn ladder_monotone_check(opts: CheckOptions) -> CheckReport {
    check("ladder-monotone", opts, |sim| {
        let gauge = MemGauge::new();
        let budget = Some(100u64);
        let chargers: Vec<_> = [75u64, 15]
            .iter()
            .map(|&n| {
                let gauge = gauge.clone();
                sim.spawn(move || gauge.charge(n))
            })
            .collect();
        let reader = {
            let gauge = gauge.clone();
            sim.spawn(move || {
                let a = degradation_for(gauge.bytes(), budget);
                let b = degradation_for(gauge.bytes(), budget);
                assert!(
                    b.level() >= a.level(),
                    "ladder must be monotone under charge-only traffic: {a:?} then {b:?}"
                );
            })
        };
        for c in chargers {
            c.join();
        }
        reader.join();
        assert_eq!(
            degradation_for(gauge.bytes(), budget),
            Degradation::ClampThreads,
            "90 bytes of a 100-byte budget sits on the clamp rung"
        );
    })
}
