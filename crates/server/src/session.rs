//! Session layer: untrusted textual queries → verified execution plans.
//!
//! This is the trust boundary of the service. Pattern text is parsed with
//! `fingers_pattern::parse_pattern`, compiled, and gated by the static
//! plan verifier — an unsound plan is a typed [`SessionError::UnsoundPlan`]
//! carrying the verifier's report, never a panic in a worker. Compiled
//! plans are cached in a [`PlanCache`] keyed on the *canonical* pattern
//! (minimum adjacency-mask vector over every vertex relabeling) plus the
//! induced mode, so `tc` and `0-1,1-2,0-2` — or any other spelling of an
//! isomorphic pattern — share one cache entry and one compilation.
//!
//! The cache is bounded: at most [`DEFAULT_PLAN_CACHE_CAP`] entries
//! (configurable via [`PlanCache::with_limits`]), evicting the least
//! recently used plan when full, and its estimated footprint is charged
//! to the daemon's global [`MemGauge`] so cached plans count against the
//! same budget as query scratch memory (DESIGN.md §15).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fingers_mining::MemGauge;
use fingers_pattern::{parse_pattern, ExecutionPlan, Induced, Pattern};
use fingers_verify::{PlanMutation, VerifyReport};

/// Default bound on distinct cached plans. Generous for the paper's
/// workloads (a handful of benchmark patterns) while capping what an
/// adversarial stream of novel patterns can pin in memory.
pub const DEFAULT_PLAN_CACHE_CAP: usize = 64;

/// Typed failures of the session layer, each mapped to a distinct protocol
/// error kind (and client exit code) by the protocol layer.
#[derive(Debug)]
pub enum SessionError {
    /// The pattern text did not parse, or the request was malformed.
    BadRequest(String),
    /// The compiled (or mutated) plan failed static verification.
    UnsoundPlan(VerifyReport),
    /// The requested mutation has no applicable site in this plan.
    Unsupported(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::BadRequest(m) => write!(f, "{m}"),
            SessionError::UnsoundPlan(report) => {
                write!(f, "plan failed static verification: {report}")
            }
            SessionError::Unsupported(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Cache key: canonical adjacency-mask vector + induced mode.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    adj: Vec<u16>,
    induced: Induced,
}

impl PlanKey {
    /// Coarse resident-footprint estimate for the gauge: the boxed key,
    /// the `Arc<ExecutionPlan>` with its per-level instruction vectors
    /// (order of a hundred bytes per pattern vertex), and map overhead.
    /// An estimate is enough — the gauge governs pressure trends, and the
    /// entry *count* is hard-capped independently.
    fn entry_bytes(&self) -> u64 {
        let key = (self.adj.len() * std::mem::size_of::<u16>()) as u64;
        let plan = std::mem::size_of::<ExecutionPlan>() as u64 + self.adj.len() as u64 * 128;
        key + plan + 64
    }
}

/// The canonical adjacency-mask vector of `pattern`: the lexicographic
/// minimum over every relabeling of its vertices. Isomorphic patterns —
/// however they were spelled — map to the same vector. Enumeration is
/// `k!`, the same orbit the compiler's automorphism pass walks; patterns
/// larger than 8 vertices (none of the paper's workloads) fall back to
/// their literal adjacency, which is still a sound (merely less sharing)
/// cache key.
fn canonical_adj(pattern: &Pattern) -> Vec<u16> {
    let k = pattern.size();
    let masks = |p: &Pattern| (0..k).map(|v| p.adjacency_mask(v)).collect::<Vec<u16>>();
    let mut best = masks(pattern);
    if k > 8 {
        return best;
    }
    let mut order: Vec<usize> = (0..k).collect();
    // Heap's algorithm: visits every permutation of `order` exactly once.
    let mut c = vec![0usize; k];
    let mut i = 0;
    while i < k {
        if c[i] < i {
            if i % 2 == 0 {
                order.swap(0, i);
            } else {
                order.swap(c[i], i);
            }
            let candidate = masks(&pattern.relabeled(&order));
            if candidate < best {
                best = candidate;
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    best
}

/// One cached plan plus its recency stamp for LRU eviction.
#[derive(Debug)]
struct CacheEntry {
    plan: Arc<ExecutionPlan>,
    last_used: u64,
}

/// A concurrent, bounded cache of compiled, verified execution plans.
///
/// Misses compile under the lock-free path (compilation happens outside
/// the mutex; a racing duplicate compile is benign — last insert wins and
/// both plans are identical), and every cached plan has passed the
/// verifier, so cache hits skip straight to execution. Inserting past the
/// capacity evicts the least recently used entry; evictions release their
/// gauge charge and are counted for the stats endpoint.
#[derive(Debug)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, CacheEntry>>,
    capacity: usize,
    gauge: Option<MemGauge>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::with_limits(DEFAULT_PLAN_CACHE_CAP, None)
    }
}

impl PlanCache {
    /// An empty cache with the default capacity and no gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` plans (clamped to ≥ 1),
    /// charging entry footprints to `gauge` when one is given.
    pub fn with_limits(capacity: usize, gauge: Option<MemGauge>) -> Self {
        Self {
            plans: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            gauge,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The verified plan for `pattern` under `induced`, compiled on first
    /// use and shared thereafter.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnsoundPlan`] if a freshly compiled plan fails
    /// verification (cannot happen for compiler-produced plans; the gate
    /// is kept because this layer's contract is "nothing unverified ever
    /// reaches a worker").
    pub fn plan(
        &self,
        pattern: &Pattern,
        induced: Induced,
    ) -> Result<Arc<ExecutionPlan>, SessionError> {
        let key = PlanKey {
            adj: canonical_adj(pattern),
            induced,
        };
        // ord: relaxed(monotonic cache statistic)
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        if let Some(hit) = self
            .plans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get_mut(&key)
        {
            hit.last_used = now;
            // ord: relaxed(monotonic cache statistic)
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&hit.plan));
        }
        // ord: relaxed(monotonic cache statistic)
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = ExecutionPlan::compile(pattern, induced);
        let report = fingers_verify::verify(&plan);
        if !report.is_sound() {
            return Err(SessionError::UnsoundPlan(report));
        }
        let plan = Arc::new(plan);
        let entry_bytes = key.entry_bytes();
        let mut map = self
            .plans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while map.len() >= self.capacity {
            let Some(victim) = map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            map.remove(&victim);
            // ord: relaxed(monotonic cache statistic)
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if let Some(gauge) = &self.gauge {
                gauge.release(victim.entry_bytes());
            }
        }
        let fresh = map
            .insert(
                key,
                CacheEntry {
                    plan: Arc::clone(&plan),
                    last_used: now,
                },
            )
            .is_none();
        if fresh {
            if let Some(gauge) = &self.gauge {
                gauge.charge(entry_bytes);
            }
        }
        Ok(plan)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        // ord: relaxed(observability snapshot; approximate reads are fine)
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= compilations) so far.
    pub fn misses(&self) -> u64 {
        // ord: relaxed(observability snapshot; approximate reads are fine)
        self.misses.load(Ordering::Relaxed)
    }

    /// LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        // ord: relaxed(observability snapshot; approximate reads are fine)
        self.evictions.load(Ordering::Relaxed)
    }

    /// The entry bound this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Estimated resident bytes of the cached plans (what the gauge is
    /// charged with when one is attached).
    pub fn bytes(&self) -> u64 {
        self.plans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .keys()
            .map(PlanKey::entry_bytes)
            .sum()
    }

    /// Number of distinct cached plans.
    pub fn len(&self) -> usize {
        self.plans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Parses one pattern spec (name or edge list).
///
/// # Errors
///
/// [`SessionError::BadRequest`] naming the offending spec.
pub fn parse_pattern_spec(spec: &str) -> Result<Pattern, SessionError> {
    parse_pattern(spec).map_err(|e| SessionError::BadRequest(format!("pattern {spec:?}: {e}")))
}

/// Compiles `pattern`, optionally applies a named corruption from the
/// `fingers-verify` mutation corpus, and verifies the result. Mutated
/// plans bypass the cache — they exist to *demonstrate* the unsound-input
/// rejection path, and must never be served to another query.
///
/// # Errors
///
/// [`SessionError::BadRequest`] for an unknown mutation name,
/// [`SessionError::Unsupported`] when the mutation has no site in this
/// plan, and [`SessionError::UnsoundPlan`] when verification rejects the
/// mutated plan (the expected outcome for corpus mutations).
pub fn verified_plan(
    cache: &PlanCache,
    pattern: &Pattern,
    induced: Induced,
    mutate: Option<&str>,
) -> Result<Arc<ExecutionPlan>, SessionError> {
    let Some(name) = mutate else {
        return cache.plan(pattern, induced);
    };
    let mutation = PlanMutation::from_name(name)
        .ok_or_else(|| SessionError::BadRequest(format!("unknown mutation {name:?}")))?;
    let plan = ExecutionPlan::compile(pattern, induced);
    let mutated = mutation.apply(&plan).ok_or_else(|| {
        SessionError::Unsupported(format!(
            "mutation {} has no site in the {pattern} plan",
            mutation.name()
        ))
    })?;
    let report = fingers_verify::verify(&mutated);
    if report.is_sound() {
        Ok(Arc::new(mutated))
    } else {
        Err(SessionError::UnsoundPlan(report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isomorphic_spellings_share_one_entry() {
        let cache = PlanCache::new();
        let named = parse_pattern_spec("tc").expect("named");
        let spelled = parse_pattern_spec("0-1,1-2,0-2").expect("edges");
        let a = cache.plan(&named, Induced::Vertex).expect("sound");
        let b = cache.plan(&spelled, Induced::Vertex).expect("sound");
        assert!(Arc::ptr_eq(&a, &b), "isomorphic patterns must share a plan");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn induced_mode_is_part_of_the_key() {
        let cache = PlanCache::new();
        let p = Pattern::triangle();
        let v = cache.plan(&p, Induced::Vertex).expect("sound");
        let e = cache.plan(&p, Induced::Edge).expect("sound");
        assert!(!Arc::ptr_eq(&v, &e));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn distinct_patterns_do_not_collide() {
        let cache = PlanCache::new();
        for (a, b) in [("tc", "wedge"), ("4cl", "cyc"), ("tt", "dia")] {
            let pa = parse_pattern_spec(a).expect("a");
            let pb = parse_pattern_spec(b).expect("b");
            let ka = canonical_adj(&pa);
            let kb = canonical_adj(&pb);
            assert_ne!(ka, kb, "{a} vs {b}");
            cache.plan(&pa, Induced::Vertex).expect("sound");
            cache.plan(&pb, Induced::Vertex).expect("sound");
        }
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn canonical_form_is_relabeling_invariant() {
        // The tailed triangle spelled two ways: canonical keys agree.
        let a = parse_pattern_spec("0-1,0-2,1-2,2-3").expect("a");
        let b = parse_pattern_spec("1-2,1-3,2-3,0-1").expect("b");
        assert_eq!(canonical_adj(&a), canonical_adj(&b));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = PlanCache::with_limits(2, None);
        let tc = parse_pattern_spec("tc").expect("tc");
        let wedge = parse_pattern_spec("wedge").expect("wedge");
        let cyc = parse_pattern_spec("cyc").expect("cyc");
        let first = cache.plan(&tc, Induced::Vertex).expect("tc in");
        cache.plan(&wedge, Induced::Vertex).expect("wedge in");
        // Touch tc so wedge becomes the LRU victim when cyc arrives.
        cache.plan(&tc, Induced::Vertex).expect("tc hit");
        cache.plan(&cyc, Induced::Vertex).expect("cyc in");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // tc survived (still a hit), wedge was evicted (recompiles).
        let again = cache.plan(&tc, Induced::Vertex).expect("tc still cached");
        assert!(Arc::ptr_eq(&first, &again), "tc must have survived");
        let misses_before = cache.misses();
        cache.plan(&wedge, Induced::Vertex).expect("wedge back");
        assert_eq!(cache.misses(), misses_before + 1, "wedge was evicted");
        assert_eq!(cache.capacity(), 2);
    }

    #[test]
    fn gauge_tracks_cache_footprint_through_eviction() {
        let gauge = MemGauge::new();
        let cache = PlanCache::with_limits(2, Some(gauge.clone()));
        assert_eq!(cache.bytes(), 0);
        let tc = parse_pattern_spec("tc").expect("tc");
        let wedge = parse_pattern_spec("wedge").expect("wedge");
        let cyc = parse_pattern_spec("cyc").expect("cyc");
        cache.plan(&tc, Induced::Vertex).expect("tc");
        cache.plan(&wedge, Induced::Vertex).expect("wedge");
        assert_eq!(gauge.bytes(), cache.bytes(), "gauge mirrors the cache");
        let two_entries = gauge.bytes();
        assert!(two_entries > 0);
        cache.plan(&cyc, Induced::Vertex).expect("cyc evicts LRU");
        assert_eq!(cache.len(), 2);
        assert_eq!(gauge.bytes(), cache.bytes(), "eviction released its charge");
    }

    #[test]
    fn mutation_path_rejects_unsound_and_flags_inapplicable() {
        let cache = PlanCache::new();
        let tt = parse_pattern_spec("tt").expect("tt");
        let err = verified_plan(&cache, &tt, Induced::Vertex, Some("drop-init"))
            .expect_err("drop-init must be caught");
        assert!(matches!(err, SessionError::UnsoundPlan(_)), "{err:?}");
        // Cliques have no subtraction ops to drop.
        let tc = parse_pattern_spec("tc").expect("tc");
        let err = verified_plan(&cache, &tc, Induced::Vertex, Some("drop-subtract"))
            .expect_err("inapplicable");
        assert!(matches!(err, SessionError::Unsupported(_)), "{err:?}");
        let err =
            verified_plan(&cache, &tc, Induced::Vertex, Some("no-such")).expect_err("unknown name");
        assert!(matches!(err, SessionError::BadRequest(_)), "{err:?}");
        // Mutated plans never pollute the cache.
        assert!(cache.is_empty());
    }

    #[test]
    fn bad_pattern_text_is_a_typed_error() {
        let err = parse_pattern_spec("zzz").expect_err("bad spec");
        assert!(matches!(err, SessionError::BadRequest(_)));
        assert!(err.to_string().contains("zzz"));
    }
}
