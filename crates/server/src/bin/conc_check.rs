//! Runs every model-checked harness and emits state-space statistics.
//!
//! The output is the JSON recorded in `BENCH_conc_check.json` at the repo
//! root: one record per harness with the explored-execution count, schedule
//! points, distinct state fingerprints, and completeness flag. The process
//! exits non-zero if any invariant harness reports a violation or an
//! exhausted-bound truncation, or if the seeded-bug fixture *fails* to
//! catch its race — so this binary doubles as the `model-check` CI gate's
//! smoke step.
//!
//! Usage: `cargo run --release -p fingers-server --features model-check --bin conc_check`

use fingers_conc::model::{CheckOptions, CheckReport};
use fingers_mining::model as mining_model;
use fingers_server::model as server_model;
use std::time::Duration;

fn opts() -> CheckOptions {
    CheckOptions {
        max_preemptions: 4,
        max_duration: Duration::from_secs(30),
        ..CheckOptions::default()
    }
}

fn record(r: &CheckReport, expect_violation: bool) -> String {
    format!(
        concat!(
            "  {{\"harness\": {:?}, \"executions\": {}, \"sched_points\": {}, ",
            "\"distinct_states\": {}, \"max_threads\": {}, \"preemption_bound\": {}, ",
            "\"complete\": {}, \"violations\": {}, \"expect_violation\": {}, ",
            "\"wall_ms\": {}}}"
        ),
        r.name,
        r.executions,
        r.sched_points,
        r.distinct_states,
        r.max_threads,
        r.preemption_bound,
        r.complete,
        r.violations.len(),
        expect_violation,
        r.wall_ms,
    )
}

fn main() {
    // (report, does this harness exist to be *caught*?)
    let runs: Vec<(CheckReport, bool)> = vec![
        (mining_model::deque_partition_check(opts()), false),
        (mining_model::deque_split_check(opts()), false),
        (mining_model::deque_racy_check(opts()), true),
        (mining_model::cancel_all_or_nothing_check(opts()), false),
        (mining_model::gauge_drain_check(opts()), false),
        (server_model::phoenix_rebuild_check(opts()), false),
        (server_model::ladder_monotone_check(opts()), false),
    ];

    let mut ok = true;
    let mut lines = Vec::new();
    for (report, expect_violation) in &runs {
        lines.push(record(report, *expect_violation));
        let caught = !report.violations.is_empty();
        if *expect_violation {
            if !caught {
                eprintln!("FAIL {}: seeded bug was not caught", report.name);
                ok = false;
            }
        } else if caught {
            eprintln!("FAIL {}: {}", report.name, report.violations[0].message);
            ok = false;
        } else if !report.complete {
            eprintln!("FAIL {}: bounded space not exhausted", report.name);
            ok = false;
        }
    }

    println!("{{");
    println!("  \"bench\": \"conc_check\",");
    println!("  \"preemption_bound\": {},", opts().max_preemptions);
    println!("  \"harnesses\": [");
    let n = lines.len();
    for (i, line) in lines.into_iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        println!("  {line}{comma}");
    }
    println!("  ]");
    println!("}}");

    if !ok {
        std::process::exit(1);
    }
}
