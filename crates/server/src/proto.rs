//! Protocol layer: newline-delimited JSON requests and responses.
//!
//! One request object per line, one response object per line. Every
//! response carries `"status"`: `"ok"`, `"cancelled"` (with a `reason` of
//! `cancelled` or `deadline`), or `"error"` (with a `kind` from the table
//! below). The error kinds map one-to-one onto client exit codes so shell
//! scripts can tell failure modes apart exactly like the one-shot CLI:
//!
//! | kind           | exit | meaning                                   |
//! |----------------|------|-------------------------------------------|
//! | `bad-request`  | 2    | malformed request / pattern / mutation    |
//! | `unknown-graph`| 3    | graph name not in the registry            |
//! | `engine`       | 5    | isolated worker panic                     |
//! | `unsupported`  | 6    | inapplicable mutation or feature          |
//! | `unsound-plan` | 7    | plan failed static verification           |
//! | `overloaded`   | 8    | admission control rejected or shed it     |
//! | (cancelled)    | 9    | query cancelled or past deadline          |
//! | (transport)    | 10   | client could not reach or read the daemon |
//! | `mem-budget`   | 11   | per-query memory budget exceeded          |
//!
//! `overloaded` responses raised by the memory-pressure degradation
//! ladder additionally carry a `retry_after_ms` hint; the client's
//! seeded backoff honors it (DESIGN.md §15).

use fingers_mining::EngineError;

use crate::json::Json;
use crate::session::SessionError;

/// Error kind: malformed request, pattern, or mutation name.
pub const KIND_BAD_REQUEST: &str = "bad-request";
/// Error kind: graph name not registered.
pub const KIND_UNKNOWN_GRAPH: &str = "unknown-graph";
/// Error kind: isolated mining worker panic.
pub const KIND_ENGINE: &str = "engine";
/// Error kind: unsupported combination (e.g. inapplicable mutation).
pub const KIND_UNSUPPORTED: &str = "unsupported";
/// Error kind: plan failed static verification.
pub const KIND_UNSOUND_PLAN: &str = "unsound-plan";
/// Error kind: rejected by admission control or shed under pressure.
pub const KIND_OVERLOADED: &str = "overloaded";
/// Error kind: the query's metered memory footprint crossed its budget.
pub const KIND_MEM_BUDGET: &str = "mem-budget";

/// The client exit code for a response line: 0 for ok, 9 for cancelled,
/// the kind's code for errors, 10 when the line is not a valid response.
pub fn exit_code_for_response(response: &Json) -> u8 {
    match response.get("status").and_then(Json::as_str) {
        Some("ok") => 0,
        Some("cancelled") => 9,
        Some("error") => match response.get("kind").and_then(Json::as_str) {
            Some(KIND_BAD_REQUEST) => 2,
            Some(KIND_UNKNOWN_GRAPH) => 3,
            Some(KIND_ENGINE) => 5,
            Some(KIND_UNSUPPORTED) => 6,
            Some(KIND_UNSOUND_PLAN) => 7,
            Some(KIND_OVERLOADED) => 8,
            Some(KIND_MEM_BUDGET) => 11,
            _ => 10,
        },
        _ => 10,
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Count embeddings of the given patterns in a registered graph.
    Count {
        /// Client-chosen query id (cancellable while active).
        id: Option<String>,
        /// Registry name of the graph.
        graph: String,
        /// Pattern specs (names or edge lists).
        patterns: Vec<String>,
        /// Requested thread budget (scheduler clamps it).
        threads: Option<usize>,
        /// Deadline for the whole query, in milliseconds.
        timeout_ms: Option<u64>,
        /// Edge-induced instead of vertex-induced semantics.
        edge_induced: bool,
        /// Corpus mutation to apply before verification (demonstrates the
        /// unsound-input rejection path).
        mutate: Option<String>,
    },
    /// Count the 3-motif census (triangle + wedge) in a registered graph.
    MotifCensus {
        /// Client-chosen query id.
        id: Option<String>,
        /// Registry name of the graph.
        graph: String,
        /// Requested thread budget.
        threads: Option<usize>,
        /// Deadline in milliseconds.
        timeout_ms: Option<u64>,
    },
    /// Compile + verify a pattern's plan without running it.
    VerifyPlan {
        /// Pattern spec.
        pattern: String,
        /// Edge-induced semantics.
        edge_induced: bool,
        /// Corpus mutation to apply first.
        mutate: Option<String>,
    },
    /// Service statistics (graphs, plan cache, scheduler counters).
    Stats,
    /// Daemon health probe: uptime, memory gauge, pool state, and the
    /// current degradation rung. Cheap enough for readiness loops.
    Ping,
    /// Cancel the active query with the given id.
    Cancel {
        /// The id given on the query's request.
        id: String,
    },
    /// Orderly daemon shutdown.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A description of the malformation, to be wrapped in a
    /// `bad-request` response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line)?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request needs a string \"op\" field")?;
        let opt_str = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_owned);
        let opt_u64 = |key: &str| match v.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(value) => value
                .as_u64()
                .map(Some)
                .ok_or(format!("\"{key}\" must be a non-negative integer")),
        };
        let flag = |key: &str| match v.get(key) {
            None | Some(Json::Null) => Ok(false),
            Some(value) => value.as_bool().ok_or(format!("\"{key}\" must be a bool")),
        };
        let graph = || {
            v.get("graph")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("{op:?} needs a string \"graph\" field"))
        };
        match op {
            "count" => {
                let patterns = v
                    .get("patterns")
                    .and_then(Json::as_array)
                    .ok_or("\"count\" needs a \"patterns\" array")?
                    .iter()
                    .map(|p| {
                        p.as_str()
                            .map(str::to_owned)
                            .ok_or("\"patterns\" entries must be strings".to_owned())
                    })
                    .collect::<Result<Vec<String>, String>>()?;
                if patterns.is_empty() {
                    return Err("\"patterns\" must be nonempty".into());
                }
                Ok(Request::Count {
                    id: opt_str("id"),
                    graph: graph()?,
                    patterns,
                    threads: opt_u64("threads")?.map(|n| n as usize),
                    timeout_ms: opt_u64("timeout_ms")?,
                    edge_induced: flag("edge_induced")?,
                    mutate: opt_str("mutate"),
                })
            }
            "motif-census" => Ok(Request::MotifCensus {
                id: opt_str("id"),
                graph: graph()?,
                threads: opt_u64("threads")?.map(|n| n as usize),
                timeout_ms: opt_u64("timeout_ms")?,
            }),
            "verify-plan" => Ok(Request::VerifyPlan {
                pattern: opt_str("pattern")
                    .ok_or("\"verify-plan\" needs a string \"pattern\" field")?,
                edge_induced: flag("edge_induced")?,
                mutate: opt_str("mutate"),
            }),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "cancel" => Ok(Request::Cancel {
                id: opt_str("id").ok_or("\"cancel\" needs a string \"id\" field")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// The machine-readable body of one counting run — the *same* schema the
/// CLI's `--json` flag emits, so daemon responses and one-shot CLI output
/// can be diffed field-for-field.
#[derive(Debug, Clone, PartialEq)]
pub struct CountReport {
    /// Pattern specs, in request order.
    pub patterns: Vec<String>,
    /// Per-pattern embedding counts, aligned with `patterns`.
    pub counts: Vec<u64>,
    /// Sum of `counts`.
    pub total: u64,
    /// Human-readable engine description.
    pub engine: String,
    /// Wall-clock milliseconds of the run.
    pub wall_ms: f64,
}

impl CountReport {
    /// The report as a JSON object (the shared CLI/daemon schema).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "patterns",
                Json::Arr(self.patterns.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&n| Json::U64(n)).collect()),
            ),
            ("total", Json::U64(self.total)),
            ("engine", Json::str(&self.engine)),
            ("wall_ms", Json::F64(self.wall_ms)),
        ])
    }

    /// Renders the report as one JSON line.
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

/// An `ok` response wrapping a count report, tagged with op/id/graph.
pub fn ok_count(op: &str, id: Option<&str>, graph: &str, report: &CountReport) -> String {
    let mut members = vec![
        ("status".to_owned(), Json::str("ok")),
        ("op".to_owned(), Json::str(op)),
    ];
    if let Some(id) = id {
        members.push(("id".to_owned(), Json::str(id)));
    }
    members.push(("graph".to_owned(), Json::str(graph)));
    let Json::Obj(body) = report.to_json() else {
        unreachable!("CountReport::to_json always builds an object");
    };
    members.extend(body);
    Json::Obj(members).render()
}

/// A `cancelled` response: `reason` is `"cancelled"` or `"deadline"`.
pub fn cancelled(id: Option<&str>, reason: &str) -> String {
    let mut members = vec![("status".to_owned(), Json::str("cancelled"))];
    if let Some(id) = id {
        members.push(("id".to_owned(), Json::str(id)));
    }
    members.push(("reason".to_owned(), Json::str(reason)));
    Json::Obj(members).render()
}

/// An `error` response with a kind from the module table.
pub fn error(kind: &str, message: &str) -> String {
    Json::obj([
        ("status", Json::str("error")),
        ("kind", Json::str(kind)),
        ("message", Json::str(message)),
    ])
    .render()
}

/// An `overloaded` error response; the degradation ladder attaches a
/// `retry_after_ms` hint for the client's backoff, plain queue-full
/// rejections omit it.
pub fn overloaded(message: &str, retry_after_ms: Option<u64>) -> String {
    let mut members = vec![
        ("status".to_owned(), Json::str("error")),
        ("kind".to_owned(), Json::str(KIND_OVERLOADED)),
        ("message".to_owned(), Json::str(message)),
    ];
    if let Some(ms) = retry_after_ms {
        members.push(("retry_after_ms".to_owned(), Json::U64(ms)));
    }
    Json::Obj(members).render()
}

/// A `mem-budget` error response carrying the observed footprint and the
/// budget it crossed, so clients can size a retry.
pub fn mem_budget_exceeded(id: Option<&str>, used_bytes: u64, budget_bytes: u64) -> String {
    let mut members = vec![
        ("status".to_owned(), Json::str("error")),
        ("kind".to_owned(), Json::str(KIND_MEM_BUDGET)),
        (
            "message".to_owned(),
            Json::str(format!(
                "query memory budget exceeded: {used_bytes} bytes used, budget {budget_bytes}"
            )),
        ),
    ];
    if let Some(id) = id {
        members.push(("id".to_owned(), Json::str(id)));
    }
    members.push(("used_bytes".to_owned(), Json::U64(used_bytes)));
    members.push(("budget_bytes".to_owned(), Json::U64(budget_bytes)));
    Json::Obj(members).render()
}

/// Maps a session-layer failure to its response line.
pub fn session_error(e: &SessionError) -> String {
    match e {
        SessionError::BadRequest(m) => error(KIND_BAD_REQUEST, m),
        SessionError::UnsoundPlan(report) => error(KIND_UNSOUND_PLAN, &report.to_string()),
        SessionError::Unsupported(m) => error(KIND_UNSUPPORTED, m),
    }
}

/// Maps an engine failure to its response line: cancellation becomes a
/// `cancelled` status, a tripped memory budget a `mem-budget` error, and
/// everything else an `engine` error.
pub fn engine_error(id: Option<&str>, e: &EngineError) -> String {
    if let Some(kind) = e.cancel_kind() {
        return cancelled(id, kind.as_str());
    }
    if let Some((used, budget)) = e.mem_budget() {
        return mem_budget_exceeded(id, used, budget);
    }
    match e {
        EngineError::InvalidPlan { report } => error(KIND_UNSOUND_PLAN, &report.to_string()),
        other => error(KIND_ENGINE, &other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_count_requests() {
        let r = Request::parse(
            r#"{"op":"count","id":"q1","graph":"g","patterns":["tc","4cl"],"threads":4,"timeout_ms":250,"edge_induced":true}"#,
        )
        .expect("parses");
        assert_eq!(
            r,
            Request::Count {
                id: Some("q1".into()),
                graph: "g".into(),
                patterns: vec!["tc".into(), "4cl".into()],
                threads: Some(4),
                timeout_ms: Some(250),
                edge_induced: true,
                mutate: None,
            }
        );
    }

    #[test]
    fn parses_the_other_ops() {
        assert_eq!(
            Request::parse(r#"{"op":"stats"}"#).expect("stats"),
            Request::Stats
        );
        assert_eq!(
            Request::parse(r#"{"op":"ping"}"#).expect("ping"),
            Request::Ping
        );
        assert_eq!(
            Request::parse(r#"{"op":"shutdown"}"#).expect("shutdown"),
            Request::Shutdown
        );
        assert_eq!(
            Request::parse(r#"{"op":"cancel","id":"q9"}"#).expect("cancel"),
            Request::Cancel { id: "q9".into() }
        );
        assert_eq!(
            Request::parse(r#"{"op":"motif-census","graph":"g"}"#).expect("census"),
            Request::MotifCensus {
                id: None,
                graph: "g".into(),
                threads: None,
                timeout_ms: None,
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"verify-plan","pattern":"tt","mutate":"drop-init"}"#)
                .expect("verify"),
            Request::VerifyPlan {
                pattern: "tt".into(),
                edge_induced: false,
                mutate: Some("drop-init".into()),
            }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            r#"{"no":"op"}"#,
            r#"{"op":"zap"}"#,
            r#"{"op":"count","graph":"g"}"#,
            r#"{"op":"count","graph":"g","patterns":[]}"#,
            r#"{"op":"count","graph":"g","patterns":[1]}"#,
            r#"{"op":"count","patterns":["tc"]}"#,
            r#"{"op":"count","graph":"g","patterns":["tc"],"threads":"four"}"#,
            r#"{"op":"cancel"}"#,
            r#"{"op":"verify-plan"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn count_report_schema_is_stable() {
        let report = CountReport {
            patterns: vec!["tc".into()],
            counts: vec![42],
            total: 42,
            engine: "service".into(),
            wall_ms: 1.5,
        };
        let line = report.render();
        let v = Json::parse(&line).expect("valid json");
        for key in ["patterns", "counts", "total", "engine", "wall_ms"] {
            assert!(v.get(key).is_some(), "missing {key} in {line}");
        }
        assert_eq!(v.get("total").and_then(Json::as_u64), Some(42));
    }

    #[test]
    fn responses_map_to_exit_codes() {
        let ok = Json::parse(&ok_count(
            "count",
            Some("q"),
            "g",
            &CountReport {
                patterns: vec![],
                counts: vec![],
                total: 0,
                engine: String::new(),
                wall_ms: 0.0,
            },
        ))
        .expect("ok line");
        assert_eq!(exit_code_for_response(&ok), 0);
        let cases = [
            (KIND_BAD_REQUEST, 2),
            (KIND_UNKNOWN_GRAPH, 3),
            (KIND_ENGINE, 5),
            (KIND_UNSUPPORTED, 6),
            (KIND_UNSOUND_PLAN, 7),
            (KIND_OVERLOADED, 8),
            (KIND_MEM_BUDGET, 11),
        ];
        for (kind, code) in cases {
            let v = Json::parse(&error(kind, "m")).expect("error line");
            assert_eq!(exit_code_for_response(&v), code, "{kind}");
        }
        let v = Json::parse(&cancelled(None, "deadline")).expect("cancel line");
        assert_eq!(exit_code_for_response(&v), 9);
        assert_eq!(exit_code_for_response(&Json::Null), 10);
    }

    #[test]
    fn overloaded_responses_carry_the_retry_hint_only_when_shed() {
        let plain = Json::parse(&overloaded("queue full", None)).expect("line");
        assert_eq!(exit_code_for_response(&plain), 8);
        assert!(plain.get("retry_after_ms").is_none());
        let shed = Json::parse(&overloaded("pressure", Some(120))).expect("line");
        assert_eq!(exit_code_for_response(&shed), 8);
        assert_eq!(shed.get("retry_after_ms").and_then(Json::as_u64), Some(120));
    }

    #[test]
    fn mem_budget_responses_expose_usage_and_map_to_exit_11() {
        let v = Json::parse(&mem_budget_exceeded(Some("q7"), 9001, 4096)).expect("line");
        assert_eq!(exit_code_for_response(&v), 11);
        assert_eq!(v.get("used_bytes").and_then(Json::as_u64), Some(9001));
        assert_eq!(v.get("budget_bytes").and_then(Json::as_u64), Some(4096));
        assert_eq!(v.get("id").and_then(Json::as_str), Some("q7"));
        // The engine-error mapping routes MemBudgetExceeded here.
        let e = EngineError::MemBudgetExceeded {
            used_bytes: 10,
            budget_bytes: 5,
        };
        let mapped = Json::parse(&engine_error(None, &e)).expect("line");
        assert_eq!(exit_code_for_response(&mapped), 11);
    }
}
