//! Minimal hand-rolled JSON tree: parser and renderer.
//!
//! The workspace's vendored `serde` is a no-op stub (no registry access in
//! this environment), so the protocol layer carries its own value type.
//! Scope is exactly what newline-delimited protocol messages need: objects,
//! arrays, strings, booleans, null, and numbers — with a dedicated
//! unsigned-64 variant so embedding counts round-trip exactly (an `f64`
//! mantissa cannot represent every `u64`).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without fraction or exponent. Counts travel
    /// here so they round-trip bit-exactly.
    U64(u64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last one wins on
    /// lookup, all are rendered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, accepting exact `U64`s and integral `F64`s.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    // JSON has no NaN/Infinity; null is the standard fallback.
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }
}

/// Escapes a string body for embedding between JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are out of scope for protocol
                            // text; map lone surrogates to the replacement
                            // character rather than failing the message.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        if !text.contains(['.', 'e', 'E', '-']) || (text.starts_with('-') && text.len() > 1) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

/// Convenience constructors for building protocol messages.
impl Json {
    /// An object from key/value pairs.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let text = r#"{"op":"count","graph":"g1","patterns":["tc","4cl"],"threads":4,"timeout_ms":250,"nested":{"deep":[1,2.5,true,null]}}"#;
        let v = Json::parse(text).expect("parses");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("count"));
        assert_eq!(v.get("threads").and_then(Json::as_u64), Some(4));
        let patterns = v.get("patterns").and_then(Json::as_array).expect("arr");
        assert_eq!(patterns.len(), 2);
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).expect("reparses"), v);
    }

    #[test]
    fn u64_counts_round_trip_exactly() {
        let big = u64::MAX - 1;
        let v = Json::obj([("count", Json::U64(big))]);
        let back = Json::parse(&v.render()).expect("parses");
        assert_eq!(back.get("count").and_then(Json::as_u64), Some(big));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\"backslash\\tab\tend";
        let v = Json::Str(s.to_owned());
        let back = Json::parse(&v.render()).expect("parses");
        assert_eq!(back.as_str(), Some(s));
        assert_eq!(
            Json::parse(r#""Aé""#).expect("unicode").as_str(),
            Some("Aé")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} trailing",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn numbers_classify() {
        assert_eq!(Json::parse("42").expect("int"), Json::U64(42));
        assert_eq!(Json::parse("-1").expect("neg"), Json::F64(-1.0));
        assert_eq!(Json::parse("2.5").expect("frac"), Json::F64(2.5));
        assert_eq!(Json::F64(3.0).as_u64(), Some(3));
        assert_eq!(Json::F64(3.5).as_u64(), None);
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }
}
