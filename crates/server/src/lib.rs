//! Mining-as-a-service for the FINGERS reproduction.
//!
//! A layered query daemon over the existing engine:
//!
//! 1. **Storage** ([`storage`]) — named, load-once graphs: each is an
//!    `Arc<CsrGraph>` plus its precomputed hub set, shared immutably by
//!    every query (refcount bumps, never reloads).
//! 2. **Session** ([`session`]) — the trust boundary: textual patterns
//!    are parsed, compiled, and gated by the static plan verifier;
//!    unsound input is a typed rejection, never a worker panic. Verified
//!    plans live in a cache keyed on the *canonical* pattern, so
//!    isomorphic spellings share one compilation.
//! 3. **Scheduler** ([`sched`]) — a bounded worker pool with admission
//!    control (typed `overloaded` rejection when the queue is full),
//!    per-query thread budgets, deadlines, and cooperative cancellation
//!    that stops a query at root-task boundaries without poisoning the
//!    pool — counts stay bit-identical to serial execution because
//!    cancellation is only ever observed *between* root tasks.
//! 4. **Protocol** ([`proto`], [`daemon`], [`client`]) — newline-delimited
//!    JSON over a Unix socket; every failure mode is a distinct response
//!    kind with a stable client exit code.
//!
//! Cross-cutting the layers is the resource governor (DESIGN.md §15): the
//! scheduler owns a global [`sched::Scheduler::gauge`] that query scratch
//! memory and the plan cache charge into, a degradation ladder that trades
//! speed for footprint under pressure, a phoenix-rebuilt worker pool that
//! survives injected panics, and the `ping` health probe reporting all of
//! it.
//!
//! `unsafe` is denied crate-wide with one documented island: [`signals`]
//! declares the two libc symbols needed to latch SIGINT/SIGTERM (the same
//! policy as `fingers-setops`' SIMD island).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod json;
#[cfg(feature = "model-check")]
pub mod model;
pub mod proto;
pub mod sched;
pub mod session;
pub mod signals;
pub mod storage;

pub use client::{backoff_delay_ms, request_line, Client, RetryPolicy};
pub use daemon::{Daemon, DaemonConfig, ShutdownHandle};
pub use json::Json;
pub use proto::{CountReport, Request};
pub use sched::{
    Degradation, Job, JobError, JobResult, SchedStats, Scheduler, SchedulerConfig, SubmitError,
};
pub use session::{PlanCache, SessionError};
pub use storage::{GraphRegistry, GraphSpec, StoredGraph};
