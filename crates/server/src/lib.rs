//! Mining-as-a-service for the FINGERS reproduction.
//!
//! A layered query daemon over the existing engine:
//!
//! 1. **Storage** ([`storage`]) — named, load-once graphs: each is an
//!    `Arc<CsrGraph>` plus its precomputed hub set, shared immutably by
//!    every query (refcount bumps, never reloads).
//! 2. **Session** ([`session`]) — the trust boundary: textual patterns
//!    are parsed, compiled, and gated by the static plan verifier;
//!    unsound input is a typed rejection, never a worker panic. Verified
//!    plans live in a cache keyed on the *canonical* pattern, so
//!    isomorphic spellings share one compilation.
//! 3. **Scheduler** ([`sched`]) — a bounded worker pool with admission
//!    control (typed `overloaded` rejection when the queue is full),
//!    per-query thread budgets, deadlines, and cooperative cancellation
//!    that stops a query at root-task boundaries without poisoning the
//!    pool — counts stay bit-identical to serial execution because
//!    cancellation is only ever observed *between* root tasks.
//! 4. **Protocol** ([`proto`], [`daemon`], [`client`]) — newline-delimited
//!    JSON over a Unix socket; every failure mode is a distinct response
//!    kind with a stable client exit code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod json;
pub mod proto;
pub mod sched;
pub mod session;
pub mod storage;

pub use client::{request_line, Client};
pub use daemon::{Daemon, DaemonConfig};
pub use json::Json;
pub use proto::{CountReport, Request};
pub use sched::{Job, JobResult, SchedStats, Scheduler, SchedulerConfig, SubmitError};
pub use session::{PlanCache, SessionError};
pub use storage::{GraphRegistry, GraphSpec, StoredGraph};
