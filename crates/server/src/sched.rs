//! Scheduler layer: a bounded worker pool with admission control,
//! per-query thread budgets, deadlines, cooperative cancellation, and a
//! memory-pressure degradation ladder.
//!
//! Queries enter through a bounded queue; when it is full the submit is
//! rejected *immediately* with [`SubmitError::Overloaded`] — the typed
//! back-pressure signal the protocol layer turns into an `overloaded`
//! response instead of letting latency collapse for everyone. Each worker
//! drains the queue and executes one query at a time through the engine's
//! governed entry point, so a fired [`CancelToken`] (client cancel,
//! deadline, shutdown) stops the query at the next root-task boundary and
//! the pool thread survives to serve the next query — cancellation never
//! poisons the pool.
//!
//! # Memory governance (DESIGN.md §15)
//!
//! The scheduler owns the process's global [`MemGauge`]; every query's
//! metered footprint (scratch arenas, bitmap caches, listing sinks, plus
//! the session plan cache) rolls up into it. When
//! [`SchedulerConfig::mem_budget`] is set, gauge pressure drives a
//! degradation ladder instead of an OOM kill:
//!
//! 1. ≥ 70 % — **shrink** new queries' per-worker bitmap caches;
//! 2. ≥ 85 % — additionally **disable** the bitmap tier and **clamp** new
//!    queries to one thread (counts are identical under every engine
//!    config, so degraded queries stay bit-exact);
//! 3. ≥ 95 % — **shed**: reject new submissions and drop queued work
//!    (earliest deadline first) with a typed `overloaded` carrying
//!    `retry_after_ms`, so well-behaved clients back off instead of
//!    hammering a drowning daemon.
//!
//! # Self-healing
//!
//! Engine panics are already isolated per task and surface as typed
//! errors. A pool thread itself dying (the chaos harness injects exactly
//! this) is healed by a phoenix guard: the unwinding thread's `Drop`
//! respawns a replacement worker and bumps `pool_rebuilds`, so the pool
//! never shrinks below its configured size. The in-flight query's reply
//! channel drops, which the daemon reports as a typed engine failure —
//! subsequent queries run on the rebuilt pool, and the socket never
//! closes.
//!
//! The per-task dispatch below is on the service's hot path: one queue
//! hand-off and zero allocations per *task*; the waived allocations are
//! strictly per *query* (bounded by pattern count), never per embedding.
// lint: hot-path(alloc)

use fingers_conc::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use fingers_conc::sync::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

// lint: lock-order(active < queue < workers)

use fingers_mining::{
    try_count_plan_parallel_governed, CancelToken, EngineConfig, EngineError, MemGauge,
};
use fingers_pattern::ExecutionPlan;

use crate::storage::StoredGraph;

/// Gauge percentage of `mem_budget` at which new queries' bitmap caches
/// are shrunk to [`DEGRADED_CACHE_SLOTS`].
pub const PRESSURE_SHRINK_PCT: u64 = 70;
/// Gauge percentage at which the bitmap tier is disabled and new queries
/// are clamped to one thread.
pub const PRESSURE_CLAMP_PCT: u64 = 85;
/// Gauge percentage at which queued work is shed and new submissions are
/// rejected with a `retry_after_ms` hint.
pub const PRESSURE_SHED_PCT: u64 = 95;
/// Per-worker bitmap-cache slots under the shrink rung of the ladder.
pub const DEGRADED_CACHE_SLOTS: usize = 8;

/// Sizing and policy of the scheduler.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker pool size (concurrent queries).
    pub workers: usize,
    /// Queued (admitted, not yet running) query limit; a full queue
    /// rejects new submissions with [`SubmitError::Overloaded`].
    pub queue_depth: usize,
    /// Hard cap on any single query's thread budget.
    pub max_threads_per_query: usize,
    /// Deadline applied to queries that do not carry their own.
    pub default_timeout: Option<Duration>,
    /// Global metered-memory budget in bytes driving the degradation
    /// ladder (`None` = no ladder; the gauge still meters).
    pub mem_budget: Option<u64>,
    /// Back-off hint attached to pressure-shed rejections, in
    /// milliseconds.
    pub retry_after_ms: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self {
            workers: cores.clamp(1, 4),
            queue_depth: 16,
            max_threads_per_query: cores,
            default_timeout: None,
            mem_budget: None,
            retry_after_ms: 100,
        }
    }
}

/// Rungs of the memory-pressure degradation ladder, derived on demand
/// from the global gauge against [`SchedulerConfig::mem_budget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Degradation {
    /// Below every threshold: queries run with their requested budget.
    Normal,
    /// ≥ 70 % of budget: new queries get [`DEGRADED_CACHE_SLOTS`]
    /// bitmap-cache slots per worker.
    ShrinkCaches,
    /// ≥ 85 %: bitmap tier off, new queries clamped to one thread.
    ClampThreads,
    /// ≥ 95 %: queued work is shed and new submissions rejected with a
    /// `retry_after_ms` hint.
    Shed,
}

impl Degradation {
    /// Stable wire word for ping/stats responses.
    pub fn as_str(self) -> &'static str {
        match self {
            Degradation::Normal => "normal",
            Degradation::ShrinkCaches => "shrink-caches",
            Degradation::ClampThreads => "clamp-threads",
            Degradation::Shed => "shed",
        }
    }

    /// Numeric rung (0–3) for machine consumers.
    pub fn level(self) -> u8 {
        match self {
            Degradation::Normal => 0,
            Degradation::ShrinkCaches => 1,
            Degradation::ClampThreads => 2,
            Degradation::Shed => 3,
        }
    }
}

/// The ladder rung for `bytes` of metered memory under `budget`.
pub(crate) fn degradation_for(bytes: u64, budget: Option<u64>) -> Degradation {
    let Some(budget) = budget else {
        return Degradation::Normal;
    };
    if budget == 0 {
        return Degradation::Shed;
    }
    let pct = (u128::from(bytes) * 100 / u128::from(budget)) as u64;
    if pct >= PRESSURE_SHED_PCT {
        Degradation::Shed
    } else if pct >= PRESSURE_CLAMP_PCT {
        Degradation::ClampThreads
    } else if pct >= PRESSURE_SHRINK_PCT {
        Degradation::ShrinkCaches
    } else {
        Degradation::Normal
    }
}

/// One admitted query: everything a worker needs to run it.
#[derive(Debug)]
pub struct Job {
    /// The resident graph (shared CSR + precomputed hubs).
    pub graph: Arc<StoredGraph>,
    /// Verified plans to count, in request order.
    pub plans: Vec<Arc<ExecutionPlan>>,
    /// Requested thread budget (clamped to the scheduler's cap).
    pub threads: usize,
    /// The query's cancellation token (deadline already armed if any).
    pub cancel: CancelToken,
    /// Engine configuration for this query.
    pub config: EngineConfig,
}

/// Why an admitted job did not produce counts.
#[derive(Debug)]
pub enum JobError {
    /// The engine failed: cancellation, deadline, isolated panic, or a
    /// tripped per-query memory budget.
    Engine(EngineError),
    /// The job was shed from the queue under memory pressure; the client
    /// should retry after the hinted delay.
    Shed {
        /// Back-off hint, in milliseconds.
        retry_after_ms: u64,
    },
}

impl JobError {
    /// The engine's cancellation kind, when this failure is one.
    pub fn cancel_kind(&self) -> Option<fingers_mining::CancelKind> {
        match self {
            JobError::Engine(e) => e.cancel_kind(),
            JobError::Shed { .. } => None,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Engine(e) => write!(f, "{e}"),
            JobError::Shed { retry_after_ms } => write!(
                f,
                "query shed under memory pressure; retry after {retry_after_ms} ms"
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// What the worker sends back: per-plan counts in request order, or the
/// first failure (cancellation, deadline, panic isolation, memory budget,
/// pressure shed).
pub type JobResult = Result<Vec<u64>, JobError>;

/// Why a submission was not admitted.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at its depth limit (no hint) or the scheduler is
    /// shedding under memory pressure (`retry_after_ms` set); retry later.
    Overloaded {
        /// The configured queue depth that was exceeded.
        queue_depth: usize,
        /// Back-off hint when the rejection came from the degradation
        /// ladder rather than a full queue.
        retry_after_ms: Option<u64>,
    },
    /// The scheduler is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded {
                queue_depth,
                retry_after_ms: None,
            } => {
                write!(f, "scheduler overloaded ({queue_depth} queries queued)")
            }
            SubmitError::Overloaded {
                retry_after_ms: Some(ms),
                ..
            } => {
                write!(
                    f,
                    "scheduler shedding under memory pressure; retry after {ms} ms"
                )
            }
            SubmitError::ShuttingDown => write!(f, "scheduler is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Monotonic counters for the stats endpoint.
#[derive(Debug, Default)]
pub struct SchedStats {
    /// Queries admitted into the queue.
    pub accepted: AtomicU64,
    /// Queries rejected by admission control.
    pub rejected: AtomicU64,
    /// Queries that completed with counts.
    pub completed: AtomicU64,
    /// Queries that ended cancelled or past deadline.
    pub cancelled: AtomicU64,
    /// Queries that failed (worker panic isolation, memory budget).
    pub failed: AtomicU64,
    /// Queued queries shed by the degradation ladder.
    pub shed: AtomicU64,
    /// Queries executed under a degraded ladder rung (shrunk caches or
    /// clamped threads).
    pub degraded: AtomicU64,
    /// Pool worker threads respawned after a panic killed one.
    pub pool_rebuilds: AtomicU64,
}

type QueueItem = (Job, Sender<JobResult>);

/// The admission queue plus everything a worker thread touches; shared
/// between the scheduler façade and every (re)spawned pool thread.
#[derive(Debug)]
struct Core {
    queue: Mutex<QueueState>,
    ready: Condvar,
    stats: SchedStats,
    gauge: MemGauge,
    config: SchedulerConfig,
    stopping: AtomicBool,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

#[derive(Debug)]
struct QueueState {
    items: VecDeque<QueueItem>,
    closed: bool,
}

impl Core {
    fn degradation(&self) -> Degradation {
        degradation_for(self.gauge.bytes(), self.config.mem_budget)
    }

    /// Next job for a worker: sheds queued work (earliest deadline first)
    /// while the ladder is at its shed rung, then pops or blocks for new
    /// work. `None` means the queue is closed and drained — the worker
    /// exits.
    fn dequeue(&self) -> Option<QueueItem> {
        // lock: queue
        let mut state = self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            while self.degradation() == Degradation::Shed && !state.closed {
                let Some(idx) = earliest_deadline_index(&state.items) else {
                    break;
                };
                let Some((_job, reply)) = state.items.remove(idx) else {
                    break;
                };
                // ord: relaxed(monotonic stats counter)
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Err(JobError::Shed {
                    retry_after_ms: self.config.retry_after_ms,
                }));
            }
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Executes every plan of one job with the shared graph, shared hub
    /// set, clamped thread budget, the job's token, and the global gauge.
    /// All-or-nothing: the first failing plan discards the query (a
    /// partial per-pattern vector would be indistinguishable from a
    /// complete one).
    ///
    /// The degradation ladder applies here, to *new* executions only:
    /// shrunk or disabled bitmap caches and clamped thread budgets are
    /// pure engine-config changes, so a degraded query's counts stay
    /// bit-identical to an undegraded run — degradation trades speed for
    /// footprint, never correctness.
    ///
    /// The clamped budget composes with the engine's work-stealing
    /// scheduler (`job.config.work_stealing`, daemon flag `--no-steal`):
    /// the budget fixes how many workers a query spawns, stealing only
    /// redistributes root tasks *among* them, so the cap — and the count —
    /// holds under every steal schedule.
    fn run_job(&self, job: &Job) -> Result<Vec<u64>, EngineError> {
        let level = self.degradation();
        let mut threads = job
            .threads
            .clamp(1, self.config.max_threads_per_query.max(1));
        // lint: allow-alloc(per-query config clone, not per task)
        let mut config = job.config.clone();
        // lint: allow-alloc(Arc clone of the shared hub set, no data copy)
        let mut hubs = job.graph.hubs.clone();
        if level >= Degradation::ShrinkCaches {
            // ord: relaxed(monotonic stats counter)
            self.stats.degraded.fetch_add(1, Ordering::Relaxed);
            config.bitmap_cache_slots = config.bitmap_cache_slots.min(DEGRADED_CACHE_SLOTS);
        }
        if level >= Degradation::ClampThreads {
            threads = 1;
            config.bitmap_hubs = 0;
            hubs = None;
        }
        // lint: allow-alloc(per-query result vector, bounded by pattern count)
        let mut counts = Vec::with_capacity(job.plans.len());
        for plan in &job.plans {
            let n = try_count_plan_parallel_governed(
                &job.graph.graph,
                plan,
                threads,
                &config,
                // lint: allow-alloc(Arc refcount bump, shares the resident hub set)
                hubs.clone(),
                &job.cancel,
                Some(&self.gauge),
            )?;
            counts.push(n);
        }
        Ok(counts)
    }
}

/// Index of the queued job with the earliest deadline (the one least
/// likely to finish in time under pressure); jobs without deadlines are
/// shed last. `None` when the queue is empty.
fn earliest_deadline_index(items: &VecDeque<QueueItem>) -> Option<usize> {
    if items.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_deadline = items[0].0.cancel.deadline();
    for (i, (job, _)) in items.iter().enumerate().skip(1) {
        let d = job.cancel.deadline();
        let earlier = match (d, best_deadline) {
            (Some(a), Some(b)) => a < b,
            (Some(_), None) => true,
            _ => false,
        };
        if earlier {
            best = i;
            best_deadline = d;
        }
    }
    Some(best)
}

/// Respawns a replacement pool worker when the current one dies by panic
/// (the phoenix pattern): the unwinding thread's `Drop` runs this guard,
/// which — unless the scheduler is shutting down — spawns a fresh worker
/// on the same shared core and bumps `pool_rebuilds`. The pool therefore
/// never shrinks below its configured size, with no supervisor thread or
/// polling loop.
struct Phoenix {
    core: Arc<Core>,
}

impl Drop for Phoenix {
    fn drop(&mut self) {
        // A phoenix must never respawn into a pool that shutdown has
        // begun draining, hence the same strength as shutdown's store.
        // ord: seqcst(cold-path gate pairing with shutdown's seqcst stopping store)
        if std::thread::panicking() && !self.core.stopping.load(Ordering::SeqCst) {
            self.core
                .stats
                .pool_rebuilds
                // ord: relaxed(monotonic stats counter)
                .fetch_add(1, Ordering::Relaxed);
            spawn_worker(&self.core);
        }
    }
}

// lock: acquires(workers)
fn spawn_worker(core: &Arc<Core>) {
    // lint: allow-alloc(pool construction/rebuild, not dispatch)
    let worker_core = Arc::clone(core);
    let handle = std::thread::spawn(move || {
        let _phoenix = Phoenix {
            core: Arc::clone(&worker_core),
        };
        worker_loop(&worker_core);
    });
    // lock: workers
    core.workers
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        // lint: allow-alloc(pool construction/rebuild, not dispatch)
        .push(handle);
}

/// One pool thread: dequeue, execute through the governed engine entry
/// point, reply. A query failure (cancelled, deadline, isolated panic,
/// budget) is a *result*, not a pool event — the thread loops on. The
/// chaos probe sits *outside* any catch: an injected scheduler-worker
/// panic genuinely kills this thread, exercising the phoenix rebuild.
fn worker_loop(core: &Arc<Core>) {
    while let Some((job, reply)) = core.dequeue() {
        fingers_mining::chaos::maybe_panic_sched_worker();
        let result = core.run_job(&job).map_err(JobError::Engine);
        match &result {
            // ord: relaxed(monotonic stats counters, all three arms)
            Ok(_) => core.stats.completed.fetch_add(1, Ordering::Relaxed),
            Err(e) if e.cancel_kind().is_some() => {
                core.stats.cancelled.fetch_add(1, Ordering::Relaxed)
            }
            // ord: relaxed(monotonic stats counter)
            Err(_) => core.stats.failed.fetch_add(1, Ordering::Relaxed),
        };
        // A vanished requester (client hung up) is fine; drop the result.
        let _ = reply.send(result);
    }
}

/// The scheduler: sheddable bounded queue, self-healing worker pool,
/// active-query registry, global memory gauge.
#[derive(Debug)]
pub struct Scheduler {
    core: Arc<Core>,
    active: Mutex<HashMap<String, CancelToken>>,
}

impl Scheduler {
    /// Starts `config.workers` pool threads.
    pub fn new(config: SchedulerConfig) -> Self {
        let workers = config.workers.max(1);
        let core = Arc::new(Core {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            stats: SchedStats::default(),
            gauge: MemGauge::new(),
            config,
            stopping: AtomicBool::new(false),
            // lint: allow-alloc(pool construction, once per daemon)
            workers: Mutex::new(Vec::new()),
        });
        for _ in 0..workers {
            spawn_worker(&core);
        }
        Self {
            core,
            active: Mutex::new(HashMap::new()),
        }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.core.config
    }

    /// Shared statistics counters.
    pub fn stats(&self) -> &SchedStats {
        &self.core.stats
    }

    /// The global memory gauge every query's footprint rolls up into.
    /// Clone it into other meterable structures (the session plan cache)
    /// so their bytes count against the same budget.
    pub fn gauge(&self) -> &MemGauge {
        &self.core.gauge
    }

    /// The ladder rung the scheduler is currently operating at.
    pub fn degradation(&self) -> Degradation {
        self.core.degradation()
    }

    /// Admission control: queues `job` if there is room, rejecting
    /// immediately otherwise. On success returns the receiver the job's
    /// result will arrive on.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is full (no hint) or
    /// the ladder is shedding (`retry_after_ms` set),
    /// [`SubmitError::ShuttingDown`] after [`Scheduler::shutdown`].
    pub fn submit(&self, job: Job) -> Result<Receiver<JobResult>, SubmitError> {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        // lock: queue
        let mut state = self
            .core
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.closed {
            return Err(SubmitError::ShuttingDown);
        }
        if self.core.degradation() == Degradation::Shed {
            // ord: relaxed(monotonic stats counter)
            self.core.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Overloaded {
                queue_depth: self.core.config.queue_depth,
                retry_after_ms: Some(self.core.config.retry_after_ms),
            });
        }
        if state.items.len() >= self.core.config.queue_depth.max(1) {
            // ord: relaxed(monotonic stats counter)
            self.core.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Overloaded {
                queue_depth: self.core.config.queue_depth,
                retry_after_ms: None,
            });
        }
        // lint: allow-alloc(queue entry per admitted query, not per task)
        state.items.push_back((job, reply_tx));
        // ord: relaxed(monotonic stats counter)
        self.core.stats.accepted.fetch_add(1, Ordering::Relaxed);
        self.core.ready.notify_one();
        Ok(reply_rx)
    }

    /// Registers a client-visible query id so a later
    /// [`Scheduler::cancel`] (from any connection) can find its token.
    pub fn register(&self, id: &str, token: CancelToken) {
        // lock: active
        self.active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            // lint: allow-alloc(registry entry per query id, not per task)
            .insert(id.to_owned(), token);
    }

    /// Removes a finished query from the active registry.
    pub fn unregister(&self, id: &str) {
        // lock: active
        self.active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(id);
    }

    /// Cancels the active query registered under `id`. Returns whether an
    /// active query of that id existed. Works on queued jobs too: their
    /// token is registered at admission, and the engine checks it before
    /// claiming the first task.
    pub fn cancel(&self, id: &str) -> bool {
        // lock: active
        let active = self
            .active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match active.get(id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Number of registered (queued or running) queries.
    pub fn active_count(&self) -> usize {
        // lock: active
        self.active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Stops accepting work, cancels every active query, and joins the
    /// pool. Idempotent. Queued-but-unstarted jobs still flow through
    /// their worker, which observes the cancelled token before claiming a
    /// task and reports a cancelled result — no silent drops.
    pub fn shutdown(&self) {
        // ord: seqcst(cold-path shutdown gate; pairs with the phoenix guard's seqcst load)
        self.core.stopping.store(true, Ordering::SeqCst);
        {
            // lock: active
            let active = self
                .active
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for token in active.values() {
                token.cancel();
            }
        }
        {
            // lock: queue
            let mut state = self
                .core
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.closed = true;
        }
        self.core.ready.notify_all();
        // A dying worker may respawn a sibling until it observes
        // `stopping`, so drain the handle list until it stays empty.
        loop {
            // lock: workers
            let workers = std::mem::take(
                &mut *self
                    .core
                    .workers
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
            if workers.is_empty() {
                break;
            }
            for handle in workers {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::GraphRegistry;
    use fingers_pattern::{Induced, Pattern};

    fn test_graph(spec: &str) -> Arc<StoredGraph> {
        let mut reg = GraphRegistry::new();
        reg.load("g", spec, &EngineConfig::default()).expect("load");
        reg.get("g").expect("stored")
    }

    fn plan_of(p: &Pattern) -> Arc<ExecutionPlan> {
        Arc::new(ExecutionPlan::compile(p, Induced::Vertex))
    }

    fn job(graph: &Arc<StoredGraph>, plans: Vec<Arc<ExecutionPlan>>, token: CancelToken) -> Job {
        Job {
            graph: Arc::clone(graph),
            plans,
            threads: 2,
            cancel: token,
            config: EngineConfig::default(),
        }
    }

    #[test]
    fn runs_jobs_and_counts_match_direct_execution() {
        let graph = test_graph("gen:er:60:240:11");
        let sched = Scheduler::new(SchedulerConfig::default());
        let plan = plan_of(&Pattern::triangle());
        let expected = fingers_mining::count_plan(&graph.graph, &plan);
        let rx = sched
            .submit(job(&graph, vec![Arc::clone(&plan)], CancelToken::new()))
            .expect("admitted");
        let counts = rx.recv().expect("reply").expect("success");
        assert_eq!(counts, vec![expected]);
        assert_eq!(sched.stats().completed.load(Ordering::Relaxed), 1);
        assert_eq!(sched.gauge().bytes(), 0, "gauge returns to baseline");
        assert!(sched.gauge().peak_bytes() > 0, "the query was metered");
        sched.shutdown();
    }

    #[test]
    fn thread_budgets_compose_with_stealing_and_simd_toggles() {
        // The same query under every scheduler/kernel toggle and several
        // thread budgets (including ones above the per-query cap) must
        // produce the serial count — budgets clamp worker counts, stealing
        // only moves tasks among those workers.
        let graph = test_graph("gen:pl:300:3000:13");
        let sched = Scheduler::new(SchedulerConfig {
            workers: 2,
            queue_depth: 8,
            max_threads_per_query: 4,
            ..SchedulerConfig::default()
        });
        let plan = plan_of(&Pattern::triangle());
        let expected = fingers_mining::count_plan(&graph.graph, &plan);
        for config in [
            EngineConfig::default(),
            EngineConfig::without_stealing(),
            EngineConfig::without_simd(),
        ] {
            for threads in [1, 4, 64] {
                let rx = sched
                    .submit(Job {
                        graph: Arc::clone(&graph),
                        plans: vec![Arc::clone(&plan)],
                        threads,
                        cancel: CancelToken::new(),
                        config: config.clone(),
                    })
                    .expect("admitted");
                let counts = rx.recv().expect("reply").expect("success");
                assert_eq!(counts, vec![expected], "threads={threads} {config:?}");
            }
        }
        sched.shutdown();
    }

    #[test]
    fn admission_control_rejects_when_queue_is_full() {
        let graph = test_graph("gen:pl:2000:24000:7");
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_depth: 1,
            max_threads_per_query: 1,
            ..SchedulerConfig::default()
        });
        let slow = plan_of(&Pattern::clique(5));
        // First job occupies the worker, second fills the queue; the
        // worker may pop slot one straight off, so push until the first
        // rejection — it must arrive by job 4.
        let mut receivers = Vec::new();
        let mut rejected = None;
        for _ in 0..4 {
            match sched.submit(job(&graph, vec![Arc::clone(&slow)], CancelToken::new())) {
                Ok(rx) => receivers.push(rx),
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        let rejected = rejected.expect("queue depth 1 must reject by the fourth submit");
        assert_eq!(
            rejected,
            SubmitError::Overloaded {
                queue_depth: 1,
                retry_after_ms: None,
            }
        );
        assert!(sched.stats().rejected.load(Ordering::Relaxed) >= 1);
        // The admitted jobs still complete; the pool is healthy.
        for rx in receivers {
            rx.recv().expect("reply").expect("success");
        }
        sched.shutdown();
    }

    #[test]
    fn cancelling_a_queued_job_reports_cancelled_without_poisoning_the_pool() {
        let graph = test_graph("gen:pl:2000:24000:7");
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_depth: 4,
            max_threads_per_query: 1,
            ..SchedulerConfig::default()
        });
        let slow = plan_of(&Pattern::clique(5));
        let quick = plan_of(&Pattern::triangle());
        // Job A occupies the single worker.
        let a_rx = sched
            .submit(job(&graph, vec![Arc::clone(&slow)], CancelToken::new()))
            .expect("A admitted");
        // Job B queues behind it; cancel it while queued.
        let b_token = CancelToken::new();
        sched.register("b", b_token.clone());
        let b_rx = sched
            .submit(job(&graph, vec![Arc::clone(&slow)], b_token))
            .expect("B admitted");
        assert!(sched.cancel("b"), "registered id is cancellable");
        assert!(!sched.cancel("zzz"), "unknown id is not");
        a_rx.recv().expect("A reply").expect("A completes");
        let b_err = b_rx.recv().expect("B reply").expect_err("B was cancelled");
        assert!(b_err.cancel_kind().is_some(), "{b_err}");
        sched.unregister("b");
        assert_eq!(sched.active_count(), 0);
        // The same worker thread serves a fresh query afterwards.
        let c_rx = sched
            .submit(job(&graph, vec![quick], CancelToken::new()))
            .expect("C admitted");
        c_rx.recv().expect("C reply").expect("pool not poisoned");
        assert_eq!(sched.stats().cancelled.load(Ordering::Relaxed), 1);
        sched.shutdown();
    }

    #[test]
    fn deadline_jobs_terminate_with_deadline_kind() {
        let graph = test_graph("gen:pl:2000:24000:7");
        let sched = Scheduler::new(SchedulerConfig::default());
        let slow = plan_of(&Pattern::clique(5));
        let token = CancelToken::with_deadline(Duration::from_millis(1));
        let rx = sched
            .submit(job(&graph, vec![slow], token))
            .expect("admitted");
        let err = rx.recv().expect("reply").expect_err("deadline fires");
        assert_eq!(
            err.cancel_kind(),
            Some(fingers_mining::CancelKind::Deadline),
            "{err}"
        );
        sched.shutdown();
    }

    #[test]
    fn shutdown_cancels_active_and_rejects_new_work() {
        let graph = test_graph("gen:er:50:200:3");
        let sched = Scheduler::new(SchedulerConfig::default());
        sched.shutdown();
        let err = sched
            .submit(job(
                &graph,
                vec![plan_of(&Pattern::triangle())],
                CancelToken::new(),
            ))
            .expect_err("rejected after shutdown");
        assert_eq!(err, SubmitError::ShuttingDown);
        sched.shutdown(); // idempotent
    }

    #[test]
    fn ladder_rungs_follow_gauge_pressure() {
        assert_eq!(degradation_for(0, None), Degradation::Normal);
        assert_eq!(degradation_for(u64::MAX, None), Degradation::Normal);
        let budget = Some(1000);
        assert_eq!(degradation_for(699, budget), Degradation::Normal);
        assert_eq!(degradation_for(700, budget), Degradation::ShrinkCaches);
        assert_eq!(degradation_for(849, budget), Degradation::ShrinkCaches);
        assert_eq!(degradation_for(850, budget), Degradation::ClampThreads);
        assert_eq!(degradation_for(949, budget), Degradation::ClampThreads);
        assert_eq!(degradation_for(950, budget), Degradation::Shed);
        assert_eq!(degradation_for(5000, budget), Degradation::Shed);
        assert_eq!(degradation_for(0, Some(0)), Degradation::Shed);
        assert!(Degradation::Normal < Degradation::Shed);
        assert_eq!(Degradation::Shed.level(), 3);
        assert_eq!(Degradation::ClampThreads.as_str(), "clamp-threads");
    }

    #[test]
    fn shed_rung_rejects_new_work_with_a_retry_hint_and_recovers() {
        let graph = test_graph("gen:er:60:240:11");
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_depth: 8,
            max_threads_per_query: 1,
            mem_budget: Some(1000),
            retry_after_ms: 75,
            ..SchedulerConfig::default()
        });
        // Push the gauge past the shed threshold by hand (standing in for
        // a fleet of fat queries).
        sched.gauge().charge(960);
        assert_eq!(sched.degradation(), Degradation::Shed);
        let err = sched
            .submit(job(
                &graph,
                vec![plan_of(&Pattern::triangle())],
                CancelToken::new(),
            ))
            .expect_err("shed rung rejects");
        assert_eq!(
            err,
            SubmitError::Overloaded {
                queue_depth: 8,
                retry_after_ms: Some(75),
            }
        );
        // Pressure relieved: the same query is admitted and completes.
        sched.gauge().release(960);
        assert_eq!(sched.degradation(), Degradation::Normal);
        let expected = fingers_mining::count_plan(
            &graph.graph,
            &ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex),
        );
        let rx = sched
            .submit(job(
                &graph,
                vec![plan_of(&Pattern::triangle())],
                CancelToken::new(),
            ))
            .expect("admitted after recovery");
        assert_eq!(rx.recv().expect("reply").expect("success"), vec![expected]);
        sched.shutdown();
    }

    #[test]
    fn shed_rung_drops_queued_work_earliest_deadline_first() {
        let graph = test_graph("gen:pl:2000:24000:7");
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_depth: 8,
            max_threads_per_query: 1,
            mem_budget: Some(1000),
            retry_after_ms: 50,
            ..SchedulerConfig::default()
        });
        let slow = plan_of(&Pattern::clique(5));
        // The plug occupies the single worker; two victims queue behind it
        // (far deadline and near deadline).
        let plug_token = CancelToken::new();
        let plug_rx = sched
            .submit(job(&graph, vec![Arc::clone(&slow)], plug_token.clone()))
            .expect("plug admitted");
        let far = sched
            .submit(job(
                &graph,
                vec![Arc::clone(&slow)],
                CancelToken::with_deadline(Duration::from_secs(3600)),
            ))
            .expect("far victim admitted");
        let near = sched
            .submit(job(
                &graph,
                vec![Arc::clone(&slow)],
                CancelToken::with_deadline(Duration::from_secs(600)),
            ))
            .expect("near victim admitted");
        // Memory pressure arrives while they wait; finish the plug so the
        // worker returns to the queue and sheds.
        sched.gauge().charge(999);
        plug_token.cancel();
        let plug_err = plug_rx.recv().expect("plug reply").expect_err("cancelled");
        assert!(plug_err.cancel_kind().is_some());
        let near_err = near.recv().expect("near reply").expect_err("shed");
        assert!(
            matches!(near_err, JobError::Shed { retry_after_ms: 50 }),
            "{near_err}"
        );
        let far_err = far.recv().expect("far reply").expect_err("shed");
        assert!(matches!(far_err, JobError::Shed { .. }), "{far_err}");
        assert_eq!(sched.stats().shed.load(Ordering::Relaxed), 2);
        // Recovery: pressure off, fresh work completes.
        sched.gauge().release(999);
        let rx = sched
            .submit(job(
                &graph,
                vec![plan_of(&Pattern::triangle())],
                CancelToken::new(),
            ))
            .expect("admitted after recovery");
        rx.recv().expect("reply").expect("success");
        sched.shutdown();
    }

    #[test]
    fn degraded_rungs_still_produce_exact_counts() {
        let graph = test_graph("gen:pl:300:3000:13");
        let plan = plan_of(&Pattern::triangle());
        let expected = fingers_mining::count_plan(&graph.graph, &plan);
        // Hold the gauge at the clamp rung: new queries run single-threaded
        // with the bitmap tier off, and must still count exactly.
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_depth: 4,
            max_threads_per_query: 4,
            mem_budget: Some(1000),
            ..SchedulerConfig::default()
        });
        sched.gauge().charge(900);
        assert_eq!(sched.degradation(), Degradation::ClampThreads);
        let rx = sched
            .submit(job(&graph, vec![Arc::clone(&plan)], CancelToken::new()))
            .expect("admitted below shed");
        assert_eq!(rx.recv().expect("reply").expect("success"), vec![expected]);
        assert!(sched.stats().degraded.load(Ordering::Relaxed) >= 1);
        sched.gauge().release(900);
        sched.shutdown();
    }

    #[test]
    fn earliest_deadline_selection_prefers_deadlined_jobs() {
        let graph = test_graph("gen:er:20:40:1");
        let plan = plan_of(&Pattern::triangle());
        let mk = |token: CancelToken| {
            let (tx, _rx) = std::sync::mpsc::channel();
            (job(&graph, vec![Arc::clone(&plan)], token), tx)
        };
        let mut items = VecDeque::new();
        assert_eq!(earliest_deadline_index(&items), None);
        items.push_back(mk(CancelToken::new()));
        assert_eq!(earliest_deadline_index(&items), Some(0));
        items.push_back(mk(CancelToken::with_deadline(Duration::from_secs(100))));
        items.push_back(mk(CancelToken::with_deadline(Duration::from_secs(10))));
        assert_eq!(earliest_deadline_index(&items), Some(2));
    }
}
