//! Scheduler layer: a bounded worker pool with admission control,
//! per-query thread budgets, deadlines, and cooperative cancellation.
//!
//! Queries enter through a bounded queue; when it is full the submit is
//! rejected *immediately* with [`SubmitError::Overloaded`] — the typed
//! back-pressure signal the protocol layer turns into an `overloaded`
//! response instead of letting latency collapse for everyone. Each worker
//! drains the queue and executes one query at a time through the engine's
//! cancellable entry point, so a fired [`CancelToken`] (client cancel,
//! deadline, shutdown) stops the query at the next root-task boundary and
//! the pool thread survives to serve the next query — cancellation never
//! poisons the pool.
//!
//! The per-task dispatch below is on the service's hot path: one queue
//! hand-off and zero allocations per *task*; the waived allocations are
//! strictly per *query* (bounded by pattern count), never per embedding.
// lint: hot-path(alloc)

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fingers_mining::{try_count_plan_parallel_shared, CancelToken, EngineConfig, EngineError};
use fingers_pattern::ExecutionPlan;

use crate::storage::StoredGraph;

/// Sizing and policy of the scheduler.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker pool size (concurrent queries).
    pub workers: usize,
    /// Queued (admitted, not yet running) query limit; a full queue
    /// rejects new submissions with [`SubmitError::Overloaded`].
    pub queue_depth: usize,
    /// Hard cap on any single query's thread budget.
    pub max_threads_per_query: usize,
    /// Deadline applied to queries that do not carry their own.
    pub default_timeout: Option<Duration>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self {
            workers: cores.clamp(1, 4),
            queue_depth: 16,
            max_threads_per_query: cores,
            default_timeout: None,
        }
    }
}

/// One admitted query: everything a worker needs to run it.
#[derive(Debug)]
pub struct Job {
    /// The resident graph (shared CSR + precomputed hubs).
    pub graph: Arc<StoredGraph>,
    /// Verified plans to count, in request order.
    pub plans: Vec<Arc<ExecutionPlan>>,
    /// Requested thread budget (clamped to the scheduler's cap).
    pub threads: usize,
    /// The query's cancellation token (deadline already armed if any).
    pub cancel: CancelToken,
    /// Engine configuration for this query.
    pub config: EngineConfig,
}

/// What the worker sends back: per-plan counts in request order, or the
/// first failure (cancellation, deadline, panic isolation).
pub type JobResult = Result<Vec<u64>, EngineError>;

/// Why a submission was not admitted.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at its depth limit; retry later or shed load.
    Overloaded {
        /// The configured queue depth that was exceeded.
        queue_depth: usize,
    },
    /// The scheduler is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { queue_depth } => {
                write!(f, "scheduler overloaded ({queue_depth} queries queued)")
            }
            SubmitError::ShuttingDown => write!(f, "scheduler is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Monotonic counters for the stats endpoint.
#[derive(Debug, Default)]
pub struct SchedStats {
    /// Queries admitted into the queue.
    pub accepted: AtomicU64,
    /// Queries rejected by admission control.
    pub rejected: AtomicU64,
    /// Queries that completed with counts.
    pub completed: AtomicU64,
    /// Queries that ended cancelled or past deadline.
    pub cancelled: AtomicU64,
    /// Queries that failed (worker panic isolation, invalid plan).
    pub failed: AtomicU64,
}

type QueueItem = (Job, Sender<JobResult>);

/// The scheduler: bounded queue, fixed worker pool, active-query registry.
#[derive(Debug)]
pub struct Scheduler {
    tx: Mutex<Option<SyncSender<QueueItem>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    active: Mutex<HashMap<String, CancelToken>>,
    stats: Arc<SchedStats>,
    config: SchedulerConfig,
}

impl Scheduler {
    /// Starts `config.workers` pool threads.
    pub fn new(config: SchedulerConfig) -> Self {
        let (tx, rx) = std::sync::mpsc::sync_channel::<QueueItem>(config.queue_depth.max(1));
        // std's Receiver is single-consumer; the pool shares it behind a
        // mutex held only for the blocking dequeue, never while mining.
        let rx = Arc::new(Mutex::new(rx));
        let stats = Arc::new(SchedStats::default());
        let max_threads = config.max_threads_per_query.max(1);
        let workers = (0..config.workers.max(1))
            .map(|_| {
                // lint: allow-alloc(one-time pool construction, not dispatch)
                let rx = Arc::clone(&rx);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || worker_loop(&rx, &stats, max_threads))
            })
            // lint: allow-alloc(one-time pool construction, not dispatch)
            .collect();
        Self {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            active: Mutex::new(HashMap::new()),
            stats,
            config,
        }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Shared statistics counters.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// Admission control: queues `job` if there is room, rejecting
    /// immediately otherwise. On success returns the receiver the job's
    /// result will arrive on.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is full,
    /// [`SubmitError::ShuttingDown`] after [`Scheduler::shutdown`].
    pub fn submit(&self, job: Job) -> Result<Receiver<JobResult>, SubmitError> {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        let guard = self
            .tx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(tx) = guard.as_ref() else {
            return Err(SubmitError::ShuttingDown);
        };
        match tx.try_send((job, reply_tx)) {
            Ok(()) => {
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(reply_rx)
            }
            Err(TrySendError::Full(_)) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Overloaded {
                    queue_depth: self.config.queue_depth,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Registers a client-visible query id so a later
    /// [`Scheduler::cancel`] (from any connection) can find its token.
    pub fn register(&self, id: &str, token: CancelToken) {
        self.active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            // lint: allow-alloc(registry entry per query id, not per task)
            .insert(id.to_owned(), token);
    }

    /// Removes a finished query from the active registry.
    pub fn unregister(&self, id: &str) {
        self.active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(id);
    }

    /// Cancels the active query registered under `id`. Returns whether an
    /// active query of that id existed. Works on queued jobs too: their
    /// token is registered at admission, and the engine checks it before
    /// claiming the first task.
    pub fn cancel(&self, id: &str) -> bool {
        let active = self
            .active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match active.get(id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Number of registered (queued or running) queries.
    pub fn active_count(&self) -> usize {
        self.active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Stops accepting work, cancels every active query, and joins the
    /// pool. Idempotent. Queued-but-unstarted jobs still flow through
    /// their worker, which observes the cancelled token before claiming a
    /// task and reports [`EngineError::Cancelled`] — no silent drops.
    pub fn shutdown(&self) {
        {
            let active = self
                .active
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for token in active.values() {
                token.cancel();
            }
        }
        // Dropping the sender ends every worker's recv loop once the
        // queue drains.
        self.tx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        let workers = std::mem::take(
            &mut *self
                .workers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One pool thread: dequeue, execute through the cancellable engine entry
/// point, reply. A query failure (cancelled, deadline, isolated panic)
/// is a *result*, not a pool event — the thread loops on.
fn worker_loop(rx: &Mutex<Receiver<QueueItem>>, stats: &SchedStats, max_threads: usize) {
    loop {
        let item = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        let Ok((job, reply)) = item else {
            return; // queue closed: shutdown
        };
        let result = run_job(&job, max_threads);
        match &result {
            Ok(_) => stats.completed.fetch_add(1, Ordering::Relaxed),
            Err(e) if e.cancel_kind().is_some() => stats.cancelled.fetch_add(1, Ordering::Relaxed),
            Err(_) => stats.failed.fetch_add(1, Ordering::Relaxed),
        };
        // A vanished requester (client hung up) is fine; drop the result.
        let _ = reply.send(result);
    }
}

/// Executes every plan of one job with the shared graph, shared hub set,
/// clamped thread budget, and the job's token. All-or-nothing: the first
/// failing plan discards the query (a partial per-pattern vector would be
/// indistinguishable from a complete one).
///
/// The clamped budget composes with the engine's work-stealing scheduler
/// (`job.config.work_stealing`, daemon flag `--no-steal`): the budget
/// fixes how many workers a query spawns, stealing only redistributes
/// root tasks *among* them, so the cap — and the count — holds under
/// every steal schedule.
fn run_job(job: &Job, max_threads: usize) -> JobResult {
    let threads = job.threads.clamp(1, max_threads);
    // lint: allow-alloc(per-query result vector, bounded by pattern count)
    let mut counts = Vec::with_capacity(job.plans.len());
    for plan in &job.plans {
        let n = try_count_plan_parallel_shared(
            &job.graph.graph,
            plan,
            threads,
            &job.config,
            // lint: allow-alloc(Arc refcount bump, shares the resident hub set)
            job.graph.hubs.clone(),
            &job.cancel,
        )?;
        counts.push(n);
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::GraphRegistry;
    use fingers_pattern::{Induced, Pattern};

    fn test_graph(spec: &str) -> Arc<StoredGraph> {
        let mut reg = GraphRegistry::new();
        reg.load("g", spec, &EngineConfig::default()).expect("load");
        reg.get("g").expect("stored")
    }

    fn plan_of(p: &Pattern) -> Arc<ExecutionPlan> {
        Arc::new(ExecutionPlan::compile(p, Induced::Vertex))
    }

    fn job(graph: &Arc<StoredGraph>, plans: Vec<Arc<ExecutionPlan>>, token: CancelToken) -> Job {
        Job {
            graph: Arc::clone(graph),
            plans,
            threads: 2,
            cancel: token,
            config: EngineConfig::default(),
        }
    }

    #[test]
    fn runs_jobs_and_counts_match_direct_execution() {
        let graph = test_graph("gen:er:60:240:11");
        let sched = Scheduler::new(SchedulerConfig::default());
        let plan = plan_of(&Pattern::triangle());
        let expected = fingers_mining::count_plan(&graph.graph, &plan);
        let rx = sched
            .submit(job(&graph, vec![Arc::clone(&plan)], CancelToken::new()))
            .expect("admitted");
        let counts = rx.recv().expect("reply").expect("success");
        assert_eq!(counts, vec![expected]);
        assert_eq!(sched.stats().completed.load(Ordering::Relaxed), 1);
        sched.shutdown();
    }

    #[test]
    fn thread_budgets_compose_with_stealing_and_simd_toggles() {
        // The same query under every scheduler/kernel toggle and several
        // thread budgets (including ones above the per-query cap) must
        // produce the serial count — budgets clamp worker counts, stealing
        // only moves tasks among those workers.
        let graph = test_graph("gen:pl:300:3000:13");
        let sched = Scheduler::new(SchedulerConfig {
            workers: 2,
            queue_depth: 8,
            max_threads_per_query: 4,
            default_timeout: None,
        });
        let plan = plan_of(&Pattern::triangle());
        let expected = fingers_mining::count_plan(&graph.graph, &plan);
        for config in [
            EngineConfig::default(),
            EngineConfig::without_stealing(),
            EngineConfig::without_simd(),
        ] {
            for threads in [1, 4, 64] {
                let rx = sched
                    .submit(Job {
                        graph: Arc::clone(&graph),
                        plans: vec![Arc::clone(&plan)],
                        threads,
                        cancel: CancelToken::new(),
                        config: config.clone(),
                    })
                    .expect("admitted");
                let counts = rx.recv().expect("reply").expect("success");
                assert_eq!(counts, vec![expected], "threads={threads} {config:?}");
            }
        }
        sched.shutdown();
    }

    #[test]
    fn admission_control_rejects_when_queue_is_full() {
        let graph = test_graph("gen:pl:2000:24000:7");
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_depth: 1,
            max_threads_per_query: 1,
            default_timeout: None,
        });
        let slow = plan_of(&Pattern::clique(5));
        // First job occupies the worker, second fills the queue; the
        // bounded channel may hand slot one straight to the worker, so
        // push until the first rejection — it must arrive by job 4.
        let mut receivers = Vec::new();
        let mut rejected = None;
        for _ in 0..4 {
            match sched.submit(job(&graph, vec![Arc::clone(&slow)], CancelToken::new())) {
                Ok(rx) => receivers.push(rx),
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        let rejected = rejected.expect("queue depth 1 must reject by the fourth submit");
        assert_eq!(rejected, SubmitError::Overloaded { queue_depth: 1 });
        assert!(sched.stats().rejected.load(Ordering::Relaxed) >= 1);
        // The admitted jobs still complete; the pool is healthy.
        for rx in receivers {
            rx.recv().expect("reply").expect("success");
        }
        sched.shutdown();
    }

    #[test]
    fn cancelling_a_queued_job_reports_cancelled_without_poisoning_the_pool() {
        let graph = test_graph("gen:pl:2000:24000:7");
        let sched = Scheduler::new(SchedulerConfig {
            workers: 1,
            queue_depth: 4,
            max_threads_per_query: 1,
            default_timeout: None,
        });
        let slow = plan_of(&Pattern::clique(5));
        let quick = plan_of(&Pattern::triangle());
        // Job A occupies the single worker.
        let a_rx = sched
            .submit(job(&graph, vec![Arc::clone(&slow)], CancelToken::new()))
            .expect("A admitted");
        // Job B queues behind it; cancel it while queued.
        let b_token = CancelToken::new();
        sched.register("b", b_token.clone());
        let b_rx = sched
            .submit(job(&graph, vec![Arc::clone(&slow)], b_token))
            .expect("B admitted");
        assert!(sched.cancel("b"), "registered id is cancellable");
        assert!(!sched.cancel("zzz"), "unknown id is not");
        a_rx.recv().expect("A reply").expect("A completes");
        let b_err = b_rx.recv().expect("B reply").expect_err("B was cancelled");
        assert!(b_err.cancel_kind().is_some(), "{b_err}");
        sched.unregister("b");
        assert_eq!(sched.active_count(), 0);
        // The same worker thread serves a fresh query afterwards.
        let c_rx = sched
            .submit(job(&graph, vec![quick], CancelToken::new()))
            .expect("C admitted");
        c_rx.recv().expect("C reply").expect("pool not poisoned");
        assert_eq!(sched.stats().cancelled.load(Ordering::Relaxed), 1);
        sched.shutdown();
    }

    #[test]
    fn deadline_jobs_terminate_with_deadline_kind() {
        let graph = test_graph("gen:pl:2000:24000:7");
        let sched = Scheduler::new(SchedulerConfig::default());
        let slow = plan_of(&Pattern::clique(5));
        let token = CancelToken::with_deadline(Duration::from_millis(1));
        let rx = sched
            .submit(job(&graph, vec![slow], token))
            .expect("admitted");
        let err = rx.recv().expect("reply").expect_err("deadline fires");
        assert_eq!(
            err.cancel_kind(),
            Some(fingers_mining::CancelKind::Deadline),
            "{err}"
        );
        sched.shutdown();
    }

    #[test]
    fn shutdown_cancels_active_and_rejects_new_work() {
        let graph = test_graph("gen:er:50:200:3");
        let sched = Scheduler::new(SchedulerConfig::default());
        sched.shutdown();
        let err = sched
            .submit(job(
                &graph,
                vec![plan_of(&Pattern::triangle())],
                CancelToken::new(),
            ))
            .expect_err("rejected after shutdown");
        assert_eq!(err, SubmitError::ShuttingDown);
        sched.shutdown(); // idempotent
    }
}
