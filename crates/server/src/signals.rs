//! Async-signal-safe SIGINT/SIGTERM latching for the serve loop.
//!
//! The daemon must come down cleanly on Ctrl-C or a service manager's
//! SIGTERM: force-close tracked connections, join the pool, and remove
//! the socket file — the same orderly path as a protocol `shutdown`
//! request. Rust's standard library deliberately exposes no signal API,
//! and this repo vendors no `libc`/`signal-hook` stand-in, so this module
//! declares the two C symbols it needs (`signal`, part of every libc the
//! workspace can build on) behind the crate's one unsafe island. The
//! handler itself only stores a relaxed `AtomicBool` — one of the few
//! operations that is async-signal-safe — and a watcher thread in the CLI
//! polls the flag and drives `Daemon::shutdown`.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

/// POSIX signal number for terminal interrupt (Ctrl-C).
pub const SIGINT: i32 = 2;
/// POSIX signal number for orderly termination requests.
pub const SIGTERM: i32 = 15;

static TERMINATION_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" {
    /// `signal(2)`: installs `handler` for `signum`, returning the
    /// previous handler address. Present in every libc; the std runtime
    /// already links it. Typed with a function-pointer parameter so no
    /// integer/pointer casts are needed at the call sites.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// The installed handler: latch the flag and return. Nothing else here is
/// async-signal-safe — no locks, no allocation, no I/O.
extern "C" fn on_signal(_signum: i32) {
    // ord: seqcst(async-signal context; one latch flag, strongest order costs nothing here)
    TERMINATION_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM latch (idempotent) and returns the flag a
/// watcher thread should poll. The flag flips to `true` the first time
/// either signal arrives; repeated signals are harmless.
pub fn install_termination_flag() -> &'static AtomicBool {
    // SAFETY: `signal` is a valid libc entry point; `on_signal` is an
    // `extern "C" fn(i32)` whose address is a legal handler, and the
    // handler body performs only an atomic store (async-signal-safe).
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
    &TERMINATION_REQUESTED
}

/// Whether a termination signal has been latched.
pub fn termination_requested() -> bool {
    // ord: seqcst(pairs with the handler store)
    TERMINATION_REQUESTED.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_latches_when_the_handler_runs() {
        let flag = install_termination_flag();
        assert!(!flag.load(Ordering::SeqCst));
        // Call the handler directly — raising a real signal would race
        // the rest of the test process. The ci.sh daemon smoke sends a
        // real SIGTERM end-to-end.
        on_signal(SIGTERM);
        assert!(termination_requested());
        TERMINATION_REQUESTED.store(false, Ordering::SeqCst);
    }
}
