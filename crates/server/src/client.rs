//! A minimal line-protocol client: used by `fingers-mine client`, the
//! service-latency load generator, and the integration tests.
//!
//! Includes the cooperative half of the daemon's degradation ladder: when
//! a response is `overloaded`, [`Client::request_with_backoff`] retries
//! under deterministic seeded exponential backoff with jitter, honoring
//! the `retry_after_ms` hint the ladder attaches to pressure sheds — so a
//! retrying fleet spreads out instead of re-stampeding the daemon, and a
//! soak run with a fixed seed replays the exact same delays.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::json::Json;
use crate::proto::KIND_OVERLOADED;

/// Retry schedule for `overloaded` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = never retry).
    pub retries: u32,
    /// Base delay of the exponential schedule, in milliseconds.
    pub base_ms: u64,
    /// Seed of the jitter stream (same seed → same delays).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            retries: 0,
            base_ms: 25,
            seed: 0,
        }
    }
}

/// The delay before retry number `attempt` (0-based): the daemon's
/// `retry_after_ms` hint when present, otherwise `base_ms · 2^attempt`,
/// plus up to 50 % seeded jitter either way. A pure function of its
/// arguments, so schedules are reproducible and unit-testable.
pub fn backoff_delay_ms(policy: &RetryPolicy, attempt: u32, retry_after_ms: Option<u64>) -> u64 {
    let base = retry_after_ms.unwrap_or_else(|| {
        policy
            .base_ms
            .saturating_mul(1u64 << u64::from(attempt.min(10)))
    });
    let mut rng = ChaCha8Rng::seed_from_u64(policy.seed ^ (u64::from(attempt) << 32));
    base + rng.gen_range(0..=base / 2)
}

/// The `retry_after_ms` hint of an `overloaded` response line, or `None`
/// for every other response (including unparseable ones).
fn overloaded_hint(line: &str) -> Option<Option<u64>> {
    let v = Json::parse(line).ok()?;
    if v.get("kind").and_then(Json::as_str) != Some(KIND_OVERLOADED) {
        return None;
    }
    Some(v.get("retry_after_ms").and_then(Json::as_u64))
}

/// A connected client. One request line in, one response line out; the
/// connection stays open across requests so a client can pipeline a
/// session (e.g. submit on one connection, cancel from another).
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to a daemon socket.
    ///
    /// # Errors
    ///
    /// The connect failure, rendered as text (protocol exit code 10).
    pub fn connect(socket: &Path) -> Result<Client, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to {socket:?}: {e}"))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("cannot clone socket: {e}"))?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Sends one request line and reads the one response line.
    ///
    /// # Errors
    ///
    /// Transport failures (write, read, or daemon hang-up), as text.
    pub fn request(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("write failed: {e}"))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".into());
        }
        Ok(response.trim_end().to_owned())
    }

    /// Like [`Client::request`], but retries `overloaded` responses up to
    /// `policy.retries` times under seeded exponential backoff, honoring
    /// the daemon's `retry_after_ms` hint. Any other response — and the
    /// final `overloaded` once retries are exhausted — is returned as-is.
    ///
    /// # Errors
    ///
    /// Transport failures, as text (never retried: a dead socket will not
    /// heal by waiting on the same connection).
    pub fn request_with_backoff(
        &mut self,
        line: &str,
        policy: &RetryPolicy,
    ) -> Result<String, String> {
        let mut attempt = 0u32;
        loop {
            let response = self.request(line)?;
            let Some(hint) = overloaded_hint(&response) else {
                return Ok(response);
            };
            if attempt >= policy.retries {
                return Ok(response);
            }
            std::thread::sleep(Duration::from_millis(backoff_delay_ms(
                policy, attempt, hint,
            )));
            attempt += 1;
        }
    }
}

/// One-shot convenience: connect, send `line`, return the response line.
///
/// # Errors
///
/// Transport failures, as text.
pub fn request_line(socket: &Path, line: &str) -> Result<String, String> {
    Client::connect(socket)?.request(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_exponential_with_bounded_jitter() {
        let policy = RetryPolicy {
            retries: 5,
            base_ms: 100,
            seed: 42,
        };
        for attempt in 0..5 {
            let base = 100u64 << attempt;
            let d1 = backoff_delay_ms(&policy, attempt, None);
            let d2 = backoff_delay_ms(&policy, attempt, None);
            assert_eq!(d1, d2, "same seed and attempt → same delay");
            assert!(
                d1 >= base && d1 <= base + base / 2,
                "attempt {attempt}: {d1}"
            );
        }
        // Different seeds jitter differently somewhere in the schedule.
        let other = RetryPolicy { seed: 43, ..policy };
        assert!(
            (0..5).any(|a| backoff_delay_ms(&policy, a, None) != backoff_delay_ms(&other, a, None)),
            "jitter must depend on the seed"
        );
        // The exponent saturates instead of overflowing.
        let big = backoff_delay_ms(&policy, u32::MAX, None);
        assert!(big >= 100u64 << 10);
    }

    #[test]
    fn backoff_honors_the_retry_after_hint() {
        let policy = RetryPolicy {
            retries: 3,
            base_ms: 1000,
            seed: 7,
        };
        let d = backoff_delay_ms(&policy, 0, Some(40));
        assert!(
            (40..=60).contains(&d),
            "hint 40 → delay in [40, 60], got {d}"
        );
    }

    #[test]
    fn overloaded_hint_parses_only_overloaded_lines() {
        assert_eq!(
            overloaded_hint(r#"{"status":"error","kind":"overloaded","retry_after_ms":80}"#),
            Some(Some(80))
        );
        assert_eq!(
            overloaded_hint(r#"{"status":"error","kind":"overloaded","message":"full"}"#),
            Some(None)
        );
        assert_eq!(overloaded_hint(r#"{"status":"ok"}"#), None);
        assert_eq!(
            overloaded_hint(r#"{"status":"error","kind":"engine"}"#),
            None
        );
        assert_eq!(overloaded_hint("not json"), None);
    }
}
