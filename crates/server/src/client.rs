//! A minimal line-protocol client: used by `fingers-mine client`, the
//! service-latency load generator, and the integration tests.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A connected client. One request line in, one response line out; the
/// connection stays open across requests so a client can pipeline a
/// session (e.g. submit on one connection, cancel from another).
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to a daemon socket.
    ///
    /// # Errors
    ///
    /// The connect failure, rendered as text (protocol exit code 10).
    pub fn connect(socket: &Path) -> Result<Client, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to {socket:?}: {e}"))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("cannot clone socket: {e}"))?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Sends one request line and reads the one response line.
    ///
    /// # Errors
    ///
    /// Transport failures (write, read, or daemon hang-up), as text.
    pub fn request(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("write failed: {e}"))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".into());
        }
        Ok(response.trim_end().to_owned())
    }
}

/// One-shot convenience: connect, send `line`, return the response line.
///
/// # Errors
///
/// Transport failures, as text.
pub fn request_line(socket: &Path, line: &str) -> Result<String, String> {
    Client::connect(socket)?.request(line)
}
