//! The daemon: a Unix-socket line-JSON front end over the four layers.
//!
//! One accept loop, one thread per connection, one request line → one
//! response line, sequentially per connection; clients that want
//! concurrency open more connections. Every request flows registry →
//! session (parse + verify + cache) → scheduler (admission, budget,
//! deadline) → engine, and every failure along that path is a typed
//! response the client can branch on — the daemon itself never dies on a
//! bad query.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fingers_mining::{CancelToken, EngineConfig};
use fingers_pattern::Induced;

use fingers_mining::chaos::{self, ChaosSite};

use crate::json::Json;
use crate::proto::{self, CountReport, Request};
use crate::sched::{Job, JobError, Scheduler, SchedulerConfig, SubmitError};
use crate::session::{self, PlanCache, DEFAULT_PLAN_CACHE_CAP};
use crate::storage::GraphRegistry;

/// Everything needed to start a daemon.
#[derive(Debug)]
pub struct DaemonConfig {
    /// Path of the Unix socket to bind (a stale file is replaced).
    pub socket: PathBuf,
    /// `(name, spec)` pairs loaded into the registry before serving.
    pub graphs: Vec<(String, String)>,
    /// Engine configuration shared by every query (hub budget, fusion).
    pub engine: EngineConfig,
    /// Scheduler sizing and policy.
    pub sched: SchedulerConfig,
}

/// Shared state behind every connection thread.
struct ServerState {
    registry: GraphRegistry,
    cache: PlanCache,
    sched: Scheduler,
    socket: PathBuf,
    started: Instant,
    stopping: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    /// Write-half clones of every live connection, force-closed on
    /// shutdown so handler threads blocked in `read_line` wake up and can
    /// be joined — a client that never hangs up must not pin the daemon.
    conns: Mutex<Vec<UnixStream>>,
}

/// Flips the daemon into shutdown: closes every live connection (waking
/// blocked readers) and unblocks the accept loop with a throwaway
/// connection. Idempotent; callable from [`Daemon::shutdown`] or from a
/// connection thread handling a `shutdown` request.
fn initiate_shutdown(state: &ServerState) {
    // ord: seqcst(process-wide one-shot shutdown latch; cold path)
    if state.stopping.swap(true, Ordering::SeqCst) {
        return;
    }
    let conns = state
        .conns
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for conn in conns.iter() {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    drop(conns);
    let _ = UnixStream::connect(&state.socket);
}

/// A running daemon. Dropping it (or calling [`Daemon::shutdown`] then
/// [`Daemon::wait`]) stops the accept loop, joins every connection
/// thread, and removes the socket file.
pub struct Daemon {
    state: Arc<ServerState>,
    socket: PathBuf,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Loads the configured graphs, binds the socket, and starts serving.
    ///
    /// # Errors
    ///
    /// Graph load failures and socket bind failures, rendered as text.
    pub fn start(config: DaemonConfig) -> Result<Daemon, String> {
        let mut registry = GraphRegistry::new();
        for (name, spec) in &config.graphs {
            registry.load(name, spec, &config.engine)?;
        }
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)
                .map_err(|e| format!("cannot replace stale socket {:?}: {e}", config.socket))?;
        }
        let listener = UnixListener::bind(&config.socket)
            .map_err(|e| format!("cannot bind {:?}: {e}", config.socket))?;
        // The plan cache charges its footprint to the scheduler's global
        // gauge, so cached plans and query scratch memory share one budget.
        let sched = Scheduler::new(config.sched);
        let cache = PlanCache::with_limits(DEFAULT_PLAN_CACHE_CAP, Some(sched.gauge().clone()));
        let state = Arc::new(ServerState {
            registry,
            cache,
            sched,
            socket: config.socket.clone(),
            started: Instant::now(),
            stopping: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let engine = config.engine;
        let accept_state = Arc::clone(&state);
        let socket = config.socket.clone();
        let accept = std::thread::spawn(move || {
            accept_loop(&listener, &accept_state, &engine);
        });
        Ok(Daemon {
            state,
            socket,
            accept: Some(accept),
        })
    }

    /// The socket path the daemon is serving on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Initiates shutdown: stops accepting connections, force-closes the
    /// live ones, and (in [`Daemon::wait`]) cancels every registered
    /// query. Idempotent; does not block — call [`Daemon::wait`] to join.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.state);
    }

    /// A detached handle that can initiate shutdown from another thread
    /// (the CLI's signal watcher) while [`Daemon::wait`] blocks.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Blocks until the accept loop and every connection thread exit,
    /// then shuts the scheduler down and removes the socket file.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.state.sched.shutdown();
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// A cloneable trigger for an orderly daemon shutdown, detached from the
/// [`Daemon`] value itself so a signal-watcher thread can hold it while
/// the main thread sits in [`Daemon::wait`].
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
}

impl ShutdownHandle {
    /// Initiates the same orderly shutdown as [`Daemon::shutdown`]:
    /// idempotent, non-blocking.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.state);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.state.sched.shutdown();
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn accept_loop(listener: &UnixListener, state: &Arc<ServerState>, engine: &EngineConfig) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        // ord: seqcst(pairs with the shutdown latch swap)
        if state.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // ord: relaxed(monotonic stats counter)
        state.connections.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            let mut conns = state
                .conns
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            conns.push(clone);
            // A shutdown that raced this accept has already swept `conns`;
            // close the straggler ourselves so its handler cannot block.
            // ord: seqcst(pairs with the shutdown latch swap)
            if state.stopping.load(Ordering::SeqCst) {
                for conn in conns.iter() {
                    let _ = conn.shutdown(std::net::Shutdown::Both);
                }
            }
        }
        let state = Arc::clone(state);
        let engine = engine.clone();
        handlers.push(std::thread::spawn(move || {
            handle_connection(stream, &state, &engine);
        }));
        handlers.retain(|h| !h.is_finished());
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Serves one connection: read a line, answer a line, until EOF or a
/// shutdown request. I/O failures just end the connection — the client
/// hung up; there is nobody left to tell.
fn handle_connection(stream: UnixStream, state: &Arc<ServerState>, engine: &EngineConfig) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        // Chaos probe: a seeded socket-I/O fault drops this connection
        // mid-conversation, exactly like a client yanked the cable. The
        // daemon must shrug — the soak test asserts later queries on
        // fresh connections still succeed. Shut the socket down rather
        // than just dropping it: a write-half clone lives in
        // `state.conns` and would otherwise hold the connection open,
        // leaving the peer blocked in `read_line` instead of seeing EOF.
        if chaos::should_fail(ChaosSite::SocketIo) {
            let _ = writer.shutdown(std::net::Shutdown::Both);
            break;
        }
        // ord: relaxed(monotonic stats counter)
        state.requests.fetch_add(1, Ordering::Relaxed);
        let (response, stop_after) = dispatch(state, engine, &line);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if stop_after {
            initiate_shutdown(state);
            break;
        }
    }
}

/// Routes one parsed request; returns the response line and whether the
/// daemon should stop afterwards.
fn dispatch(state: &Arc<ServerState>, engine: &EngineConfig, line: &str) -> (String, bool) {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(m) => return (proto::error(proto::KIND_BAD_REQUEST, &m), false),
    };
    match request {
        Request::Count {
            id,
            graph,
            patterns,
            threads,
            timeout_ms,
            edge_induced,
            mutate,
        } => {
            let induced = if edge_induced {
                Induced::Edge
            } else {
                Induced::Vertex
            };
            let response = run_count(
                state,
                engine,
                "count",
                id.as_deref(),
                &graph,
                &patterns,
                threads,
                timeout_ms,
                induced,
                mutate.as_deref(),
            );
            (response, false)
        }
        Request::MotifCensus {
            id,
            graph,
            threads,
            timeout_ms,
        } => {
            // The 3-motif census is the triangle + wedge pair; spelling it
            // as pattern specs routes it through the same verified cache.
            let patterns = vec!["tc".to_owned(), "wedge".to_owned()];
            let response = run_count(
                state,
                engine,
                "motif-census",
                id.as_deref(),
                &graph,
                &patterns,
                threads,
                timeout_ms,
                Induced::Vertex,
                None,
            );
            (response, false)
        }
        Request::VerifyPlan {
            pattern,
            edge_induced,
            mutate,
        } => {
            let induced = if edge_induced {
                Induced::Edge
            } else {
                Induced::Vertex
            };
            let response = match session::parse_pattern_spec(&pattern)
                .and_then(|p| session::verified_plan(&state.cache, &p, induced, mutate.as_deref()))
            {
                Ok(plan) => Json::obj([
                    ("status", Json::str("ok")),
                    ("op", Json::str("verify-plan")),
                    ("pattern", Json::str(&pattern)),
                    ("sound", Json::Bool(true)),
                    ("levels", Json::U64(plan.pattern_size() as u64)),
                ])
                .render(),
                Err(e) => proto::session_error(&e),
            };
            (response, false)
        }
        Request::Stats => (stats_response(state), false),
        Request::Ping => (ping_response(state), false),
        Request::Cancel { id } => {
            let found = state.sched.cancel(&id);
            let response = Json::obj([
                ("status", Json::str("ok")),
                ("op", Json::str("cancel")),
                ("id", Json::str(&id)),
                ("found", Json::Bool(found)),
            ])
            .render();
            (response, false)
        }
        Request::Shutdown => {
            let response =
                Json::obj([("status", Json::str("ok")), ("op", Json::str("shutdown"))]).render();
            (response, true)
        }
    }
}

/// The full count path: registry lookup → plan cache → admission →
/// execution → report. Used by both `count` and `motif-census`.
#[allow(clippy::too_many_arguments)]
fn run_count(
    state: &Arc<ServerState>,
    engine: &EngineConfig,
    op: &str,
    id: Option<&str>,
    graph_name: &str,
    patterns: &[String],
    threads: Option<usize>,
    timeout_ms: Option<u64>,
    induced: Induced,
    mutate: Option<&str>,
) -> String {
    let Some(graph) = state.registry.get(graph_name) else {
        return proto::error(
            proto::KIND_UNKNOWN_GRAPH,
            &format!("no graph registered as {graph_name:?}"),
        );
    };
    let mut plans = Vec::with_capacity(patterns.len());
    for spec in patterns {
        let plan = match session::parse_pattern_spec(spec)
            .and_then(|p| session::verified_plan(&state.cache, &p, induced, mutate))
        {
            Ok(plan) => plan,
            Err(e) => return proto::session_error(&e),
        };
        plans.push(plan);
    }
    let timeout = timeout_ms
        .map(Duration::from_millis)
        .or(state.sched.config().default_timeout);
    let token = match timeout {
        Some(t) => CancelToken::with_deadline(t),
        None => CancelToken::new(),
    };
    if let Some(id) = id {
        state.sched.register(id, token.clone());
    }
    let threads = threads.unwrap_or(state.sched.config().max_threads_per_query);
    let job = Job {
        graph: Arc::clone(&graph),
        plans,
        threads,
        cancel: token,
        config: engine.clone(),
    };
    let start = Instant::now();
    let submitted = state.sched.submit(job);
    let result = match submitted {
        Ok(rx) => match rx.recv() {
            Ok(result) => result,
            Err(_) => {
                // Worker vanished without replying (e.g. an injected pool
                // panic): the in-flight query fails typed, the phoenix
                // guard has already respawned the worker, and the socket
                // stays up for the next query.
                if let Some(id) = id {
                    state.sched.unregister(id);
                }
                return proto::error(proto::KIND_ENGINE, "worker dropped the query");
            }
        },
        Err(e) => {
            if let Some(id) = id {
                state.sched.unregister(id);
            }
            return match e {
                SubmitError::Overloaded { retry_after_ms, .. } => {
                    proto::overloaded(&e.to_string(), retry_after_ms)
                }
                SubmitError::ShuttingDown => proto::error(proto::KIND_ENGINE, &e.to_string()),
            };
        }
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    if let Some(id) = id {
        state.sched.unregister(id);
    }
    match result {
        Ok(counts) => {
            let total = counts.iter().sum();
            let report = CountReport {
                patterns: patterns.to_vec(),
                counts,
                total,
                engine: format!("service(threads={threads})"),
                wall_ms,
            };
            proto::ok_count(op, id, graph_name, &report)
        }
        Err(JobError::Shed { retry_after_ms }) => {
            proto::overloaded("query shed under memory pressure", Some(retry_after_ms))
        }
        Err(JobError::Engine(e)) => proto::engine_error(id, &e),
    }
}

/// The health probe behind the `ping` op: cheap, allocation-light, and
/// honest — readiness scripts poll it instead of sleep-and-hope, and the
/// soak harness reads recovery state (pool rebuilds, degradation rung,
/// gauge baseline) from it between storms.
fn ping_response(state: &Arc<ServerState>) -> String {
    let sched = state.sched.stats();
    let degradation = state.sched.degradation();
    Json::obj([
        ("status", Json::str("ok")),
        ("op", Json::str("ping")),
        (
            "uptime_ms",
            Json::U64(state.started.elapsed().as_millis() as u64),
        ),
        ("gauge_bytes", Json::U64(state.sched.gauge().bytes())),
        (
            "gauge_peak_bytes",
            Json::U64(state.sched.gauge().peak_bytes()),
        ),
        ("degradation", Json::str(degradation.as_str())),
        (
            "degradation_level",
            Json::U64(u64::from(degradation.level())),
        ),
        (
            "pool",
            Json::obj([
                ("workers", Json::U64(state.sched.config().workers as u64)),
                (
                    "rebuilds",
                    // ord: relaxed(observability snapshot; approximate reads are fine)
                    Json::U64(sched.pool_rebuilds.load(Ordering::Relaxed)),
                ),
            ]),
        ),
    ])
    .render()
}

/// The stats endpoint: resident graphs, plan-cache counters, scheduler
/// counters, connection totals.
fn stats_response(state: &Arc<ServerState>) -> String {
    let graphs = state
        .registry
        .iter()
        .map(|g| {
            Json::obj([
                ("name", Json::str(&g.name)),
                ("spec", Json::str(&g.spec)),
                ("vertices", Json::U64(g.graph.vertex_count() as u64)),
                ("edges", Json::U64(g.graph.edge_count() as u64)),
                ("hubs", Json::Bool(g.hubs.is_some())),
            ])
        })
        .collect();
    let sched = state.sched.stats();
    Json::obj([
        ("status", Json::str("ok")),
        ("op", Json::str("stats")),
        (
            "uptime_ms",
            Json::U64(state.started.elapsed().as_millis() as u64),
        ),
        ("graphs", Json::Arr(graphs)),
        (
            "plan_cache",
            Json::obj([
                ("entries", Json::U64(state.cache.len() as u64)),
                ("capacity", Json::U64(state.cache.capacity() as u64)),
                ("hits", Json::U64(state.cache.hits())),
                ("misses", Json::U64(state.cache.misses())),
                ("evictions", Json::U64(state.cache.evictions())),
                ("bytes", Json::U64(state.cache.bytes())),
            ]),
        ),
        (
            "memory",
            Json::obj([
                ("gauge_bytes", Json::U64(state.sched.gauge().bytes())),
                (
                    "gauge_peak_bytes",
                    Json::U64(state.sched.gauge().peak_bytes()),
                ),
                ("degradation", Json::str(state.sched.degradation().as_str())),
            ]),
        ),
        (
            "scheduler",
            Json::obj([
                ("workers", Json::U64(state.sched.config().workers as u64)),
                (
                    "queue_depth",
                    Json::U64(state.sched.config().queue_depth as u64),
                ),
                (
                    "accepted",
                    // ord: relaxed(observability snapshot; approximate reads are fine)
                    Json::U64(sched.accepted.load(Ordering::Relaxed)),
                ),
                (
                    "rejected",
                    // ord: relaxed(observability snapshot; approximate reads are fine)
                    Json::U64(sched.rejected.load(Ordering::Relaxed)),
                ),
                (
                    "completed",
                    // ord: relaxed(observability snapshot; approximate reads are fine)
                    Json::U64(sched.completed.load(Ordering::Relaxed)),
                ),
                (
                    "cancelled",
                    // ord: relaxed(observability snapshot; approximate reads are fine)
                    Json::U64(sched.cancelled.load(Ordering::Relaxed)),
                ),
                // ord: relaxed(observability snapshot; approximate reads are fine)
                ("failed", Json::U64(sched.failed.load(Ordering::Relaxed))),
                // ord: relaxed(observability snapshot; approximate reads are fine)
                ("shed", Json::U64(sched.shed.load(Ordering::Relaxed))),
                (
                    "degraded",
                    // ord: relaxed(observability snapshot; approximate reads are fine)
                    Json::U64(sched.degraded.load(Ordering::Relaxed)),
                ),
                (
                    "pool_rebuilds",
                    // ord: relaxed(observability snapshot; approximate reads are fine)
                    Json::U64(sched.pool_rebuilds.load(Ordering::Relaxed)),
                ),
                ("active", Json::U64(state.sched.active_count() as u64)),
            ]),
        ),
        (
            "connections",
            // ord: relaxed(observability snapshot; approximate reads are fine)
            Json::U64(state.connections.load(Ordering::Relaxed)),
        ),
        (
            "requests",
            // ord: relaxed(observability snapshot; approximate reads are fine)
            Json::U64(state.requests.load(Ordering::Relaxed)),
        ),
    ])
    .render()
}
