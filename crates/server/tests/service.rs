//! End-to-end service tests over a real Unix socket: concurrency with
//! mixed thread budgets stays bit-identical to serial execution,
//! cancellation and deadlines never leak partial counts, admission
//! control sheds load with a typed response, and unsound input is
//! rejected at the session boundary.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use fingers_mining::EngineConfig;
use fingers_server::{proto, Client, Daemon, DaemonConfig, Json, SchedulerConfig};

static NEXT_SOCKET: AtomicU64 = AtomicU64::new(0);

fn socket_path() -> PathBuf {
    let n = NEXT_SOCKET.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "fingers-service-test-{}-{n}.sock",
        std::process::id()
    ))
}

fn start(graphs: &[(&str, &str)], sched: SchedulerConfig) -> Daemon {
    Daemon::start(DaemonConfig {
        socket: socket_path(),
        graphs: graphs
            .iter()
            .map(|(n, s)| ((*n).to_owned(), (*s).to_owned()))
            .collect(),
        engine: EngineConfig::default(),
        sched,
    })
    .expect("daemon starts")
}

fn parse(line: &str) -> Json {
    Json::parse(line).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"))
}

fn counts_of(v: &Json) -> Vec<u64> {
    v.get("counts")
        .and_then(Json::as_array)
        .expect("counts array")
        .iter()
        .map(|c| c.as_u64().expect("count fits u64"))
        .collect()
}

#[test]
fn concurrent_mixed_budget_queries_are_bit_identical_to_serial() {
    let daemon = start(
        &[("g", "gen:pl:1200:9600:5"), ("h", "gen:er:400:2400:9")],
        SchedulerConfig::default(),
    );
    // Serial reference counts, computed directly against the engine.
    let reference: Vec<(&str, &str, u64)> = [("g", "tc"), ("g", "4cl"), ("g", "tt"), ("h", "tc")]
        .into_iter()
        .map(|(graph, pat)| {
            let spec = if graph == "g" {
                "gen:pl:1200:9600:5"
            } else {
                "gen:er:400:2400:9"
            };
            let mut reg = fingers_server::GraphRegistry::new();
            reg.load("x", spec, &EngineConfig::default()).expect("load");
            let stored = reg.get("x").expect("stored");
            let pattern = fingers_pattern::parse_pattern(pat).expect("pattern");
            let plan =
                fingers_pattern::ExecutionPlan::compile(&pattern, fingers_pattern::Induced::Vertex);
            (graph, pat, fingers_mining::count_plan(&stored.graph, &plan))
        })
        .collect();
    // 12 concurrent clients, thread budgets 1..=4, over both graphs.
    let socket = daemon.socket().to_path_buf();
    let handles: Vec<_> = (0..12)
        .map(|i| {
            let socket = socket.clone();
            let (graph, pat, expected) = reference[i % reference.len()];
            let threads = 1 + (i % 4);
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("connect");
                let line = format!(
                    r#"{{"op":"count","graph":"{graph}","patterns":["{pat}"],"threads":{threads}}}"#
                );
                let response = parse(&client.request(&line).expect("request"));
                assert_eq!(
                    response.get("status").and_then(Json::as_str),
                    Some("ok"),
                    "{response:?}"
                );
                assert_eq!(
                    counts_of(&response),
                    vec![expected],
                    "graph {graph}, pattern {pat}, {threads} threads"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    // Isomorphic spellings hit the plan cache across connections.
    let mut client = Client::connect(&socket).expect("connect");
    let response = parse(
        &client
            .request(r#"{"op":"count","graph":"g","patterns":["0-1,1-2,0-2"]}"#)
            .expect("request"),
    );
    assert_eq!(counts_of(&response), vec![reference[0].2]);
    let stats = parse(&client.request(r#"{"op":"stats"}"#).expect("stats"));
    let cache = stats.get("plan_cache").expect("plan_cache");
    assert!(
        cache.get("hits").and_then(Json::as_u64).expect("hits") >= 1,
        "isomorphic spelling must hit the cache: {stats:?}"
    );
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn explicit_cancel_discards_the_query_and_keeps_the_pool_alive() {
    let daemon = start(
        &[("g", "gen:pl:3000:36000:7")],
        SchedulerConfig {
            workers: 1,
            queue_depth: 8,
            max_threads_per_query: 1,
            ..SchedulerConfig::default()
        },
    );
    let socket = daemon.socket().to_path_buf();
    // Query A (slow 5-clique) occupies the single worker; B queues behind
    // it and is cancelled from a separate connection while queued.
    let a_socket = socket.clone();
    let a = std::thread::spawn(move || {
        let mut client = Client::connect(&a_socket).expect("connect A");
        parse(
            &client
                .request(r#"{"op":"count","id":"slow-a","graph":"g","patterns":["5cl"]}"#)
                .expect("A request"),
        )
    });
    let b_socket = socket.clone();
    let b = std::thread::spawn(move || {
        let mut client = Client::connect(&b_socket).expect("connect B");
        parse(
            &client
                .request(r#"{"op":"count","id":"doomed-b","graph":"g","patterns":["5cl"]}"#)
                .expect("B request"),
        )
    });
    // Cancel B once it is visible in the active registry.
    let mut control = Client::connect(&socket).expect("connect control");
    let mut found = false;
    for _ in 0..200 {
        let response = parse(
            &control
                .request(r#"{"op":"cancel","id":"doomed-b"}"#)
                .expect("cancel"),
        );
        if response.get("found").and_then(Json::as_bool) == Some(true) {
            found = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(found, "query b never appeared in the active registry");
    let b_response = b.join().expect("B thread");
    assert_eq!(
        b_response.get("status").and_then(Json::as_str),
        Some("cancelled"),
        "{b_response:?}"
    );
    assert_eq!(
        b_response.get("reason").and_then(Json::as_str),
        Some("cancelled")
    );
    assert!(
        b_response.get("counts").is_none(),
        "a cancelled query must not leak partial counts: {b_response:?}"
    );
    assert_eq!(proto::exit_code_for_response(&b_response), 9);
    // A still completes with real counts, and the pool serves new work.
    let a_response = a.join().expect("A thread");
    assert_eq!(
        a_response.get("status").and_then(Json::as_str),
        Some("ok"),
        "{a_response:?}"
    );
    let after = parse(
        &control
            .request(r#"{"op":"count","graph":"g","patterns":["tc"]}"#)
            .expect("post-cancel query"),
    );
    assert_eq!(after.get("status").and_then(Json::as_str), Some("ok"));
    let stats = parse(&control.request(r#"{"op":"stats"}"#).expect("stats"));
    let sched = stats.get("scheduler").expect("scheduler");
    assert_eq!(sched.get("cancelled").and_then(Json::as_u64), Some(1));
    assert_eq!(sched.get("active").and_then(Json::as_u64), Some(0));
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn deadline_queries_report_deadline_and_workers_are_reclaimed() {
    let daemon = start(
        &[("g", "gen:pl:3000:36000:7")],
        SchedulerConfig {
            workers: 2,
            queue_depth: 8,
            max_threads_per_query: 2,
            ..SchedulerConfig::default()
        },
    );
    let socket = daemon.socket().to_path_buf();
    let mut client = Client::connect(&socket).expect("connect");
    let response = parse(
        &client
            .request(r#"{"op":"count","graph":"g","patterns":["5cl"],"timeout_ms":1}"#)
            .expect("request"),
    );
    assert_eq!(
        response.get("status").and_then(Json::as_str),
        Some("cancelled"),
        "{response:?}"
    );
    assert_eq!(
        response.get("reason").and_then(Json::as_str),
        Some("deadline")
    );
    assert!(response.get("counts").is_none());
    assert_eq!(proto::exit_code_for_response(&response), 9);
    // Both workers survive: two fresh queries complete concurrently.
    let after = parse(
        &client
            .request(r#"{"op":"count","graph":"g","patterns":["tc","wedge"]}"#)
            .expect("post-deadline"),
    );
    assert_eq!(after.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(counts_of(&after).len(), 2);
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn admission_control_returns_typed_overloaded_responses() {
    let daemon = start(
        &[("g", "gen:pl:3000:36000:7")],
        SchedulerConfig {
            workers: 1,
            queue_depth: 1,
            max_threads_per_query: 1,
            ..SchedulerConfig::default()
        },
    );
    let socket = daemon.socket().to_path_buf();
    // Saturate: each query holds its connection until the reply, so run
    // them on threads and push until one is rejected.
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("connect");
                parse(
                    &client
                        .request(r#"{"op":"count","graph":"g","patterns":["5cl"],"threads":1}"#)
                        .expect("request"),
                )
            })
        })
        .collect();
    let responses: Vec<Json> = handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect();
    let overloaded: Vec<&Json> = responses
        .iter()
        .filter(|r| r.get("kind").and_then(Json::as_str) == Some("overloaded"))
        .collect();
    let succeeded = responses
        .iter()
        .filter(|r| r.get("status").and_then(Json::as_str) == Some("ok"))
        .count();
    assert!(
        !overloaded.is_empty(),
        "worker=1/depth=1 under 6 concurrent queries must shed load: {responses:?}"
    );
    assert!(succeeded >= 1, "admitted queries still complete");
    assert_eq!(proto::exit_code_for_response(overloaded[0]), 8);
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn unsound_and_malformed_input_is_rejected_with_typed_kinds() {
    let daemon = start(&[("g", "gen:er:100:400:3")], SchedulerConfig::default());
    let socket = daemon.socket().to_path_buf();
    let mut client = Client::connect(&socket).expect("connect");
    let cases = [
        (
            r#"{"op":"verify-plan","pattern":"tt","mutate":"drop-init"}"#,
            "unsound-plan",
            7,
        ),
        (
            r#"{"op":"count","graph":"g","patterns":["zzz"]}"#,
            "bad-request",
            2,
        ),
        (
            r#"{"op":"count","graph":"nope","patterns":["tc"]}"#,
            "unknown-graph",
            3,
        ),
        (
            r#"{"op":"count","graph":"g","patterns":["tc"],"mutate":"drop-subtract"}"#,
            "unsupported",
            6,
        ),
        (r#"not json at all"#, "bad-request", 2),
    ];
    for (request, kind, exit) in cases {
        let response = parse(&client.request(request).expect("request"));
        assert_eq!(
            response.get("status").and_then(Json::as_str),
            Some("error"),
            "{request} -> {response:?}"
        );
        assert_eq!(
            response.get("kind").and_then(Json::as_str),
            Some(kind),
            "{request} -> {response:?}"
        );
        assert_eq!(proto::exit_code_for_response(&response), exit, "{request}");
    }
    // A sound verify-plan passes on the same connection.
    let ok = parse(
        &client
            .request(r#"{"op":"verify-plan","pattern":"tt"}"#)
            .expect("request"),
    );
    assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(ok.get("sound").and_then(Json::as_bool), Some(true));
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn motif_census_and_shutdown_round_trip() {
    let daemon = start(&[("g", "gen:er:300:1500:4")], SchedulerConfig::default());
    let socket = daemon.socket().to_path_buf();
    let mut client = Client::connect(&socket).expect("connect");
    let census = parse(
        &client
            .request(r#"{"op":"motif-census","graph":"g"}"#)
            .expect("census"),
    );
    assert_eq!(census.get("status").and_then(Json::as_str), Some("ok"));
    let counts = counts_of(&census);
    assert_eq!(counts.len(), 2, "triangle + wedge: {census:?}");
    let total = census.get("total").and_then(Json::as_u64).expect("total");
    assert_eq!(total, counts.iter().sum::<u64>());
    // Shutdown acknowledges, then the daemon exits and removes its socket.
    let bye = parse(&client.request(r#"{"op":"shutdown"}"#).expect("shutdown"));
    assert_eq!(bye.get("status").and_then(Json::as_str), Some("ok"));
    daemon.wait();
    assert!(!socket.exists(), "socket file removed on shutdown");
}
