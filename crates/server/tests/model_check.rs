//! Bounded model-check gate for the scheduler's concurrency protocols.
//!
//! Runs only with `--features model-check`. As in the mining crate's gate,
//! every test asserts the explorer *exhausted* its bounded space — a
//! truncated exploration fails rather than silently weakening the check.

use fingers_conc::model::CheckOptions;
use fingers_server::model;
use std::time::Duration;

fn opts() -> CheckOptions {
    CheckOptions {
        max_preemptions: 4,
        max_duration: Duration::from_secs(20),
        ..CheckOptions::default()
    }
}

#[test]
fn phoenix_rebuild_strands_no_queued_job() {
    let report = model::phoenix_rebuild_check(opts());
    report.assert_clean();
    assert!(report.executions > 1, "exploration must branch");
    assert!(
        report.max_threads >= 3,
        "main + mortal worker + its spawned replacement"
    );
}

#[test]
fn degradation_ladder_is_monotone_under_pressure() {
    let report = model::ladder_monotone_check(opts());
    report.assert_clean();
    assert!(report.executions > 1, "exploration must branch");
    assert!(report.max_threads >= 4, "main + two chargers + reader");
}
