//! Shared candidate-set storage across sibling tasks.
//!
//! A partially materialized candidate set `S_j(i)` is computed once at
//! level `i` and reused by the entire subtree below (paper Section 2.1:
//! "the partial result can be reused by the entire subtree without
//! recomputing"). Sibling tasks created by branch-level parallelism share
//! it through reference-counted frames chained toward the root.

use fingers_setops::Elem;
use std::rc::Rc;

/// One level's contribution of materialized candidate sets, linked to its
/// parent level's frame.
#[derive(Debug)]
pub struct Frame {
    parent: Option<Rc<Frame>>,
    /// `(target_level, set)` pairs materialized at this frame's level.
    sets: Vec<(usize, Rc<Vec<Elem>>)>,
}

impl Frame {
    /// Creates a frame on top of `parent` holding the sets materialized at
    /// the current level.
    pub fn new(parent: Option<Rc<Frame>>, sets: Vec<(usize, Rc<Vec<Elem>>)>) -> Rc<Self> {
        Rc::new(Self { parent, sets })
    }

    /// Looks up the most recent materialization of `S_target`, walking
    /// toward the root.
    pub fn lookup(&self, target: usize) -> Option<Rc<Vec<Elem>>> {
        for &(t, ref set) in &self.sets {
            if t == target {
                return Some(Rc::clone(set));
            }
        }
        self.parent.as_ref().and_then(|p| p.lookup(target))
    }

    /// Total bytes of the sets materialized in this frame alone (for the
    /// private-cache occupancy model).
    pub fn bytes(&self) -> u64 {
        self.sets
            .iter()
            .map(|(_, s)| (s.len() * std::mem::size_of::<Elem>()) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_prefers_nearest_frame() {
        let root = Frame::new(
            None,
            vec![(2, Rc::new(vec![1, 2, 3])), (3, Rc::new(vec![9]))],
        );
        let child = Frame::new(Some(Rc::clone(&root)), vec![(2, Rc::new(vec![7]))]);
        assert_eq!(*child.lookup(2).expect("S2"), vec![7]);
        assert_eq!(*child.lookup(3).expect("S3"), vec![9]);
        assert!(child.lookup(4).is_none());
    }

    #[test]
    fn bytes_count_only_own_sets() {
        let root = Frame::new(None, vec![(2, Rc::new(vec![1, 2, 3]))]);
        let child = Frame::new(Some(root), vec![(3, Rc::new(vec![1]))]);
        assert_eq!(child.bytes(), 4);
    }

    #[test]
    fn sharing_does_not_clone_data() {
        let set = Rc::new(vec![1, 2, 3]);
        let f = Frame::new(None, vec![(1, Rc::clone(&set))]);
        let a = f.lookup(1).expect("set");
        let b = f.lookup(1).expect("set");
        assert!(Rc::ptr_eq(&a, &b));
    }
}
