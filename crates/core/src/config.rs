//! Hardware configurations for FINGERS PEs and chips.

use fingers_setops::{SegmentedConfig, LONG_SEGMENT_LEN, SHORT_SEGMENT_LEN};
use fingers_sim::{MemoryConfig, MEM_SCALE};
use serde::{Deserialize, Serialize};

/// Configuration of one FINGERS processing element (paper Section 5:
/// 24 IUs, 12 task dividers, 32 kB private cache, two 8 kB stream buffers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeConfig {
    /// Number of intersect units.
    pub num_ius: usize,
    /// Number of task dividers.
    pub num_dividers: usize,
    /// Private cache capacity in bytes (paper-scale; scaled by
    /// [`MEM_SCALE`] inside the simulator like the shared cache).
    pub private_cache_bytes: u64,
    /// Total stream-buffer capacity in bytes (two 8 kB buffers by default).
    pub stream_buffer_bytes: u64,
    /// Long-segment length `s_l`.
    pub long_segment_len: usize,
    /// Short-segment length `s_s`.
    pub short_segment_len: usize,
    /// Task-divider max-load threshold (short segments per IU workload).
    pub max_load: usize,
    /// Head capacity of one task divider for the long set (15 heads ↔
    /// neighbor lists up to 240 vertices per divider pass).
    pub divider_long_heads: usize,
    /// Head capacity of one task divider for the short set (24 heads).
    pub divider_short_heads: usize,
    /// Whether the pseudo-DFS order (branch-level parallelism) is enabled;
    /// disabling it reverts to strict DFS with group size 1 and no fetch
    /// overlap (the Figure 11 ablation).
    pub pseudo_dfs: bool,
    /// Upper bound on the pseudo-DFS task-group size.
    pub max_group_size: usize,
    /// Fixed per-task macro-pipeline overhead in cycles (stage latencies).
    pub pipeline_overhead: u64,
    /// Event-trace capacity (0 disables tracing; tracing never affects
    /// simulated timing).
    pub trace_capacity: usize,
}

impl Default for PeConfig {
    fn default() -> Self {
        Self {
            num_ius: 24,
            num_dividers: 12,
            private_cache_bytes: 32 * 1024,
            stream_buffer_bytes: 2 * 8 * 1024,
            long_segment_len: LONG_SEGMENT_LEN,
            short_segment_len: SHORT_SEGMENT_LEN,
            max_load: 2,
            divider_long_heads: 15,
            divider_short_heads: 24,
            pseudo_dfs: true,
            max_group_size: 16,
            pipeline_overhead: 4,
            trace_capacity: 0,
        }
    }
}

impl PeConfig {
    /// The segmented-pipeline view of this configuration.
    pub fn segmented(&self) -> SegmentedConfig {
        SegmentedConfig {
            long_segment_len: self.long_segment_len,
            short_segment_len: self.short_segment_len,
            max_load: self.max_load,
        }
    }

    /// An iso-area variant with `n` IUs: the product `num_ius ×
    /// long_segment_len` is held at the default `24 × 16 = 384`
    /// (Figure 12's scaling rule), because the stream-buffer area per IU is
    /// proportional to the segment length. The max-load threshold scales
    /// with the segment length so that one IU pass keeps the default ratio
    /// of short to long elements (a long segment is streamed once against a
    /// proportionally sized run of short segments).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn iso_area_ius(n: usize) -> Self {
        assert!(n > 0, "need at least one IU");
        let product = 24 * LONG_SEGMENT_LEN;
        let long_segment_len = (product / n).max(1);
        Self {
            num_ius: n,
            long_segment_len,
            // Default geometry: s_l = 16 with max_load 2 → one short
            // element per two long elements; keep that ratio.
            max_load: (long_segment_len / 8).max(1),
            ..Self::default()
        }
    }

    /// An unlimited-area variant with `n` IUs keeping the default segment
    /// length (Figure 12's `tt-unlimited` series).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn unlimited_area_ius(n: usize) -> Self {
        assert!(n > 0, "need at least one IU");
        Self {
            num_ius: n,
            ..Self::default()
        }
    }

    /// Private cache capacity as simulated (scaled like the graphs).
    pub fn scaled_private_cache_bytes(&self) -> u64 {
        (self.private_cache_bytes / MEM_SCALE).max(1024)
    }
}

/// Configuration of a full FINGERS chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Number of PEs (20 by default: iso-area with 40 FlexMiner PEs).
    pub num_pes: usize,
    /// Per-PE configuration.
    pub pe: PeConfig,
    /// Memory-system configuration.
    pub memory: MemoryConfig,
    /// NoC hop latency in cycles (Figure 5's mesh between PEs and the
    /// shared cache; each PE's distance to the cache port adds to its
    /// shared-cache latency).
    pub noc_per_hop: u64,
    /// NoC injection/ejection overhead in cycles.
    pub noc_base: u64,
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self {
            num_pes: 20,
            pe: PeConfig::default(),
            memory: MemoryConfig::paper_default(),
            noc_per_hop: 1,
            noc_base: 2,
        }
    }
}

impl ChipConfig {
    /// A single-PE chip (Section 6.2's comparison unit).
    pub fn single_pe() -> Self {
        Self {
            num_pes: 1,
            ..Self::default()
        }
    }

    /// Sets the shared-cache capacity in paper-scale MB (Figure 13 sweep).
    pub fn with_shared_cache_mb(mut self, mb: f64) -> Self {
        self.memory = MemoryConfig::with_shared_cache_mb(mb);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_section_5() {
        let c = PeConfig::default();
        assert_eq!(c.num_ius, 24);
        assert_eq!(c.num_dividers, 12);
        assert_eq!(c.private_cache_bytes, 32 * 1024);
        assert_eq!(c.stream_buffer_bytes, 16 * 1024);
        assert_eq!(c.long_segment_len, 16);
        assert_eq!(c.short_segment_len, 4);
        let chip = ChipConfig::default();
        assert_eq!(chip.num_pes, 20);
    }

    #[test]
    fn iso_area_preserves_iu_times_segment_product() {
        for n in [1, 2, 4, 8, 16, 24, 48] {
            let c = PeConfig::iso_area_ius(n);
            assert_eq!(c.num_ius * c.long_segment_len, 384, "n={n}");
        }
    }

    #[test]
    fn unlimited_area_keeps_segment_length() {
        let c = PeConfig::unlimited_area_ius(48);
        assert_eq!(c.num_ius, 48);
        assert_eq!(c.long_segment_len, 16);
    }

    #[test]
    fn cache_sweep_builder() {
        let chip = ChipConfig::default().with_shared_cache_mb(16.0);
        assert_eq!(
            chip.memory.shared_cache_bytes,
            16 * 1024 * 1024 / fingers_sim::MEM_SCALE
        );
    }
}
