//! FINGERS: a graph mining accelerator exploiting fine-grained parallelism.
//!
//! This crate is the paper's primary contribution, reproduced as a
//! functional-plus-timing model:
//!
//! - [`config`]: hardware configurations (24 IUs, 12 task dividers, 32 kB
//!   private cache, 2×8 kB stream buffers per PE; 20 PEs per chip).
//! - [`area`]: the Table 2 area/power model and the iso-area configuration
//!   solvers used throughout the evaluation.
//! - [`pe`]: the FINGERS processing element — the 5-stage macro pipeline of
//!   Section 4 with branch-level (pseudo-DFS task groups), set-level
//!   (parallel schedule ops sharing the streamed neighbor list) and
//!   segment-level (task dividers + parallel IUs + bitvector result
//!   collection) parallelism.
//! - [`chip`]: the multi-PE chip with the global root scheduler, plus the
//!   [`PeModel`](chip::PeModel) trait the FlexMiner baseline also
//!   implements so both designs run on the identical memory substrate —
//!   mirroring the paper's methodology ("The same simulator is also used to
//!   reproduce the results for our baseline FlexMiner").
//! - [`stats`]: per-IU activity and balance statistics (Table 3
//!   definitions), embedding counts, and chip-level reports.
//!
//! Functional execution is exact: every simulation returns the embedding
//! counts, which integration tests require to equal the software miner's.
//!
//! # Example
//!
//! ```
//! use fingers_core::chip::simulate_fingers;
//! use fingers_core::config::ChipConfig;
//! use fingers_graph::GraphBuilder;
//! use fingers_pattern::benchmarks::Benchmark;
//!
//! let g = GraphBuilder::new()
//!     .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
//!     .build();
//! let report = simulate_fingers(&g, &Benchmark::Tc.plan(), &ChipConfig::single_pe());
//! assert_eq!(report.total_embeddings(), 4); // K4 has 4 triangles
//! assert!(report.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod chip;
pub mod config;
pub mod pe;
pub mod stats;
pub mod trace;

mod frame;
