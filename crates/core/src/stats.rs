//! Execution statistics: IU activity, load balance, and chip reports.

use fingers_sim::{CacheStats, Cycle};
use serde::{Deserialize, Serialize};

/// Statistics of one PE over a whole simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PeStats {
    /// Local cycle count at the end of the simulation.
    pub cycles: Cycle,
    /// Sum over IUs of their busy cycles.
    pub iu_busy_cycles: u64,
    /// Number of IUs in the PE (denominator of the active rate).
    pub num_ius: usize,
    /// Tasks executed.
    pub tasks: u64,
    /// Set operations executed.
    pub set_ops: u64,
    /// IU workloads issued.
    pub workloads: u64,
    /// Cycles spent stalled waiting for memory (not overlapped).
    pub stall_cycles: Cycle,
    /// Bytes of candidate sets spilled from the private cache.
    pub spill_bytes: u64,
    /// Pseudo-DFS task groups formed.
    pub groups: u64,
    /// Total tasks across those groups (`group_tasks_sum / groups` is the
    /// realized branch-level parallelism degree).
    pub group_tasks_sum: u64,
    /// Per-load balance accumulators: Σ (load busy) and
    /// Σ (load makespan × IUs used), per the Table 3 definition.
    pub balance_busy: u64,
    /// See [`Self::balance_busy`].
    pub balance_span: u64,
    /// Embeddings found, per pattern of the multi-plan.
    pub embeddings: Vec<u64>,
}

impl PeStats {
    /// Table 3's *active rate*: the fraction of PE-cycles during which
    /// workloads are assigned to IUs (`Σ busy / (cycles × #IUs)`).
    pub fn active_rate(&self) -> f64 {
        if self.cycles == 0 || self.num_ius == 0 {
            0.0
        } else {
            self.iu_busy_cycles as f64 / (self.cycles as f64 * self.num_ius as f64)
        }
    }

    /// Realized branch-level parallelism: mean tasks per pseudo-DFS group.
    pub fn avg_group_size(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.group_tasks_sum as f64 / self.groups as f64
        }
    }

    /// Realized set-level parallelism: mean scheduled set operations per
    /// task (after dedup of identical computations).
    pub fn avg_ops_per_task(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.set_ops as f64 / self.tasks as f64
        }
    }

    /// Realized segment-level parallelism: mean IU workloads per set
    /// operation.
    pub fn avg_workloads_per_op(&self) -> f64 {
        if self.set_ops == 0 {
            0.0
        } else {
            self.workloads as f64 / self.set_ops as f64
        }
    }

    /// Table 3's *balance rate*: within the IU subsets executing each
    /// compute load, the busy fraction (`Σ busy / Σ (makespan × subset)`),
    /// aggregated over all loads.
    pub fn balance_rate(&self) -> f64 {
        if self.balance_span == 0 {
            0.0
        } else {
            self.balance_busy as f64 / self.balance_span as f64
        }
    }
}

/// Report of one full chip simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipReport {
    /// End-to-end execution time: the maximum PE finish time.
    pub cycles: Cycle,
    /// Per-PE statistics.
    pub pes: Vec<PeStats>,
    /// Shared-cache statistics (Figure 13's miss rates).
    pub shared_cache: CacheStats,
    /// Total bytes fetched from DRAM.
    pub dram_bytes: u64,
    /// Embeddings per pattern, summed over PEs.
    pub embeddings: Vec<u64>,
}

impl ChipReport {
    /// Total embeddings across patterns.
    pub fn total_embeddings(&self) -> u64 {
        self.embeddings.iter().sum()
    }

    /// Aggregate active rate over all PEs (busy-IU-cycle weighted).
    pub fn active_rate(&self) -> f64 {
        let busy: u64 = self.pes.iter().map(|p| p.iu_busy_cycles).sum();
        let denom: f64 = self
            .pes
            .iter()
            .map(|p| self.cycles as f64 * p.num_ius as f64)
            .sum();
        if denom == 0.0 {
            0.0
        } else {
            busy as f64 / denom
        }
    }

    /// Aggregate balance rate over all PEs.
    pub fn balance_rate(&self) -> f64 {
        let busy: u64 = self.pes.iter().map(|p| p.balance_busy).sum();
        let span: u64 = self.pes.iter().map(|p| p.balance_span).sum();
        if span == 0 {
            0.0
        } else {
            busy as f64 / span as f64
        }
    }

    /// Total tasks executed.
    pub fn tasks(&self) -> u64 {
        self.pes.iter().map(|p| p.tasks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_rate_matches_paper_example() {
        // "assuming 4 IUs, and only 2 IUs are assigned a load executed for
        // 10 cycles. Then in a 20-cycle period, the active rate is 25%."
        let s = PeStats {
            cycles: 20,
            iu_busy_cycles: 20, // 2 IUs × 10 cycles
            num_ius: 4,
            ..Default::default()
        };
        assert!((s.active_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn balance_rate_matches_paper_example() {
        // "If in those 10 cycles, one IU is fully used but the other is only
        // active for 5 cycles, then the balance rate is only 75%."
        let s = PeStats {
            balance_busy: 15,
            balance_span: 20, // makespan 10 × 2 IUs
            ..Default::default()
        };
        assert!((s.balance_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = PeStats::default();
        assert_eq!(s.active_rate(), 0.0);
        assert_eq!(s.balance_rate(), 0.0);
    }

    #[test]
    fn chip_report_totals() {
        let r = ChipReport {
            cycles: 100,
            pes: vec![
                PeStats {
                    cycles: 100,
                    iu_busy_cycles: 50,
                    num_ius: 2,
                    tasks: 3,
                    ..Default::default()
                },
                PeStats {
                    cycles: 80,
                    iu_busy_cycles: 30,
                    num_ius: 2,
                    tasks: 4,
                    ..Default::default()
                },
            ],
            shared_cache: CacheStats::default(),
            dram_bytes: 0,
            embeddings: vec![5, 7],
        };
        assert_eq!(r.total_embeddings(), 12);
        assert_eq!(r.tasks(), 7);
        assert!((r.active_rate() - 80.0 / 400.0).abs() < 1e-12);
    }
}
