//! Multi-PE chip: global root scheduler and the shared simulation driver.
//!
//! The chip-level architecture (paper Figure 5) is shared between FINGERS
//! and the FlexMiner baseline: a global scheduler assigns search trees
//! rooted at different vertices to PEs, which access a shared cache and
//! DRAM. The [`PeModel`] trait abstracts the per-design PE internals so the
//! identical driver and memory substrate run both — the paper's own
//! methodology ("The same simulator is also used to reproduce the results
//! for our baseline FlexMiner").

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fingers_graph::{CsrGraph, VertexId};
use fingers_pattern::MultiPlan;
use fingers_sim::{Cycle, MemorySystem};
use serde::{Deserialize, Serialize};

use crate::config::ChipConfig;
use crate::pe::FingersPe;
use crate::stats::{ChipReport, PeStats};

/// Order in which the global scheduler hands out root vertices.
///
/// The paper's scheduler simply walks the vertex IDs; Section 6.3 suggests
/// scheduling *nearby* roots concurrently so PEs share shared-cache
/// contents ("One orthogonal way to improve memory access performance…").
/// These policies make that future-work knob explorable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RootSchedule {
    /// Ascending vertex IDs (the paper's behaviour). With the dynamic
    /// scheduler this already places consecutive — typically nearby —
    /// roots on different PEs at the same time.
    #[default]
    Sequential,
    /// Stride the ID space so concurrently mined roots are far apart
    /// (an adversarial locality order, for comparison).
    Strided,
    /// Highest-degree roots first: front-loads the heaviest trees so the
    /// tail of the schedule has small work items for load balancing.
    DegreeDescending,
}

/// Materializes the root order for `schedule` over `graph`.
pub fn root_order(graph: &CsrGraph, schedule: RootSchedule) -> Vec<VertexId> {
    let n = graph.vertex_count() as VertexId;
    match schedule {
        RootSchedule::Sequential => (0..n).collect(),
        RootSchedule::Strided => {
            // A fixed large stride co-schedules distant IDs.
            let stride = (n / 64).max(1);
            let mut order = Vec::with_capacity(n as usize);
            for offset in 0..stride {
                let mut v = offset;
                while v < n {
                    order.push(v);
                    v += stride;
                }
            }
            order
        }
        RootSchedule::DegreeDescending => {
            let mut order: Vec<VertexId> = (0..n).collect();
            order.sort_by_key(|&v| Reverse(graph.degree(v)));
            order
        }
    }
}

/// A simulated processing element drivable by [`run_chip`].
///
/// Implementations keep a local clock; `step` executes one task and
/// advances it. The driver interleaves PEs in global-time order so shared
/// cache and DRAM contention are modeled across PEs.
pub trait PeModel {
    /// The PE's local clock.
    fn now(&self) -> Cycle;
    /// Advances the local clock (used when a PE idles waiting for work).
    fn set_now(&mut self, c: Cycle);
    /// Whether the PE still has queued tasks.
    fn has_work(&self) -> bool;
    /// Enqueues the search tree rooted at `root`.
    fn start_tree(&mut self, root: VertexId);
    /// Executes one task (or scheduling action), advancing the clock.
    fn step(&mut self, mem: &mut MemorySystem);
    /// Extracts the accumulated statistics.
    fn take_stats(&mut self) -> PeStats;
}

/// Drives `pes` over all root vertices of `graph` with dynamic root
/// scheduling: the idlest PE (smallest local clock) gets the next root —
/// the global scheduler of Figure 5. Returns the end-to-end report.
pub fn run_chip<P: PeModel>(
    mut pes: Vec<P>,
    mem: &mut MemorySystem,
    graph: &CsrGraph,
) -> ChipReport {
    run_chip_with_roots(
        pes.as_mut_slice(),
        mem,
        root_order(graph, RootSchedule::Sequential),
    )
}

/// [`run_chip`] with an explicit root order (see [`RootSchedule`]).
pub fn run_chip_with_roots<P: PeModel>(
    pes: &mut [P],
    mem: &mut MemorySystem,
    roots: Vec<VertexId>,
) -> ChipReport {
    let mut heap: BinaryHeap<Reverse<(Cycle, usize)>> =
        (0..pes.len()).map(|i| Reverse((0, i))).collect();
    let mut roots = roots.into_iter();
    let mut active = pes.len();

    while active > 0 {
        // §11: `active` counts heap entries not yet retired, so a non-zero
        // count means the heap is non-empty; divergence is a scheduler bug.
        #[allow(clippy::expect_used)]
        let Reverse((_, idx)) = heap.pop().expect("active PEs remain");
        let pe = &mut pes[idx];
        if pe.has_work() {
            pe.step(mem);
            heap.push(Reverse((pe.now(), idx)));
        } else if let Some(root) = roots.next() {
            pe.start_tree(root);
            heap.push(Reverse((pe.now(), idx)));
        } else {
            active -= 1;
        }
    }

    let pe_stats: Vec<PeStats> = pes.iter_mut().map(PeModel::take_stats).collect();
    let cycles = pe_stats.iter().map(|s| s.cycles).max().unwrap_or(0);
    let patterns = pe_stats
        .first()
        .map(|s| s.embeddings.len())
        .unwrap_or_default();
    let mut embeddings = vec![0u64; patterns];
    for s in &pe_stats {
        for (e, &c) in embeddings.iter_mut().zip(&s.embeddings) {
            *e += c;
        }
    }
    ChipReport {
        cycles,
        pes: pe_stats,
        shared_cache: mem.cache_stats(),
        dram_bytes: mem.dram_bytes(),
        embeddings,
    }
}

/// Simulates a FINGERS chip executing `multi` over `graph`.
pub fn simulate_fingers(graph: &CsrGraph, multi: &MultiPlan, config: &ChipConfig) -> ChipReport {
    simulate_fingers_scheduled(graph, multi, config, RootSchedule::Sequential)
}

/// [`simulate_fingers`] with an explicit root-scheduling policy.
pub fn simulate_fingers_scheduled(
    graph: &CsrGraph,
    multi: &MultiPlan,
    config: &ChipConfig,
    schedule: RootSchedule,
) -> ChipReport {
    let mut mem = MemorySystem::new(config.memory);
    let noc = fingers_sim::MeshNoc::for_pes(config.num_pes, config.noc_per_hop, config.noc_base);
    let mut pes: Vec<FingersPe> = (0..config.num_pes)
        .map(|i| {
            let mut pe = FingersPe::new(graph, multi, config.pe.clone());
            pe.set_noc_latency(noc.pe_latency(i));
            pe
        })
        .collect();
    run_chip_with_roots(pes.as_mut_slice(), &mut mem, root_order(graph, schedule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PeConfig;
    use fingers_graph::gen::erdos_renyi;
    use fingers_graph::GraphBuilder;
    use fingers_mining::count_benchmark;
    use fingers_pattern::benchmarks::Benchmark;

    #[test]
    fn single_pe_chip_counts_k4_triangles() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .build();
        let r = simulate_fingers(&g, &Benchmark::Tc.plan(), &ChipConfig::single_pe());
        assert_eq!(r.embeddings, vec![4]);
        assert!(r.cycles > 0);
    }

    /// The load-bearing validation: the accelerator's functional results
    /// equal the software miner's for every benchmark on a random graph,
    /// with multiple PEs interleaving.
    #[test]
    fn chip_counts_match_software_miner() {
        let g = erdos_renyi(60, 240, 11);
        for bench in Benchmark::ALL {
            let expected = count_benchmark(&g, bench);
            let cfg = ChipConfig {
                num_pes: 4,
                ..ChipConfig::default()
            };
            let r = simulate_fingers(&g, &bench.plan(), &cfg);
            assert_eq!(r.embeddings, expected.per_pattern, "{bench}");
        }
    }

    #[test]
    fn more_pes_reduce_cycles() {
        let g = erdos_renyi(120, 700, 3);
        let multi = Benchmark::Tc.plan();
        let one = simulate_fingers(
            &g,
            &multi,
            &ChipConfig {
                num_pes: 1,
                ..ChipConfig::default()
            },
        );
        let eight = simulate_fingers(
            &g,
            &multi,
            &ChipConfig {
                num_pes: 8,
                ..ChipConfig::default()
            },
        );
        assert!(
            eight.cycles * 2 < one.cycles,
            "8 PEs {} vs 1 PE {}",
            eight.cycles,
            one.cycles
        );
        assert_eq!(eight.embeddings, one.embeddings);
    }

    #[test]
    fn pseudo_dfs_ablation_preserves_counts() {
        let g = erdos_renyi(50, 200, 7);
        let multi = Benchmark::Cyc.plan();
        let on = simulate_fingers(&g, &multi, &ChipConfig::single_pe());
        let mut cfg = ChipConfig::single_pe();
        cfg.pe = PeConfig {
            pseudo_dfs: false,
            ..PeConfig::default()
        };
        let off = simulate_fingers(&g, &multi, &cfg);
        assert_eq!(on.embeddings, off.embeddings);
    }

    #[test]
    fn empty_graph_finishes() {
        let g = GraphBuilder::new().vertex_count(3).build();
        let r = simulate_fingers(&g, &Benchmark::Tc.plan(), &ChipConfig::single_pe());
        assert_eq!(r.total_embeddings(), 0);
    }

    #[test]
    fn root_orders_are_permutations() {
        let g = erdos_renyi(100, 300, 2);
        for schedule in [
            RootSchedule::Sequential,
            RootSchedule::Strided,
            RootSchedule::DegreeDescending,
        ] {
            let mut order = root_order(&g, schedule);
            order.sort_unstable();
            let expected: Vec<_> = g.vertices().collect();
            assert_eq!(order, expected, "{schedule:?}");
        }
    }

    #[test]
    fn degree_descending_front_loads_hubs() {
        let g = erdos_renyi(50, 150, 4);
        let order = root_order(&g, RootSchedule::DegreeDescending);
        for w in order.windows(2) {
            assert!(g.degree(w[0]) >= g.degree(w[1]));
        }
    }

    #[test]
    fn root_schedule_never_changes_counts() {
        let g = erdos_renyi(60, 240, 8);
        let multi = Benchmark::Tt.plan();
        let cfg = ChipConfig {
            num_pes: 3,
            ..ChipConfig::default()
        };
        let base = simulate_fingers(&g, &multi, &cfg);
        for schedule in [RootSchedule::Strided, RootSchedule::DegreeDescending] {
            let r = simulate_fingers_scheduled(&g, &multi, &cfg, schedule);
            assert_eq!(r.embeddings, base.embeddings, "{schedule:?}");
        }
    }
}
