//! Area, power, and frequency model (paper Section 6.1 / Table 2).
//!
//! The original work synthesizes the PE in 28 nm with Synopsys DC and
//! models SRAM with CACTI. We substitute an analytic model seeded with the
//! paper's published per-component results, which is sufficient for the
//! only purposes area serves in the evaluation: (a) reporting Table 2, and
//! (b) solving the iso-area configurations (20 FINGERS PEs vs 40 FlexMiner
//! PEs; the `#IUs × s_l = const` sweep of Figure 12).

use serde::{Deserialize, Serialize};

use crate::config::PeConfig;

/// Area of one intersect unit in 28 nm mm² ("each IU takes only
/// 0.005 mm²", Section 6.1; 24 of them total 0.115 mm² in Table 2).
pub const IU_AREA_MM2: f64 = 0.115 / 24.0;

/// Area of one task divider in 28 nm mm² (12 total 0.069 mm² in Table 2).
pub const DIVIDER_AREA_MM2: f64 = 0.069 / 12.0;

/// Stream-buffer area per kB in 28 nm mm² (two 8 kB buffers total
/// 0.214 mm²).
pub const STREAM_BUFFER_MM2_PER_KB: f64 = 0.214 / 16.0;

/// Private-cache area per kB in 28 nm mm² (32 kB costs 0.118 mm²).
pub const PRIVATE_CACHE_MM2_PER_KB: f64 = 0.118 / 32.0;

/// Fixed "others" area (control logic, NoC interface, data fetchers) in
/// 28 nm mm², conservatively scaled from FlexMiner as in the paper.
pub const OTHERS_AREA_MM2: f64 = 0.418;

/// FlexMiner's published PE area (mm²) in its native 15 nm node.
pub const FLEXMINER_PE_AREA_MM2_15NM: f64 = 0.18;

/// Linear-dimension-squared scaling factor from 28 nm to 15 nm.
pub const SCALE_28_TO_15: f64 = (15.0 * 15.0) / (28.0 * 28.0);

/// Compute-logic power of one default PE in mW (Section 6.1).
pub const PE_COMPUTE_POWER_MW: f64 = 98.5;

/// Cache power of one default PE in mW (Section 6.1).
pub const PE_CACHE_POWER_MW: f64 = 85.6;

/// Synthesized clock frequency in 28 nm (Section 6.1).
pub const PE_FREQUENCY_GHZ: f64 = 1.0;

/// Per-component area breakdown of one PE (Table 2's rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Intersect units.
    pub ius_mm2: f64,
    /// Task dividers.
    pub dividers_mm2: f64,
    /// Stream buffers.
    pub stream_buffers_mm2: f64,
    /// Private cache.
    pub private_cache_mm2: f64,
    /// Control logic, NoC interface, data fetchers.
    pub others_mm2: f64,
}

impl AreaBreakdown {
    /// Total PE area in 28 nm mm².
    pub fn total_mm2(&self) -> f64 {
        self.ius_mm2
            + self.dividers_mm2
            + self.stream_buffers_mm2
            + self.private_cache_mm2
            + self.others_mm2
    }

    /// Fraction of the total taken by each component, in Table 2 row order.
    pub fn percentages(&self) -> [f64; 5] {
        let t = self.total_mm2();
        [
            self.ius_mm2 / t,
            self.dividers_mm2 / t,
            self.stream_buffers_mm2 / t,
            self.private_cache_mm2 / t,
            self.others_mm2 / t,
        ]
    }
}

/// Computes the area breakdown of a PE configuration in 28 nm.
///
/// Stream-buffer area scales with `num_ius × long_segment_len` (the buffers
/// stage one long segment per IU), which is what makes Figure 12's
/// `#IUs × s_l = const` sweep iso-area.
pub fn pe_area(config: &PeConfig) -> AreaBreakdown {
    let seg_product = (config.num_ius * config.long_segment_len) as f64;
    let default_product = (24 * 16) as f64;
    AreaBreakdown {
        ius_mm2: IU_AREA_MM2 * config.num_ius as f64,
        dividers_mm2: DIVIDER_AREA_MM2 * config.num_dividers as f64,
        stream_buffers_mm2: STREAM_BUFFER_MM2_PER_KB
            * (config.stream_buffer_bytes as f64 / 1024.0)
            * (seg_product / default_product),
        private_cache_mm2: PRIVATE_CACHE_MM2_PER_KB * (config.private_cache_bytes as f64 / 1024.0),
        others_mm2: OTHERS_AREA_MM2,
    }
}

/// A PE's area scaled to 15 nm (for comparison against FlexMiner's 0.18 mm²).
pub fn pe_area_mm2_15nm(config: &PeConfig) -> f64 {
    pe_area(config).total_mm2() * SCALE_28_TO_15
}

/// The iso-area chip comparison of Section 6.3: a FINGERS PE is less than
/// twice a FlexMiner PE, so 20 FINGERS PEs are compared against FlexMiner's
/// largest 40-PE configuration. Returns `(fingers_pes, flexminer_pes)`.
pub fn iso_area_pe_counts() -> (usize, usize) {
    (20, 40)
}

/// Total chip power estimate in watts for `num_pes` default PEs
/// ("the total power of FINGERS would be just a few watts").
pub fn chip_power_w(num_pes: usize) -> f64 {
    num_pes as f64 * (PE_COMPUTE_POWER_MW + PE_CACHE_POWER_MW) / 1000.0
}

// ----- energy model (extension beyond the paper, which reports power
// only; constants are typical 28 nm figures) -----

/// Dynamic energy per IU comparator cycle (one element), in picojoules.
pub const IU_ENERGY_PJ_PER_CYCLE: f64 = 0.6;

/// Dynamic energy per task-divider head comparison, in picojoules.
pub const DIVIDER_ENERGY_PJ_PER_CYCLE: f64 = 0.3;

/// Dynamic energy per byte moved through the shared cache, in picojoules.
pub const SHARED_CACHE_ENERGY_PJ_PER_BYTE: f64 = 1.2;

/// Dynamic energy per byte fetched from DRAM, in picojoules (DDR4 class).
pub const DRAM_ENERGY_PJ_PER_BYTE: f64 = 20.0;

/// Energy estimate for one chip execution, in microjoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyEstimate {
    /// IU + divider dynamic energy.
    pub compute_uj: f64,
    /// Shared-cache traffic energy.
    pub cache_uj: f64,
    /// DRAM traffic energy.
    pub dram_uj: f64,
    /// Leakage/static energy over the execution (chip power × time).
    pub static_uj: f64,
}

impl EnergyEstimate {
    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.compute_uj + self.cache_uj + self.dram_uj + self.static_uj
    }
}

/// Estimates the energy of a finished chip execution from its report.
///
/// An extension beyond the paper (Section 6.1 reports only power):
/// dynamic energy from the recorded activity counters plus static energy
/// over the measured runtime at [`PE_FREQUENCY_GHZ`].
pub fn energy_estimate(report: &crate::stats::ChipReport, num_pes: usize) -> EnergyEstimate {
    let iu_cycles: u64 = report.pes.iter().map(|p| p.iu_busy_cycles).sum();
    let divider_proxy: u64 = report.pes.iter().map(|p| p.workloads).sum();
    let cache_bytes = report.shared_cache.accesses * 64;
    let compute_pj = iu_cycles as f64 * IU_ENERGY_PJ_PER_CYCLE
        + divider_proxy as f64 * DIVIDER_ENERGY_PJ_PER_CYCLE;
    let cache_pj = cache_bytes as f64 * SHARED_CACHE_ENERGY_PJ_PER_BYTE;
    let dram_pj = report.dram_bytes as f64 * DRAM_ENERGY_PJ_PER_BYTE;
    let seconds = report.cycles as f64 / (PE_FREQUENCY_GHZ * 1e9);
    let static_uj = chip_power_w(num_pes) * seconds * 1e6;
    EnergyEstimate {
        compute_uj: compute_pj / 1e6,
        cache_uj: cache_pj / 1e6,
        dram_uj: dram_pj / 1e6,
        static_uj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pe_matches_table_2() {
        let a = pe_area(&PeConfig::default());
        assert!((a.ius_mm2 - 0.115).abs() < 1e-9);
        assert!((a.dividers_mm2 - 0.069).abs() < 1e-9);
        assert!((a.stream_buffers_mm2 - 0.214).abs() < 1e-9);
        assert!((a.private_cache_mm2 - 0.118).abs() < 1e-9);
        assert!((a.others_mm2 - 0.418).abs() < 1e-9);
        // "PE Total ≈ 0.934 mm²"
        assert!((a.total_mm2() - 0.934).abs() < 1e-6);
    }

    #[test]
    fn table_2_percentages() {
        let p = pe_area(&PeConfig::default()).percentages();
        // Table 2: 12.3%, 7.4%, 22.9%, 12.6%, 44.8%.
        assert!((p[0] - 0.123).abs() < 0.002);
        assert!((p[1] - 0.074).abs() < 0.002);
        assert!((p[2] - 0.229).abs() < 0.002);
        assert!((p[3] - 0.126).abs() < 0.002);
        assert!((p[4] - 0.448).abs() < 0.002);
    }

    #[test]
    fn fingers_pe_is_less_than_twice_flexminer_in_15nm() {
        // Section 6.1: "the FINGERS PE (0.26 mm² in 15 nm) is less than
        // twice as large as the FlexMiner PE".
        let f = pe_area_mm2_15nm(&PeConfig::default());
        assert!((f - 0.268).abs() < 0.01, "got {f}");
        assert!(f < 2.0 * FLEXMINER_PE_AREA_MM2_15NM);
    }

    #[test]
    fn iso_area_iu_sweep_has_constant_area() {
        let base = pe_area(&PeConfig::iso_area_ius(24)).total_mm2();
        for n in [1, 2, 4, 8, 16, 48] {
            let a = pe_area(&PeConfig::iso_area_ius(n)).total_mm2();
            // IU count changes IU area slightly; buffers dominate and stay
            // constant. Allow the small IU-count residual.
            assert!(
                (a - base).abs() < 0.12,
                "iso-area violated at {n} IUs: {a} vs {base}"
            );
        }
    }

    #[test]
    fn unlimited_area_grows_with_ius() {
        let a24 = pe_area(&PeConfig::unlimited_area_ius(24)).total_mm2();
        let a48 = pe_area(&PeConfig::unlimited_area_ius(48)).total_mm2();
        assert!(a48 > a24);
    }

    #[test]
    fn chip_power_is_a_few_watts() {
        let w = chip_power_w(20);
        assert!(w > 1.0 && w < 10.0, "got {w} W");
    }

    #[test]
    fn energy_estimate_accumulates_components() {
        use crate::stats::{ChipReport, PeStats};
        let report = ChipReport {
            cycles: 1_000_000, // 1 ms at 1 GHz
            pes: vec![PeStats {
                cycles: 1_000_000,
                iu_busy_cycles: 500_000,
                num_ius: 24,
                workloads: 10_000,
                ..PeStats::default()
            }],
            shared_cache: fingers_sim::CacheStats {
                accesses: 100_000,
                misses: 10_000,
            },
            dram_bytes: 640_000,
            embeddings: vec![1],
        };
        let e = energy_estimate(&report, 1);
        assert!(e.compute_uj > 0.0);
        assert!(e.cache_uj > 0.0);
        assert!(e.dram_uj > 0.0);
        // 1 ms × ~184 mW ≈ 184 µJ of static energy.
        assert!((e.static_uj - 184.1).abs() < 1.0, "static {}", e.static_uj);
        assert!(e.total_uj() > e.static_uj);
    }

    #[test]
    fn energy_scales_with_activity() {
        use crate::stats::{ChipReport, PeStats};
        let mk = |busy: u64| ChipReport {
            cycles: 100_000,
            pes: vec![PeStats {
                cycles: 100_000,
                iu_busy_cycles: busy,
                num_ius: 24,
                ..PeStats::default()
            }],
            shared_cache: fingers_sim::CacheStats::default(),
            dram_bytes: 0,
            embeddings: vec![],
        };
        let low = energy_estimate(&mk(1_000), 1);
        let high = energy_estimate(&mk(100_000), 1);
        assert!(high.total_uj() > low.total_uj());
        assert_eq!(low.static_uj, high.static_uj);
    }
}
