//! The FINGERS processing element (paper Section 4).
//!
//! Each PE executes whole search trees, decomposed into *tasks* (extend the
//! partial embedding by one vertex). A task runs the compiled schedule ops
//! for its level with **set-level parallelism** (all ops issue together,
//! sharing the one streamed neighbor list) and **segment-level parallelism**
//! (each op is split by the task dividers into per-long-segment IU
//! workloads, balanced with the max-load threshold, and aggregated through
//! the bitvector result collector). **Branch-level parallelism** comes from
//! the pseudo-DFS order: sibling tasks form groups whose neighbor-list
//! fetches are issued together, so misses overlap with the compute of the
//! siblings that hit.
//!
//! Functional execution is exact (delegated to `fingers_setops::segmented`),
//! so every simulation doubles as a correctness check against the software
//! miner.

use std::collections::HashMap;
use std::rc::Rc;

use fingers_graph::{CsrGraph, VertexId};
use fingers_pattern::{ExecutionPlan, MultiPlan, PlanOp};
use fingers_setops::{segmented, Elem, SetOpKind};
use fingers_sim::{Cycle, MemorySystem};

use crate::chip::PeModel;
use crate::config::PeConfig;
use crate::frame::Frame;
use crate::stats::PeStats;
use crate::trace::{Trace, TraceEvent};

/// Memoization key for identical in-task computations: operand
/// identities, operation discriminant, and symmetry-breaking clip bound.
type MemoKey = (usize, usize, u8, Option<Elem>);
type Memo = HashMap<MemoKey, Rc<Vec<Elem>>>;

/// One task: a newly matched vertex at `level` of some plan's search tree.
#[derive(Debug, Clone)]
struct Task {
    plan_idx: usize,
    level: usize,
    /// Mapped input vertices for levels `0..=level`.
    mapped: Rc<Vec<VertexId>>,
    /// Candidate sets materialized by ancestor tasks.
    frame: Option<Rc<Frame>>,
}

/// A pseudo-DFS task group: siblings popped (and fetched) together.
#[derive(Debug)]
struct Group {
    tasks: Vec<Task>,
    /// `(first_ready, completion)` of each task's neighbor-list fetch,
    /// parallel to `tasks`; filled on first touch.
    ready: Vec<(Cycle, Cycle)>,
    fetched: bool,
    next: usize,
    /// Private-cache bytes to release when this group completes (attached
    /// to the last child group of a spawning task).
    release_bytes: u64,
    /// Earliest cycle the group may start: child tasks depend on the parent
    /// task's collected results.
    not_before: Cycle,
}

/// The FINGERS PE simulation state. Implements [`PeModel`] so it can be
/// driven by the shared chip driver.
#[derive(Debug)]
pub struct FingersPe<'g> {
    graph: &'g CsrGraph,
    plans: Vec<&'g ExecutionPlan>,
    cfg: PeConfig,
    /// Front-end time: where the fetch/head-list/divider stages are. Tasks
    /// issue from here; the IU array drains behind it (macro-pipeline
    /// overlap across tasks, Section 4's 5-stage pipeline).
    now: Cycle,
    /// Per-IU busy-until times, persistent across tasks: sibling tasks'
    /// workloads pipeline onto the array as units free up.
    iu_free: Vec<Cycle>,
    /// Latest task completion (the PE's retire time).
    finish: Cycle,
    stack: Vec<Group>,
    stats: PeStats,
    /// Live candidate-set bytes (private-cache occupancy model).
    live_bytes: u64,
    /// EWMA of materialized candidate-set lengths, for group sizing.
    avg_candidate_len: f64,
    /// Synthetic spill address region (above the graph's footprint).
    spill_base: u64,
    spill_cursor: u64,
    /// One-way NoC latency from this PE to the shared-cache port.
    noc_latency: Cycle,
    trace: Trace,
}

impl<'g> FingersPe<'g> {
    /// Creates a PE executing `multi` on `graph`.
    ///
    /// # Panics
    ///
    /// Panics if any pattern has fewer than 2 vertices.
    pub fn new(graph: &'g CsrGraph, multi: &'g MultiPlan, cfg: PeConfig) -> Self {
        let plans: Vec<&ExecutionPlan> = multi.plans().iter().collect();
        assert!(
            plans.iter().all(|p| p.pattern_size() >= 2),
            "patterns must have at least 2 vertices"
        );
        let avg_deg = graph.avg_degree().max(1.0);
        let cfg_trace = cfg.trace_capacity;
        Self {
            graph,
            stats: PeStats {
                num_ius: cfg.num_ius,
                embeddings: vec![0; plans.len()],
                ..PeStats::default()
            },
            plans,
            iu_free: vec![0; cfg.num_ius],
            cfg,
            now: 0,
            finish: 0,
            stack: Vec::new(),
            live_bytes: 0,
            avg_candidate_len: avg_deg,
            spill_base: graph.total_bytes().next_multiple_of(64),
            spill_cursor: 0,
            noc_latency: 0,
            trace: Trace::with_capacity(cfg_trace),
        }
    }

    /// The event trace recorded so far (empty unless
    /// [`PeConfig::trace_capacity`] is non-zero).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Sets this PE's one-way NoC latency to the shared cache (its mesh
    /// position's distance; see [`fingers_sim::MeshNoc`]).
    pub fn set_noc_latency(&mut self, latency: Cycle) {
        self.noc_latency = latency;
    }

    /// Pseudo-DFS group size: the minimum number of tasks estimated to fill
    /// the IUs, from average set sizes (Section 4.1).
    fn group_size(&self) -> usize {
        if !self.cfg.pseudo_dfs {
            return 1;
        }
        let short_segments = (self.avg_candidate_len / self.cfg.short_segment_len as f64).max(1.0);
        let ius_per_op = (short_segments / self.cfg.max_load as f64).ceil().max(1.0);
        let ops_per_task = 2.0; // typical ops per task across the benchmarks
        let ius_per_task = (ius_per_op * ops_per_task).max(1.0);
        let g = (self.cfg.num_ius as f64 / ius_per_task).ceil() as usize;
        g.clamp(1, self.cfg.max_group_size)
    }

    /// Issues the neighbor-list fetches of every task in `group` (the
    /// pseudo-DFS "pop together, hits first" policy), then orders the tasks
    /// by data readiness.
    fn fetch_group(&mut self, group_idx: usize, mem: &mut MemorySystem) {
        let now = self.now.max(self.stack[group_idx].not_before);
        let group = &mut self.stack[group_idx];
        let mut order: Vec<usize> = (0..group.tasks.len()).collect();
        group.ready.clear();
        for t in &group.tasks {
            let v = t.mapped[t.level];
            let out = mem.fetch(
                now,
                self.graph.neighbor_list_addr(v),
                self.graph.neighbor_list_bytes(v),
            );
            group.ready.push((
                out.first_ready + self.noc_latency,
                out.completion + self.noc_latency,
            ));
        }
        let task_count = group.tasks.len();
        // Execute ready tasks first while the others' fetches are in flight.
        order.sort_by_key(|&i| group.ready[i].1);
        let tasks = std::mem::take(&mut group.tasks);
        let ready = std::mem::take(&mut group.ready);
        group.tasks = order.iter().map(|&i| tasks[i].clone()).collect();
        group.ready = order.iter().map(|&i| ready[i]).collect();
        group.fetched = true;
        self.trace.record(TraceEvent::GroupFetch {
            cycle: now,
            tasks: task_count,
        });
    }

    /// Executes one task end to end, spawning child groups or counting
    /// embeddings. Returns the task's finish cycle.
    fn run_task(&mut self, task: Task, data: (Cycle, Cycle), mem: &mut MemorySystem) -> Cycle {
        let plan = self.plans[task.plan_idx];
        let k = plan.pattern_size();
        let level = task.level;
        let u = task.mapped[level];
        let seg_cfg = self.cfg.segmented();
        self.stats.tasks += 1;

        let (first_ready, mut all_data_done) = data;
        let compute_start = self.now.max(first_ready);
        if compute_start > self.now {
            self.stats.stall_cycles += compute_start - self.now;
        }
        self.trace.record(TraceEvent::TaskStart {
            cycle: compute_start,
            level,
            vertex: u,
        });
        let workloads_before = self.stats.workloads;

        // --- run the level's schedule ops with set-level parallelism ---
        let streamed: Rc<Vec<Elem>> = Rc::new(self.graph.neighbors(u).to_vec());
        let mut task_iu_end: Cycle = compute_start;
        let mut divider_cycles: u64 = 0;
        let mut collector_receives: u64 = 0;
        let mut emitted: Vec<(usize, Rc<Vec<Elem>>)> = Vec::new();
        // Dedup of identical computations ("identical, we only compute
        // once"): key on operand identities + kind + clip bound.
        let mut memo: Memo = HashMap::new();

        for op in plan.actions_at(level) {
            let target = op.target();
            let bound = self.known_bound(plan, target, level, &task.mapped);
            match *op {
                PlanOp::Init { .. } => {
                    let key = (Rc::as_ptr(&streamed) as usize, usize::MAX, 0, bound);
                    let set = memo
                        .entry(key)
                        .or_insert_with(|| Rc::new(clip(&streamed, bound).to_vec()));
                    emitted.push((target, Rc::clone(set)));
                    // Aliasing the streamed list into the private cache is
                    // free on the IUs; the fetch was already charged.
                }
                PlanOp::InitAnti { short, .. } => {
                    let short_list = self.fetch_ancestor_list(
                        task.mapped[short],
                        compute_start,
                        &mut all_data_done,
                        mem,
                    );
                    let key = (Rc::as_ptr(&short_list) as usize, u as usize, 1, bound);
                    let set = match memo.get(&key) {
                        Some(s) => Rc::clone(s),
                        None => {
                            let out = segmented::execute(
                                SetOpKind::AntiSubtract,
                                clip(&short_list, bound),
                                clip(&streamed, bound),
                                &seg_cfg,
                            );
                            let r = Rc::new(self.schedule_op(
                                &out,
                                compute_start,
                                &mut task_iu_end,
                                &mut divider_cycles,
                                &mut collector_receives,
                            ));
                            memo.insert(key, Rc::clone(&r));
                            r
                        }
                    };
                    emitted.push((target, set));
                }
                PlanOp::Apply { list, kind, .. } => {
                    let short = self.current_set(&task, &emitted, target);
                    let long: Rc<Vec<Elem>> = if list == level {
                        Rc::clone(&streamed)
                    } else {
                        self.fetch_ancestor_list(
                            task.mapped[list],
                            compute_start,
                            &mut all_data_done,
                            mem,
                        )
                    };
                    let key = (
                        Rc::as_ptr(&short) as usize,
                        Rc::as_ptr(&long) as usize,
                        2 + kind as u8,
                        bound,
                    );
                    let set = match memo.get(&key) {
                        Some(s) => Rc::clone(s),
                        None => {
                            let out = segmented::execute(
                                kind,
                                clip(&short, bound),
                                clip(&long, bound),
                                &seg_cfg,
                            );
                            let r = Rc::new(self.schedule_op(
                                &out,
                                compute_start,
                                &mut task_iu_end,
                                &mut divider_cycles,
                                &mut collector_receives,
                            ));
                            memo.insert(key, Rc::clone(&r));
                            r
                        }
                    };
                    emitted.push((target, set));
                }
            }
        }

        // --- task timing: IU drain vs divider vs collector serial ---
        let divider_stage = divider_cycles.div_ceil(self.cfg.num_dividers.max(1) as u64);
        let divider_end = compute_start + divider_stage;
        let collector_end = compute_start + collector_receives;
        // The 5-stage macro pipeline overlaps the fixed stage latencies with
        // compute; the overhead only shows when the task is tiny.
        let task_end = task_iu_end
            .max(divider_end)
            .max(collector_end)
            .max(all_data_done)
            .max(compute_start + self.cfg.pipeline_overhead);
        // The front end moves on as soon as this task's workloads are
        // dispatched; the IU array drains behind it, so sibling tasks
        // pipeline across the macro stages.
        self.now = compute_start + divider_stage.max(self.cfg.pipeline_overhead);
        self.finish = self.finish.max(task_end);
        self.stats.cycles = self.finish;

        // --- spawn children or count embeddings ---
        let next = level + 1;
        let final_set: Option<Rc<Vec<Elem>>> = emitted
            .iter()
            .rev()
            .find(|(t, _)| *t == next)
            .map(|(_, s)| Rc::clone(s))
            .or_else(|| task.frame.as_ref().and_then(|f| f.lookup(next)));
        // §11: verified plans materialize S_{level+1} before it is read
        // (fingers-verify's use-before-init check); a miss is a plan bug.
        #[allow(clippy::expect_used)]
        let final_set = final_set.expect("schedule materializes S_{level+1}");
        let full_bound = self.known_bound(plan, next, level, &task.mapped);
        let candidates: Vec<VertexId> = clip(&final_set, full_bound)
            .iter()
            .copied()
            .filter(|c| !task.mapped.contains(c))
            .collect();

        let children = if next == k - 1 {
            self.stats.embeddings[task.plan_idx] += candidates.len() as u64;
            0
        } else {
            let n = candidates.len();
            if n > 0 {
                self.spawn_children(&task, emitted, candidates, mem, task_end);
            }
            n
        };
        self.trace.record(TraceEvent::TaskRetire {
            cycle: task_end,
            level,
            workloads: self.stats.workloads - workloads_before,
            children,
        });
        task_end
    }

    /// Schedules one op's IU workloads greedily onto the earliest-free IUs,
    /// recording busy time and the Table 3 balance accounting. Returns the
    /// op's functional result.
    fn schedule_op(
        &mut self,
        out: &segmented::SegmentedOutcome,
        floor: Cycle,
        task_iu_end: &mut Cycle,
        divider_cycles: &mut u64,
        collector_receives: &mut u64,
    ) -> Vec<Elem> {
        self.stats.set_ops += 1;
        self.stats.workloads += out.workload_cycles.len() as u64;
        *divider_cycles += out.divider_cycles;
        *collector_receives += out.collector_receives;

        let mut used: Vec<usize> = Vec::new();
        let mut load_start = Cycle::MAX;
        let mut load_end = 0;
        for &cycles in &out.workload_cycles {
            // §11: PeConfig validates iu_count >= 1 at construction, so
            // iu_free is never empty; an empty pool is a config-path bug.
            #[allow(clippy::expect_used)]
            let (idx, _) = self
                .iu_free
                .iter()
                .enumerate()
                .min_by_key(|&(_, &f)| f)
                .expect("at least one IU");
            let start = self.iu_free[idx].max(floor);
            self.iu_free[idx] = start + cycles;
            self.stats.iu_busy_cycles += cycles;
            load_start = load_start.min(start);
            load_end = load_end.max(self.iu_free[idx]);
            *task_iu_end = (*task_iu_end).max(self.iu_free[idx]);
            if !used.contains(&idx) {
                used.push(idx);
            }
        }
        if !used.is_empty() {
            let busy: u64 = out.workload_cycles.iter().sum();
            self.stats.balance_busy += busy;
            self.stats.balance_span += (load_end - load_start) * used.len() as u64;
        }
        out.result.clone()
    }

    /// Looks up the current value of `S_target` — first among this task's
    /// freshly emitted sets, then in the inherited frames.
    // §11: verified plans never read a set before its Init/InitAnti ran
    // (fingers-verify's use-before-init check); a miss is a plan bug.
    #[allow(clippy::expect_used)]
    fn current_set(
        &self,
        task: &Task,
        emitted: &[(usize, Rc<Vec<Elem>>)],
        target: usize,
    ) -> Rc<Vec<Elem>> {
        emitted
            .iter()
            .rev()
            .find(|(t, _)| *t == target)
            .map(|(_, s)| Rc::clone(s))
            .or_else(|| task.frame.as_ref().and_then(|f| f.lookup(target)))
            .expect("Apply requires a materialized set")
    }

    /// Fetches an ancestor's neighbor list (postponed anti-subtraction
    /// operands); usually a shared-cache hit since it streamed recently.
    fn fetch_ancestor_list(
        &mut self,
        v: VertexId,
        at: Cycle,
        all_data_done: &mut Cycle,
        mem: &mut MemorySystem,
    ) -> Rc<Vec<Elem>> {
        let out = mem.fetch(
            at,
            self.graph.neighbor_list_addr(v),
            self.graph.neighbor_list_bytes(v),
        );
        *all_data_done = (*all_data_done).max(out.completion + self.noc_latency);
        Rc::new(self.graph.neighbors(v).to_vec())
    }

    /// The largest already-known symmetry-breaking lower bound for level
    /// `target` (restrictions whose smaller side is mapped).
    fn known_bound(
        &self,
        plan: &ExecutionPlan,
        target: usize,
        level: usize,
        mapped: &[VertexId],
    ) -> Option<Elem> {
        plan.schedule(target)
            .lower_bounds
            .iter()
            .filter(|&&a| a <= level)
            .map(|&a| mapped[a])
            .max()
    }

    /// Groups `candidates` into pseudo-DFS task groups and pushes them.
    fn spawn_children(
        &mut self,
        task: &Task,
        emitted: Vec<(usize, Rc<Vec<Elem>>)>,
        candidates: Vec<VertexId>,
        mem: &mut MemorySystem,
        now: Cycle,
    ) {
        // Update the running candidate-length estimate for group sizing.
        self.avg_candidate_len = 0.9 * self.avg_candidate_len + 0.1 * candidates.len() as f64;

        let frame = Frame::new(task.frame.clone(), emitted);
        let frame_bytes = frame.bytes();
        self.charge_private_cache(frame_bytes, mem, now);

        let g = self.group_size();
        let next = task.level + 1;
        let mut groups: Vec<Group> = Vec::new();
        for chunk in candidates.chunks(g) {
            let tasks = chunk
                .iter()
                .map(|&c| {
                    let mut mapped = (*task.mapped).clone();
                    mapped.push(c);
                    Task {
                        plan_idx: task.plan_idx,
                        level: next,
                        mapped: Rc::new(mapped),
                        frame: Some(Rc::clone(&frame)),
                    }
                })
                .collect();
            self.stats.groups += 1;
            self.stats.group_tasks_sum += chunk.len() as u64;
            groups.push(Group {
                tasks,
                ready: Vec::new(),
                fetched: false,
                next: 0,
                release_bytes: 0,
                not_before: now,
            });
        }
        if let Some(last) = groups.last_mut() {
            last.release_bytes = frame_bytes;
        }
        // Push in reverse so the first chunk is executed first (DFS).
        for gr in groups.into_iter().rev() {
            self.stack.push(gr);
        }
    }

    /// Private-cache occupancy accounting with spill-to-shared on overflow.
    fn charge_private_cache(&mut self, bytes: u64, mem: &mut MemorySystem, now: Cycle) {
        let capacity = self.cfg.scaled_private_cache_bytes();
        let before = self.live_bytes;
        self.live_bytes += bytes;
        if self.live_bytes > capacity {
            let overflow = self.live_bytes - capacity.max(before);
            self.stats.spill_bytes += overflow;
            self.trace.record(TraceEvent::Spill {
                cycle: now,
                bytes: overflow,
            });
            // Spilled sets travel over the NoC into the shared cache.
            let addr = self.spill_base + (self.spill_cursor % (4 * capacity));
            self.spill_cursor += overflow;
            mem.write_back(now, addr, overflow);
        }
    }

    /// Immutable view of the accumulated statistics.
    pub fn stats(&self) -> &PeStats {
        &self.stats
    }
}

/// Returns the suffix of `set` strictly above `bound` (symmetry-breaking
/// clip; sound on partial sets because later ops only remove elements).
fn clip(set: &[Elem], bound: Option<Elem>) -> &[Elem] {
    match bound {
        Some(b) => &set[set.partition_point(|&x| x <= b)..],
        None => set,
    }
}

impl PeModel for FingersPe<'_> {
    fn now(&self) -> Cycle {
        self.now
    }

    fn set_now(&mut self, c: Cycle) {
        self.now = self.now.max(c);
    }

    fn has_work(&self) -> bool {
        !self.stack.is_empty()
    }

    fn start_tree(&mut self, root: VertexId) {
        // One level-0 task per plan, in one group: multi-pattern trunks
        // share the root's neighbor-list fetch (Section 4, multi-pattern).
        let tasks = (0..self.plans.len())
            .map(|plan_idx| Task {
                plan_idx,
                level: 0,
                mapped: Rc::new(vec![root]),
                frame: None,
            })
            .collect();
        self.stack.push(Group {
            tasks,
            ready: Vec::new(),
            fetched: false,
            next: 0,
            release_bytes: 0,
            not_before: 0,
        });
    }

    fn step(&mut self, mem: &mut MemorySystem) {
        // Find the next task: drop exhausted groups.
        while let Some(top) = self.stack.last() {
            if top.next >= top.tasks.len() {
                // §11: `top` was just observed via stack.last(), so the pop
                // cannot miss; a miss would mean concurrent mutation.
                #[allow(clippy::expect_used)]
                let done = self.stack.pop().expect("non-empty");
                self.live_bytes = self.live_bytes.saturating_sub(done.release_bytes);
                continue;
            }
            break;
        }
        let Some(top_idx) = self.stack.len().checked_sub(1) else {
            return;
        };
        if !self.stack[top_idx].fetched {
            self.fetch_group(top_idx, mem);
        }
        let group = &mut self.stack[top_idx];
        let task = group.tasks[group.next].clone();
        let data = group.ready[group.next];
        group.next += 1;
        self.run_task(task, data, mem);
    }

    fn take_stats(&mut self) -> PeStats {
        self.stats.cycles = self.now;
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingers_graph::GraphBuilder;
    use fingers_pattern::benchmarks::Benchmark;
    use fingers_sim::MemoryConfig;

    fn k4() -> CsrGraph {
        GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .build()
    }

    fn run_single(graph: &CsrGraph, bench: Benchmark, cfg: PeConfig) -> PeStats {
        let multi = bench.plan();
        let mut mem = MemorySystem::new(MemoryConfig::paper_default());
        let mut pe = FingersPe::new(graph, &multi, cfg);
        for v in graph.vertices() {
            pe.start_tree(v);
            while pe.has_work() {
                pe.step(&mut mem);
            }
        }
        pe.take_stats()
    }

    #[test]
    fn triangle_count_on_k4() {
        let s = run_single(&k4(), Benchmark::Tc, PeConfig::default());
        assert_eq!(s.embeddings, vec![4]);
        assert!(s.cycles > 0);
        assert!(s.tasks > 0);
    }

    #[test]
    fn motif_counts_on_k4() {
        // K4: 4 triangles, 0 vertex-induced wedges.
        let s = run_single(&k4(), Benchmark::Mc3, PeConfig::default());
        assert_eq!(s.embeddings, vec![4, 0]);
    }

    #[test]
    fn four_clique_on_k5() {
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b));
            }
        }
        let g = GraphBuilder::new().edges(edges).build();
        let s = run_single(&g, Benchmark::Cl4, PeConfig::default());
        assert_eq!(s.embeddings, vec![5]);
        let s = run_single(&g, Benchmark::Cl5, PeConfig::default());
        assert_eq!(s.embeddings, vec![1]);
    }

    #[test]
    fn pseudo_dfs_off_still_correct() {
        let cfg = PeConfig {
            pseudo_dfs: false,
            ..PeConfig::default()
        };
        let s = run_single(&k4(), Benchmark::Tc, cfg);
        assert_eq!(s.embeddings, vec![4]);
    }

    #[test]
    fn single_iu_still_correct() {
        let cfg = PeConfig::iso_area_ius(1);
        let s = run_single(&k4(), Benchmark::Tc, cfg);
        assert_eq!(s.embeddings, vec![4]);
    }

    #[test]
    fn stats_are_consistent() {
        let s = run_single(&k4(), Benchmark::Tt, PeConfig::default());
        // K4 has no vertex-induced tailed triangles (extra edges).
        assert_eq!(s.embeddings, vec![0]);
        assert!(s.active_rate() <= 1.0);
        assert!(s.balance_rate() <= 1.0 + 1e-9);
    }

    #[test]
    fn pipelining_improves_utilization_on_real_work() {
        use fingers_graph::gen::{chung_lu_power_law, ChungLuConfig};
        let g = chung_lu_power_law(&ChungLuConfig::new(400, 4000, 3));
        // Pseudo-DFS keeps sibling tasks in flight on the IU array; strict
        // DFS (group size 1) still pipelines but prefetches nothing, so
        // utilization and cycles must both be no better.
        let on = run_single(&g, Benchmark::Cyc, PeConfig::default());
        let off = run_single(
            &g,
            Benchmark::Cyc,
            PeConfig {
                pseudo_dfs: false,
                ..PeConfig::default()
            },
        );
        assert_eq!(on.embeddings, off.embeddings);
        assert!(
            on.cycles <= off.cycles,
            "on {} off {}",
            on.cycles,
            off.cycles
        );
    }

    #[test]
    fn retire_time_never_precedes_front_end_work() {
        let s = run_single(&k4(), Benchmark::Tc, PeConfig::default());
        // The reported cycle count is the retire time of the last task,
        // which bounds every stage.
        assert!(s.cycles as f64 >= s.iu_busy_cycles as f64 / s.num_ius as f64);
    }

    #[test]
    fn group_statistics_track_branch_parallelism() {
        use fingers_graph::gen::erdos_renyi;
        let g = erdos_renyi(200, 2000, 1);
        let s = run_single(&g, Benchmark::Tc, PeConfig::default());
        assert!(s.groups > 0);
        assert!(s.avg_group_size() >= 1.0);
        assert!(s.avg_ops_per_task() > 0.0);
        assert!(s.avg_workloads_per_op() >= 1.0);
    }

    #[test]
    fn trace_records_task_lifecycle() {
        let cfg = PeConfig {
            trace_capacity: 4096,
            ..PeConfig::default()
        };
        let multi = Benchmark::Tc.plan();
        let mut mem = MemorySystem::new(fingers_sim::MemoryConfig::paper_default());
        let g = k4();
        let mut pe = FingersPe::new(&g, &multi, cfg);
        for v in g.vertices() {
            pe.start_tree(v);
            while pe.has_work() {
                pe.step(&mut mem);
            }
        }
        let trace = pe.trace();
        assert!(!trace.is_empty());
        let text = trace.render();
        assert!(text.contains("start"));
        assert!(text.contains("retire"));
        // Events are recorded in nondecreasing front-end order per kind;
        // at minimum the timeline renders one line per event.
        assert_eq!(text.lines().count(), trace.len());
    }

    #[test]
    fn tracing_does_not_change_timing() {
        let g = k4();
        let plain = run_single(&g, Benchmark::Tc, PeConfig::default());
        let traced = run_single(
            &g,
            Benchmark::Tc,
            PeConfig {
                trace_capacity: 1024,
                ..PeConfig::default()
            },
        );
        assert_eq!(plain.cycles, traced.cycles);
        assert_eq!(plain.embeddings, traced.embeddings);
    }

    #[test]
    fn more_ius_do_not_hurt_cycles() {
        use fingers_graph::gen::{chung_lu_power_law, ChungLuConfig};
        let g = chung_lu_power_law(&ChungLuConfig::new(300, 3000, 9));
        let few = run_single(&g, Benchmark::Tt, PeConfig::unlimited_area_ius(2));
        let many = run_single(&g, Benchmark::Tt, PeConfig::unlimited_area_ius(32));
        assert_eq!(few.embeddings, many.embeddings);
        assert!(
            many.cycles <= few.cycles,
            "32 IUs {} vs 2 IUs {}",
            many.cycles,
            few.cycles
        );
    }
}
