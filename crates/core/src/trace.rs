//! Execution tracing for PE debugging and analysis.
//!
//! When enabled (capacity > 0), a PE records a bounded ring of
//! [`TraceEvent`]s — task starts/retires, group fetches, spills — which can
//! be rendered as a text timeline. Tracing never affects simulated timing;
//! it only observes it.

use fingers_graph::VertexId;
use fingers_sim::Cycle;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// One recorded PE event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A pseudo-DFS group's fetches were issued.
    GroupFetch {
        /// Issue cycle.
        cycle: Cycle,
        /// Number of sibling tasks fetched together.
        tasks: usize,
    },
    /// A task began executing (front-end issue).
    TaskStart {
        /// Issue cycle.
        cycle: Cycle,
        /// Tree level of the newly matched vertex.
        level: usize,
        /// The newly matched input-graph vertex.
        vertex: VertexId,
    },
    /// A task retired (all its IU workloads collected).
    TaskRetire {
        /// Retire cycle.
        cycle: Cycle,
        /// Tree level.
        level: usize,
        /// IU workloads the task issued.
        workloads: u64,
        /// Children spawned (0 at the last extendable level).
        children: usize,
    },
    /// Candidate sets spilled from the private cache.
    Spill {
        /// Cycle of the spill.
        cycle: Cycle,
        /// Bytes written toward the shared cache.
        bytes: u64,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::GroupFetch { cycle, .. }
            | TraceEvent::TaskStart { cycle, .. }
            | TraceEvent::TaskRetire { cycle, .. }
            | TraceEvent::Spill { cycle, .. } => cycle,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::GroupFetch { cycle, tasks } => {
                write!(f, "[{cycle:>10}] fetch group of {tasks}")
            }
            TraceEvent::TaskStart {
                cycle,
                level,
                vertex,
            } => {
                write!(f, "[{cycle:>10}] task L{level} v{vertex} start")
            }
            TraceEvent::TaskRetire {
                cycle,
                level,
                workloads,
                children,
            } => write!(
                f,
                "[{cycle:>10}] task L{level} retire ({workloads} workloads, {children} children)"
            ),
            TraceEvent::Spill { cycle, bytes } => {
                write!(f, "[{cycle:>10}] spill {bytes} B")
            }
        }
    }
}

/// A bounded event ring. Zero capacity disables recording entirely.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace that keeps the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event (drops the oldest beyond capacity).
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained timeline as text, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("… {} earlier events dropped …\n", self.dropped));
        }
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::with_capacity(0);
        t.record(TraceEvent::Spill {
            cycle: 1,
            bytes: 64,
        });
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut t = Trace::with_capacity(2);
        for c in 0..5 {
            t.record(TraceEvent::TaskStart {
                cycle: c,
                level: 0,
                vertex: 0,
            });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let cycles: Vec<Cycle> = t.events().map(TraceEvent::cycle).collect();
        assert_eq!(cycles, vec![3, 4]);
    }

    #[test]
    fn render_includes_every_event_kind() {
        let mut t = Trace::with_capacity(8);
        t.record(TraceEvent::GroupFetch { cycle: 1, tasks: 4 });
        t.record(TraceEvent::TaskStart {
            cycle: 2,
            level: 1,
            vertex: 7,
        });
        t.record(TraceEvent::TaskRetire {
            cycle: 9,
            level: 1,
            workloads: 3,
            children: 2,
        });
        t.record(TraceEvent::Spill {
            cycle: 12,
            bytes: 256,
        });
        let text = t.render();
        assert!(text.contains("fetch group of 4"));
        assert!(text.contains("task L1 v7 start"));
        assert!(text.contains("retire (3 workloads, 2 children)"));
        assert!(text.contains("spill 256 B"));
    }

    #[test]
    fn overflow_is_reported_in_render() {
        let mut t = Trace::with_capacity(1);
        t.record(TraceEvent::Spill { cycle: 1, bytes: 1 });
        t.record(TraceEvent::Spill { cycle: 2, bytes: 2 });
        assert!(t.render().contains("1 earlier events dropped"));
    }
}
