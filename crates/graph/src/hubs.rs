//! Hub identification and dense-bitmap construction from CSR rows.
//!
//! The bitmap kernel tier (`fingers_setops::bitmap`) pays an `O(n/64)`
//! construction cost per adjacency it densifies, so it only makes sense
//! for vertices whose neighbor lists are reused as the *long* operand many
//! times — the high-degree hubs that dominate set-op time on power-law
//! graphs. [`HubSet`] picks those vertices (top-k by degree,
//! deterministic), and [`neighbor_bitmap`] / [`refill_neighbor_bitmap`]
//! turn a CSR row into a probeable [`NeighborBitmap`].

use fingers_setops::bitmap::NeighborBitmap;

use crate::{CsrGraph, VertexId};

/// The top-k highest-degree vertices of one graph, with O(1) membership.
///
/// Selection is deterministic: vertices are ranked by descending degree
/// with ties broken by ascending vertex ID, and zero-degree vertices are
/// never hubs (their adjacency is never a set-op operand). The same graph
/// and `k` therefore always produce the same hub set — a precondition for
/// the mining engine's bit-identical parallel counts being reproducible
/// run to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HubSet {
    /// Hub IDs in ascending order.
    hubs: Vec<VertexId>,
    /// Dense membership mask, indexed by vertex ID.
    is_hub: Vec<bool>,
    /// Smallest degree among the selected hubs (0 when no hubs).
    min_degree: usize,
}

impl HubSet {
    /// Selects the `k` highest-degree vertices of `graph`.
    pub fn top_k(graph: &CsrGraph, k: usize) -> Self {
        let mut ranked: Vec<VertexId> = graph.vertices().filter(|&v| graph.degree(v) > 0).collect();
        ranked.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
        ranked.truncate(k);
        let min_degree = ranked.iter().map(|&v| graph.degree(v)).min().unwrap_or(0);
        let mut is_hub = vec![false; graph.vertex_count()];
        for &v in &ranked {
            is_hub[v as usize] = true;
        }
        ranked.sort_unstable();
        Self {
            hubs: ranked,
            is_hub,
            min_degree,
        }
    }

    /// Whether `v` is a hub. Out-of-range IDs are simply not hubs.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.is_hub.get(v as usize).copied().unwrap_or(false)
    }

    /// The selected hub IDs, ascending.
    pub fn hubs(&self) -> &[VertexId] {
        &self.hubs
    }

    /// Number of hubs (≤ the requested `k`).
    pub fn len(&self) -> usize {
        self.hubs.len()
    }

    /// Whether no vertex qualified (empty graph, `k == 0`, or no edges).
    pub fn is_empty(&self) -> bool {
        self.hubs.is_empty()
    }

    /// Smallest degree among the hubs — the effective degree threshold the
    /// selection realized (0 when empty).
    pub fn min_degree(&self) -> usize {
        self.min_degree
    }
}

/// Builds a dense bitmap of `N(v)` over the graph's vertex-ID universe.
///
/// # Panics
///
/// Panics if `v` is out of range.
pub fn neighbor_bitmap(graph: &CsrGraph, v: VertexId) -> NeighborBitmap {
    NeighborBitmap::from_sorted(graph.vertex_count(), graph.neighbors(v))
}

/// Rebuilds `bitmap` in place as the dense form of `N(v)`, reusing its
/// backing storage (no allocation when the bitmap already covers this
/// graph's universe — the cache-eviction reuse path).
///
/// # Panics
///
/// Panics if `v` is out of range.
pub fn refill_neighbor_bitmap(graph: &CsrGraph, v: VertexId, bitmap: &mut NeighborBitmap) {
    bitmap.refill(graph.vertex_count(), graph.neighbors(v));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{chung_lu_power_law, ChungLuConfig};
    use crate::GraphBuilder;

    fn star_plus_edge() -> CsrGraph {
        // Vertex 0 has degree 4; vertices 1..=4 degree 1 or 2; 5 isolated.
        GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)])
            .vertex_count(6)
            .build()
    }

    #[test]
    fn top_k_ranks_by_degree_with_id_tiebreak() {
        let g = star_plus_edge();
        let h = HubSet::top_k(&g, 3);
        // Degrees: 0→4, 1→2, 2→2, 3→1, 4→1, 5→0. Top 3 = {0, 1, 2}.
        assert_eq!(h.hubs(), &[0, 1, 2]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.min_degree(), 2);
        assert!(h.contains(0) && h.contains(1) && h.contains(2));
        assert!(!h.contains(3) && !h.contains(5) && !h.contains(100));
    }

    #[test]
    fn zero_degree_vertices_never_qualify() {
        let g = star_plus_edge();
        let h = HubSet::top_k(&g, 100);
        assert_eq!(h.len(), 5, "isolated vertex 5 excluded");
        assert!(!h.contains(5));
        let empty = GraphBuilder::new().vertex_count(4).build();
        let h = HubSet::top_k(&empty, 3);
        assert!(h.is_empty());
        assert_eq!(h.min_degree(), 0);
    }

    #[test]
    fn k_zero_and_empty_graph() {
        let g = star_plus_edge();
        assert!(HubSet::top_k(&g, 0).is_empty());
        let none = GraphBuilder::new().vertex_count(0).build();
        let h = HubSet::top_k(&none, 5);
        assert!(h.is_empty());
        assert!(!h.contains(0));
    }

    #[test]
    fn selection_is_deterministic_and_degree_dominant() {
        let g = chung_lu_power_law(&ChungLuConfig::new(300, 1800, 9));
        let a = HubSet::top_k(&g, 16);
        let b = HubSet::top_k(&g, 16);
        assert_eq!(a, b);
        // Every hub's degree ≥ every non-hub's degree.
        let min_hub = a.min_degree();
        for v in g.vertices() {
            if !a.contains(v) {
                assert!(
                    g.degree(v) <= min_hub,
                    "non-hub {v} (deg {}) outranks a hub (min {min_hub})",
                    g.degree(v)
                );
            }
        }
    }

    #[test]
    fn neighbor_bitmap_matches_adjacency() {
        let g = star_plus_edge();
        for v in g.vertices() {
            let bm = neighbor_bitmap(&g, v);
            assert_eq!(bm.universe(), g.vertex_count());
            assert_eq!(bm.count_ones(), g.degree(v));
            for u in g.vertices() {
                assert_eq!(bm.contains(u), g.has_edge(v, u), "v={v} u={u}");
            }
        }
    }

    #[test]
    fn refill_round_trips_between_vertices_without_realloc() {
        let g = star_plus_edge();
        let mut bm = neighbor_bitmap(&g, 0);
        let cap = bm.capacity_words();
        refill_neighbor_bitmap(&g, 3, &mut bm);
        assert_eq!(bm.capacity_words(), cap);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), g.neighbors(3));
    }
}
