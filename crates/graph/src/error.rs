//! Typed errors for graph construction and ingestion.
//!
//! Error-handling policy (DESIGN.md §11): ingestion of *external* data —
//! edge lists, raw CSR arrays, user-supplied sizes — is fallible and
//! returns [`GraphError`]; internal invariant violations (a canonical
//! builder output failing CSR validation, for instance) remain panics
//! because they indicate bugs, not bad input.

use std::error::Error;
use std::fmt;

use crate::csr::VertexId;
use crate::io::ParseEdgeListError;

/// Error produced when a graph cannot be constructed from its inputs.
///
/// Every variant carries enough context (vertex, neighbor, bounds) to
/// report the offending datum without re-scanning the input.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// The edge-list text could not be parsed.
    Parse(ParseEdgeListError),
    /// The CSR offset array is malformed (empty, not starting at zero, not
    /// monotonic, or not ending at the neighbor-array length).
    InvalidOffsets {
        /// Human-readable description of the malformation.
        reason: String,
    },
    /// A neighbor ID references a vertex outside `[0, vertex_count)`.
    NeighborOutOfRange {
        /// The vertex whose adjacency list contains the bad entry.
        vertex: usize,
        /// The out-of-range neighbor ID.
        neighbor: VertexId,
        /// Number of vertices in the graph.
        vertex_count: usize,
    },
    /// A vertex lists itself as a neighbor.
    SelfLoop {
        /// The offending vertex.
        vertex: usize,
    },
    /// A neighbor list is not strictly ascending (unsorted or duplicated).
    UnsortedNeighbors {
        /// The vertex whose adjacency list is out of order.
        vertex: usize,
    },
    /// The requested vertex count exceeds what [`VertexId`] can address.
    TooManyVertices {
        /// The requested vertex count.
        requested: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Parse(e) => write!(f, "{e}"),
            GraphError::InvalidOffsets { reason } => {
                write!(f, "malformed CSR offsets: {reason}")
            }
            GraphError::NeighborOutOfRange {
                vertex,
                neighbor,
                vertex_count,
            } => write!(
                f,
                "neighbor id out of range: vertex {vertex} lists neighbor \
                 {neighbor} but the graph has {vertex_count} vertices"
            ),
            GraphError::SelfLoop { vertex } => write!(f, "self loop at vertex {vertex}"),
            GraphError::UnsortedNeighbors { vertex } => {
                write!(f, "neighbor list of {vertex} not strictly sorted")
            }
            GraphError::TooManyVertices { requested } => write!(
                f,
                "vertex count {requested} exceeds the {} vertices a VertexId can address",
                VertexId::MAX as u64 + 1
            ),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseEdgeListError> for GraphError {
    fn from(e: ParseEdgeListError) -> Self {
        GraphError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = GraphError::NeighborOutOfRange {
            vertex: 3,
            neighbor: 9,
            vertex_count: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("vertex 3"), "{msg}");
        assert!(msg.contains('9'), "{msg}");
        assert!(msg.contains("out of range"), "{msg}");
        assert!(GraphError::SelfLoop { vertex: 2 }
            .to_string()
            .contains("self loop at vertex 2"));
        assert!(GraphError::UnsortedNeighbors { vertex: 7 }
            .to_string()
            .contains("not strictly sorted"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }

    #[test]
    fn parse_errors_convert_and_chain() {
        let parse = crate::io::read_edge_list("0 x\n".as_bytes()).unwrap_err();
        let e = GraphError::from(parse);
        assert!(e.to_string().contains("invalid vertex id"));
        assert!(e.source().is_some());
    }
}
