//! Deterministic synthetic graph generators.
//!
//! Each generator takes an explicit seed and is fully deterministic, so
//! every experiment in the evaluation harness is reproducible bit-for-bit.
//! Three families cover the structural knobs the paper's evaluation turns:
//!
//! - [`erdos_renyi`]: near-uniform degrees, low maximum degree — the shape
//!   of the Patents graph ("very few high-degree vertices").
//! - [`chung_lu_power_law`]: heavy-tailed expected degrees — the shape of
//!   Youtube / LiveJournal / Orkut ("real-world power-law graphs").
//! - [`plant_cliques`]: overlays dense clusters on a base graph — the
//!   clique-richness that separates Mico and LiveJournal from Orkut in the
//!   paper's clique-listing results.
//! - [`rmat`]: the Graph500 recursive-matrix family — skewed degrees with
//!   self-similar community structure.

mod chung_lu;
mod erdos_renyi;
mod grid;
mod planted;
mod rmat;

pub use chung_lu::{chung_lu_power_law, ChungLuConfig};
pub use erdos_renyi::erdos_renyi;
pub use grid::{grid, king_grid};
pub use planted::{plant_cliques, PlantedCliques};
pub use rmat::{rmat, RmatConfig};
