//! Chung–Lu expected-degree power-law generation.

use rand::distributions::{Distribution, WeightedIndex};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

use crate::{CsrGraph, GraphBuilder, VertexId};

/// Parameters for [`chung_lu_power_law`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChungLuConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Target number of distinct undirected edges.
    pub edges: usize,
    /// Power-law exponent `γ` of the expected-degree sequence
    /// (`w_i ∝ (i+1)^(-1/(γ-1))`). Typical social graphs: 2.0–2.5; smaller
    /// values give heavier tails (larger max degree).
    pub exponent: f64,
    /// Caps each expected degree at this fraction of `vertices`,
    /// bounding the hub size (e.g. Patents has a low max degree; Youtube a
    /// huge one).
    pub max_degree_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ChungLuConfig {
    /// Convenience constructor with the common defaults
    /// (`exponent = 2.2`, `max_degree_fraction = 0.25`).
    pub fn new(vertices: usize, edges: usize, seed: u64) -> Self {
        Self {
            vertices,
            edges,
            exponent: 2.2,
            max_degree_fraction: 0.25,
            seed,
        }
    }
}

/// Generates a power-law graph with the Chung–Lu expected-degree model.
///
/// Endpoints of each edge are drawn independently from the weight
/// distribution `w_i ∝ (i+1)^(-1/(γ-1))`, duplicates and self loops are
/// rejected, so the realized degree of vertex `i` concentrates around a
/// value proportional to `w_i`. Low-index vertices become hubs; the tail
/// follows the target exponent. This is the standard scalable surrogate for
/// SNAP-style social graphs.
///
/// # Panics
///
/// Panics if the edge target exceeds half of what rejection sampling can
/// reasonably realize (`edges > vertices²/8`), or if `exponent <= 1`.
///
/// # Example
///
/// ```
/// use fingers_graph::gen::{chung_lu_power_law, ChungLuConfig};
/// let g = chung_lu_power_law(&ChungLuConfig::new(500, 2000, 42));
/// assert_eq!(g.vertex_count(), 500);
/// // Hubby: max degree far above the average.
/// assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
/// ```
pub fn chung_lu_power_law(config: &ChungLuConfig) -> CsrGraph {
    let n = config.vertices;
    assert!(config.exponent > 1.0, "power-law exponent must exceed 1");
    assert!(
        config.edges <= n * n / 8,
        "edge target too dense for rejection sampling"
    );
    if n == 0 {
        return GraphBuilder::new().build();
    }
    let alpha = 1.0 / (config.exponent - 1.0);
    // Raw power-law weights, rescaled so they sum to the target degree mass,
    // then truncated at the hub cap. The truncation is what differentiates
    // e.g. Patents (tiny cap) from Youtube (huge cap).
    let raw: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let raw_sum: f64 = raw.iter().sum();
    let scale = (2.0 * config.edges as f64) / raw_sum;
    let cap = (n as f64 * config.max_degree_fraction).max(1.0);
    let weights: Vec<f64> = raw.iter().map(|&r| (r * scale).min(cap)).collect();
    // §11: weights are (r * scale).min(cap) with r > 0, scale > 0, cap >= 1,
    // so every weight is strictly positive and WeightedIndex cannot fail; a
    // failure here is a generator bug, not an input error.
    #[allow(clippy::expect_used)] // §11: justified above
    let dist = WeightedIndex::new(&weights).expect("positive weights");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut chosen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(config.edges);
    let mut attempts = 0usize;
    let max_attempts = config.edges.saturating_mul(200).max(10_000);
    while chosen.len() < config.edges && attempts < max_attempts {
        attempts += 1;
        let u = dist.sample(&mut rng) as VertexId;
        let v = dist.sample(&mut rng) as VertexId;
        if u == v {
            continue;
        }
        chosen.insert((u.min(v), u.max(v)));
    }
    GraphBuilder::new().edges(chosen).vertex_count(n).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let c = ChungLuConfig::new(300, 1500, 5);
        assert_eq!(chung_lu_power_law(&c), chung_lu_power_law(&c));
    }

    #[test]
    fn heavy_tail_present() {
        let g = chung_lu_power_law(&ChungLuConfig::new(2000, 8000, 11));
        assert!(g.max_degree() > 50, "max degree {}", g.max_degree());
        assert!(g.avg_degree() < 10.0);
    }

    #[test]
    fn max_degree_fraction_shrinks_hubs() {
        // The cap applies to *expected* degrees under independent endpoint
        // draws, so realized maxima can exceed it; but relative ordering of
        // hub sizes must follow the cap.
        let capped = {
            let mut c = ChungLuConfig::new(1000, 4000, 3);
            c.max_degree_fraction = 0.02;
            chung_lu_power_law(&c)
        };
        let free = {
            let mut c = ChungLuConfig::new(1000, 4000, 3);
            c.max_degree_fraction = 0.5;
            chung_lu_power_law(&c)
        };
        assert!(
            capped.max_degree() < free.max_degree(),
            "capped {} vs free {}",
            capped.max_degree(),
            free.max_degree()
        );
    }

    #[test]
    fn reaches_edge_target_on_sparse_graphs() {
        let g = chung_lu_power_law(&ChungLuConfig::new(1000, 5000, 1));
        assert_eq!(g.edge_count(), 5000);
    }

    #[test]
    fn empty_graph() {
        let g = chung_lu_power_law(&ChungLuConfig::new(0, 0, 1));
        assert_eq!(g.vertex_count(), 0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_bad_exponent() {
        let mut c = ChungLuConfig::new(10, 5, 1);
        c.exponent = 0.5;
        chung_lu_power_law(&c);
    }
}
