//! Clique planting: overlays dense clusters on a base graph.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{CsrGraph, GraphBuilder, VertexId};

/// Parameters for [`plant_cliques`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedCliques {
    /// How many cliques to plant.
    pub count: usize,
    /// Smallest clique size (inclusive).
    pub min_size: usize,
    /// Largest clique size (inclusive).
    pub max_size: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Returns a new graph equal to `base` plus `config.count` randomly placed
/// cliques with sizes drawn uniformly from `[min_size, max_size]`.
///
/// Planted cliques control how much 4-/5-clique work a dataset stand-in
/// contains: the paper attributes Mico's and LiveJournal's high clique-listing
/// speedups to their many (large) cliques, and Orkut's weaker large-clique
/// results to its "fewer dense vertex clusters" (Section 6.2).
///
/// # Panics
///
/// Panics if `min_size < 2`, `min_size > max_size`, or `max_size` exceeds
/// the vertex count of `base`.
///
/// # Example
///
/// ```
/// use fingers_graph::gen::{erdos_renyi, plant_cliques, PlantedCliques};
/// let base = erdos_renyi(200, 400, 1);
/// let rich = plant_cliques(&base, &PlantedCliques {
///     count: 10, min_size: 4, max_size: 6, seed: 2,
/// });
/// assert!(rich.edge_count() > base.edge_count());
/// ```
pub fn plant_cliques(base: &CsrGraph, config: &PlantedCliques) -> CsrGraph {
    assert!(config.min_size >= 2, "cliques need at least 2 vertices");
    assert!(config.min_size <= config.max_size, "min_size > max_size");
    assert!(
        config.max_size <= base.vertex_count(),
        "clique larger than the graph"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut vertices: Vec<VertexId> = base.vertices().collect();
    let mut builder = GraphBuilder::new()
        .edges(base.edges())
        .vertex_count(base.vertex_count());
    for _ in 0..config.count {
        let size = rng.gen_range(config.min_size..=config.max_size);
        vertices.shuffle(&mut rng);
        let members = &vertices[..size];
        for i in 0..size {
            for j in (i + 1)..size {
                builder = builder.edge(members[i], members[j]);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::erdos_renyi;

    fn base() -> CsrGraph {
        erdos_renyi(100, 150, 7)
    }

    #[test]
    fn zero_cliques_is_identity() {
        let b = base();
        let g = plant_cliques(
            &b,
            &PlantedCliques {
                count: 0,
                min_size: 3,
                max_size: 5,
                seed: 1,
            },
        );
        assert_eq!(g, b);
    }

    #[test]
    fn planting_adds_edges_and_preserves_vertices() {
        let b = base();
        let g = plant_cliques(
            &b,
            &PlantedCliques {
                count: 5,
                min_size: 5,
                max_size: 5,
                seed: 3,
            },
        );
        assert_eq!(g.vertex_count(), b.vertex_count());
        assert!(g.edge_count() > b.edge_count());
    }

    #[test]
    fn planted_clique_members_are_mutually_adjacent() {
        // Plant one clique on an empty base so its members are identifiable
        // as exactly the non-isolated vertices.
        let empty = GraphBuilder::new().vertex_count(50).build();
        let g = plant_cliques(
            &empty,
            &PlantedCliques {
                count: 1,
                min_size: 6,
                max_size: 6,
                seed: 4,
            },
        );
        let members: Vec<VertexId> = g.vertices().filter(|&v| g.degree(v) > 0).collect();
        assert_eq!(members.len(), 6);
        for &u in &members {
            for &v in &members {
                if u != v {
                    assert!(g.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let b = base();
        let c = PlantedCliques {
            count: 4,
            min_size: 3,
            max_size: 7,
            seed: 9,
        };
        assert_eq!(plant_cliques(&b, &c), plant_cliques(&b, &c));
    }

    #[test]
    #[should_panic(expected = "min_size > max_size")]
    fn rejects_inverted_sizes() {
        plant_cliques(
            &base(),
            &PlantedCliques {
                count: 1,
                min_size: 5,
                max_size: 4,
                seed: 0,
            },
        );
    }
}
