//! Regular lattice generation (deterministic, structure-rich test graphs).

use crate::{CsrGraph, GraphBuilder, VertexId};

/// Generates a `rows × cols` 4-neighbor grid graph.
///
/// Grids have no triangles and exactly `(rows−1)(cols−1)` four-cycles —
/// closed-form counts that make them ideal oracle inputs for the cycle
/// patterns (the random generators rarely produce predictable cyc counts).
///
/// # Panics
///
/// Panics if either dimension is zero.
///
/// # Example
///
/// ```
/// let g = fingers_graph::gen::grid(3, 4);
/// assert_eq!(g.vertex_count(), 12);
/// assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
/// ```
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut builder = GraphBuilder::new().vertex_count(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder = builder.edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                builder = builder.edge(id(r, c), id(r + 1, c));
            }
        }
    }
    builder.build()
}

/// Generates a `rows × cols` 8-neighbor (king-move) grid: adds both
/// diagonals to every cell, making it triangle-rich while still fully
/// deterministic.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn king_grid(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut builder = GraphBuilder::new().vertex_count(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder = builder.edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                builder = builder.edge(id(r, c), id(r + 1, c));
                if c + 1 < cols {
                    builder = builder.edge(id(r, c), id(r + 1, c + 1));
                    builder = builder.edge(id(r, c + 1), id(r + 1, c));
                }
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape() {
        let g = grid(3, 5);
        assert_eq!(g.vertex_count(), 15);
        // 3 rows × 4 horizontal + 2 rows × 5 vertical = 12 + 10.
        assert_eq!(g.edge_count(), 22);
        // Interior vertex degree 4, corner degree 2.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(6), 4);
    }

    #[test]
    fn single_cell_grids() {
        assert_eq!(grid(1, 1).edge_count(), 0);
        assert_eq!(grid(1, 4).edge_count(), 3); // a path
        assert_eq!(grid(2, 2).edge_count(), 4); // a 4-cycle
    }

    #[test]
    fn king_grid_adds_diagonals() {
        let g = king_grid(2, 2);
        // 4 sides + 2 diagonals = K4.
        assert_eq!(g.edge_count(), 6);
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        grid(0, 3);
    }
}
