//! R-MAT (recursive matrix) generation — the Graph500 generator family.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

use crate::{CsrGraph, GraphBuilder, VertexId};

/// Parameters for [`rmat`].
#[derive(Debug, Clone, PartialEq)]
pub struct RmatConfig {
    /// log₂ of the vertex count (the generated graph has `2^scale` vertices).
    pub scale: u32,
    /// Target number of distinct undirected edges.
    pub edges: usize,
    /// Quadrant probabilities `(a, b, c)`; `d = 1 − a − b − c`. Graph500
    /// uses `(0.57, 0.19, 0.19)`, which yields heavy skew and community
    /// structure.
    pub probabilities: (f64, f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500-style defaults at the given scale and edge count.
    pub fn graph500(scale: u32, edges: usize, seed: u64) -> Self {
        Self {
            scale,
            edges,
            probabilities: (0.57, 0.19, 0.19),
            seed,
        }
    }
}

/// Generates an R-MAT graph: each edge picks a quadrant of the adjacency
/// matrix recursively `scale` times, producing skewed degrees and
/// self-similar community structure.
///
/// Self loops and duplicates are rejected; generation stops early (with
/// fewer edges than requested) only if rejection stalls, which on
/// reasonable parameters does not happen.
///
/// # Panics
///
/// Panics if the probabilities are negative or sum above 1, or if
/// `scale > 24` (guarding against accidental huge graphs in tests).
pub fn rmat(config: &RmatConfig) -> CsrGraph {
    let (a, b, c) = config.probabilities;
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0,
        "probabilities must be non-negative"
    );
    assert!(
        a + b + c <= 1.0 + 1e-12,
        "probabilities must sum to at most 1"
    );
    assert!(config.scale <= 24, "scale {} too large", config.scale);
    let n: u64 = 1 << config.scale;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut chosen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(config.edges);
    let mut attempts = 0usize;
    let max_attempts = config.edges.saturating_mul(100).max(10_000);
    while chosen.len() < config.edges && attempts < max_attempts {
        attempts += 1;
        let (mut lo_u, mut hi_u) = (0u64, n);
        let (mut lo_v, mut hi_v) = (0u64, n);
        for _ in 0..config.scale {
            let r: f64 = rng.gen();
            let (right, down) = if r < a {
                (false, false)
            } else if r < a + b {
                (true, false)
            } else if r < a + b + c {
                (false, true)
            } else {
                (true, true)
            };
            let mid_u = (lo_u + hi_u) / 2;
            let mid_v = (lo_v + hi_v) / 2;
            if down {
                lo_u = mid_u;
            } else {
                hi_u = mid_u;
            }
            if right {
                lo_v = mid_v;
            } else {
                hi_v = mid_v;
            }
        }
        let (u, v) = (lo_u as VertexId, lo_v as VertexId);
        if u == v {
            continue;
        }
        chosen.insert((u.min(v), u.max(v)));
    }
    GraphBuilder::new()
        .edges(chosen)
        .vertex_count(n as usize)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let g = rmat(&RmatConfig::graph500(10, 4_000, 1));
        assert_eq!(g.vertex_count(), 1024);
        assert_eq!(g.edge_count(), 4_000);
    }

    #[test]
    fn deterministic() {
        let c = RmatConfig::graph500(8, 800, 7);
        assert_eq!(rmat(&c), rmat(&c));
    }

    #[test]
    fn skewed_quadrants_give_hubs() {
        let skewed = rmat(&RmatConfig::graph500(11, 8_000, 3));
        let uniform = rmat(&RmatConfig {
            probabilities: (0.25, 0.25, 0.25),
            ..RmatConfig::graph500(11, 8_000, 3)
        });
        assert!(
            skewed.max_degree() > 2 * uniform.max_degree(),
            "skewed {} vs uniform {}",
            skewed.max_degree(),
            uniform.max_degree()
        );
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn rejects_bad_probabilities() {
        rmat(&RmatConfig {
            probabilities: (0.6, 0.3, 0.3),
            ..RmatConfig::graph500(4, 10, 0)
        });
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn rejects_huge_scale() {
        rmat(&RmatConfig::graph500(30, 10, 0));
    }
}
