//! Erdős–Rényi `G(n, m)` generation.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

use crate::{CsrGraph, GraphBuilder, VertexId};

/// Generates a uniform random graph with `n` vertices and (up to) `m`
/// distinct undirected edges, deterministically from `seed`.
///
/// Degrees concentrate tightly around `2m/n`, giving the low-max-degree
/// profile of the paper's Patents dataset.
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible edges `n(n-1)/2`.
///
/// # Example
///
/// ```
/// let g = fingers_graph::gen::erdos_renyi(100, 300, 7);
/// assert_eq!(g.vertex_count(), 100);
/// assert_eq!(g.edge_count(), 300);
/// ```
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= possible,
        "requested {m} edges but only {possible} possible"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut chosen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(m);
    while chosen.len() < m {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        chosen.insert(key);
    }
    GraphBuilder::new().edges(chosen).vertex_count(n).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = erdos_renyi(50, 123, 1);
        assert_eq!(g.edge_count(), 123);
        assert_eq!(g.vertex_count(), 50);
    }

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(erdos_renyi(64, 200, 9), erdos_renyi(64, 200, 9));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(erdos_renyi(64, 200, 9), erdos_renyi(64, 200, 10));
    }

    #[test]
    fn degrees_are_concentrated() {
        let g = erdos_renyi(1000, 5000, 3);
        // avg degree 10; max should stay well below a power-law tail.
        assert!(g.max_degree() < 40, "max degree {}", g.max_degree());
    }

    #[test]
    fn complete_graph_possible() {
        let g = erdos_renyi(8, 28, 0);
        assert_eq!(g.edge_count(), 28);
        assert_eq!(g.max_degree(), 7);
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn rejects_impossible_edge_count() {
        erdos_renyi(4, 10, 0);
    }
}
