//! Plain-text edge-list parsing and serialization.
//!
//! The format is the SNAP convention the paper's datasets ship in: one edge
//! per line as two whitespace-separated vertex IDs, `#`-prefixed comment
//! lines ignored.
//!
//! Two ingestion paths exist:
//!
//! - [`read_edge_list`] — strict: any malformed line (missing endpoint,
//!   non-numeric token, trailing tokens) is a typed error carrying its
//!   1-based line number.
//! - [`read_edge_list_sanitized`] — repairing: syntax errors are still
//!   typed errors, but semantic dirt (self loops, duplicates, reversed or
//!   unsorted edges, out-of-range IDs, trailing tokens) is repaired and
//!   counted in a [`SanitizeReport`].

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::sanitize::{sanitize_edges, SanitizeOptions, SanitizeReport};
use crate::{CsrGraph, GraphBuilder, VertexId};

/// Error produced when an edge-list input cannot be parsed.
#[derive(Debug)]
pub struct ParseEdgeListError {
    line: usize,
    kind: ParseErrorKind,
}

/// What went wrong on the offending line.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// Fewer than two tokens on a non-comment line.
    MissingEndpoint,
    /// A token did not parse as a vertex ID.
    BadVertexId(String),
    /// More than two tokens on a line (strict mode only; the sanitizing
    /// parser tolerates and counts these).
    TrailingTokens(String),
}

impl ParseEdgeListError {
    /// 1-based line number at which parsing failed (0 for I/O errors that
    /// precede line accounting).
    pub fn line(&self) -> usize {
        self.line
    }

    /// The failure category, for callers that branch on it.
    pub fn kind(&self) -> &ParseErrorKind {
        &self.kind
    }
}

impl fmt::Display for ParseEdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::Io(e) => write!(f, "i/o error reading edge list: {e}"),
            ParseErrorKind::MissingEndpoint => {
                write!(f, "line {}: expected two vertex ids", self.line)
            }
            ParseErrorKind::BadVertexId(tok) => {
                write!(f, "line {}: invalid vertex id {tok:?}", self.line)
            }
            ParseErrorKind::TrailingTokens(tok) => {
                write!(
                    f,
                    "line {}: trailing tokens after the two vertex ids (first extra: {tok:?})",
                    self.line
                )
            }
        }
    }
}

impl Error for ParseEdgeListError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            ParseErrorKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Parses a whitespace-separated edge list into a canonical [`CsrGraph`].
///
/// # Errors
///
/// Returns [`ParseEdgeListError`] if a line has fewer than two tokens, more
/// than two tokens, a token is not a `u32`, or the reader fails.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "# demo graph\n0 1\n1 2\n2 0\n";
/// let g = fingers_graph::io::read_edge_list(text.as_bytes())?;
/// assert_eq!(g.edge_count(), 3);
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph, ParseEdgeListError> {
    let mut builder = GraphBuilder::new();
    for_each_edge(reader, |lineno, u, v, rest| {
        if let Some(extra) = rest {
            return Err(ParseEdgeListError {
                line: lineno,
                kind: ParseErrorKind::TrailingTokens(extra.to_owned()),
            });
        }
        builder = std::mem::take(&mut builder).edge(u, v);
        Ok(())
    })?;
    Ok(builder.build())
}

/// Parses an edge list while repairing semantic dirt, returning the graph
/// and a [`SanitizeReport`] counting every repair.
///
/// Unlike [`read_edge_list`], trailing tokens are tolerated (and counted);
/// self loops, duplicates, reversed/unsorted edges, and IDs above
/// `options.max_vertex_id` are repaired per [`sanitize_edges`].
///
/// # Errors
///
/// Syntax problems remain typed errors with line numbers: missing
/// endpoints, non-numeric IDs, and reader failures.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use fingers_graph::sanitize::SanitizeOptions;
/// let dirty = "2 1\n1 2\n0 0\n0 1 extra\n";
/// let (g, report) =
///     fingers_graph::io::read_edge_list_sanitized(dirty.as_bytes(), &SanitizeOptions::default())?;
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(report.self_loops_dropped, 1);
/// assert_eq!(report.duplicates_dropped, 1);
/// assert_eq!(report.trailing_token_lines, 1);
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list_sanitized<R: BufRead>(
    reader: R,
    options: &SanitizeOptions,
) -> Result<(CsrGraph, SanitizeReport), ParseEdgeListError> {
    let mut edges = Vec::new();
    let mut trailing = 0usize;
    for_each_edge(reader, |_, u, v, rest| {
        if rest.is_some() {
            trailing += 1;
        }
        edges.push((u, v));
        Ok(())
    })?;
    // TooManyVertices is unreachable here: every ID came from a `u32`.
    let (graph, mut report) = match sanitize_edges(edges, options) {
        Ok(pair) => pair,
        Err(e) => unreachable!("u32-bounded edge list cannot overflow the vertex space: {e}"),
    };
    report.trailing_token_lines = trailing;
    Ok((graph, report))
}

/// Shared line-level scanner: comments and blank lines skipped, the first
/// two tokens parsed as vertex IDs, the first extra token (if any) handed
/// to the callback for mode-specific handling.
fn for_each_edge<R, F>(reader: R, mut on_edge: F) -> Result<(), ParseEdgeListError>
where
    R: BufRead,
    F: FnMut(usize, VertexId, VertexId, Option<&str>) -> Result<(), ParseEdgeListError>,
{
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| ParseEdgeListError {
            line: lineno,
            kind: ParseErrorKind::Io(e),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        let u = parse_vertex(tokens.next(), lineno)?;
        let v = parse_vertex(tokens.next(), lineno)?;
        on_edge(lineno, u, v, tokens.next())?;
    }
    Ok(())
}

fn parse_vertex(token: Option<&str>, line: usize) -> Result<VertexId, ParseEdgeListError> {
    let token = token.ok_or(ParseEdgeListError {
        line,
        kind: ParseErrorKind::MissingEndpoint,
    })?;
    token.parse::<VertexId>().map_err(|_| ParseEdgeListError {
        line,
        kind: ParseErrorKind::BadVertexId(token.to_owned()),
    })
}

/// Writes `graph` as an edge list, one `u v` pair per line with `u < v`.
///
/// Accepts any [`Write`]; pass `&mut writer` to keep ownership.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    for (u, v) in graph.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let text = "# comment\n\n0 1\n  \n1 2\n";
        let g = read_edge_list(text.as_bytes()).expect("parse");
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn parse_rejects_trailing_tokens() {
        let err = read_edge_list("0 1\n1 2 7\n".as_bytes()).unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(matches!(err.kind(), ParseErrorKind::TrailingTokens(t) if t == "7"));
        assert!(err.to_string().contains("trailing tokens"));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn parse_rejects_single_token_line() {
        let err = read_edge_list("0\n".as_bytes()).unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("two vertex ids"));
        assert!(matches!(err.kind(), ParseErrorKind::MissingEndpoint));
    }

    #[test]
    fn parse_rejects_non_numeric() {
        let err = read_edge_list("0 x\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid vertex id"));
        assert!(matches!(err.kind(), ParseErrorKind::BadVertexId(t) if t == "x"));
    }

    #[test]
    fn sanitized_parse_repairs_and_counts() {
        let dirty = "# header\n3 3\n2 1\n1 2\n0 1 trailing\n5 0\n";
        let (g, r) = read_edge_list_sanitized(dirty.as_bytes(), &SanitizeOptions::default())
            .expect("sanitized parse");
        assert_eq!(g.edge_count(), 3); // (1,2), (0,1), (0,5)
        assert_eq!(r.self_loops_dropped, 1);
        assert_eq!(r.duplicates_dropped, 1);
        assert_eq!(r.reversed_normalized, 2); // "2 1" and "5 0"
        assert_eq!(r.trailing_token_lines, 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn sanitized_parse_still_rejects_syntax_errors() {
        let err = read_edge_list_sanitized("0 1\nbroken\n".as_bytes(), &SanitizeOptions::default())
            .unwrap_err();
        assert_eq!(err.line(), 2);
        let err =
            read_edge_list_sanitized("0 notanumber\n".as_bytes(), &SanitizeOptions::default())
                .unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::BadVertexId(_)));
    }

    #[test]
    fn sanitized_parse_of_clean_input_is_clean() {
        let text = "0 1\n0 2\n1 2\n";
        let (g, r) = read_edge_list_sanitized(text.as_bytes(), &SanitizeOptions::default())
            .expect("sanitized parse");
        assert!(r.is_clean(), "{r:?}");
        assert_eq!(g, read_edge_list(text.as_bytes()).expect("strict parse"));
    }

    #[test]
    fn round_trip_preserves_graph() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
            .build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let g2 = read_edge_list(buf.as_slice()).expect("read");
        assert_eq!(g, g2);
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ParseEdgeListError>();
    }

    #[test]
    fn file_round_trip() {
        let g = crate::gen::erdos_renyi(40, 90, 5);
        let path = std::env::temp_dir().join("fingers_io_roundtrip.txt");
        {
            let f = std::fs::File::create(&path).expect("create temp file");
            write_edge_list(&g, std::io::BufWriter::new(f)).expect("write");
        }
        let f = std::fs::File::open(&path).expect("open temp file");
        let g2 = read_edge_list(std::io::BufReader::new(f)).expect("read");
        std::fs::remove_file(&path).ok();
        // Isolated trailing vertices are not representable in an edge list.
        assert_eq!(g.edge_count(), g2.edge_count());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn error_reports_correct_line() {
        let text = "0 1\n1 2\nbroken\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert_eq!(err.line(), 3);
    }
}
