//! Plain-text edge-list parsing and serialization.
//!
//! The format is the SNAP convention the paper's datasets ship in: one edge
//! per line as two whitespace-separated vertex IDs, `#`-prefixed comment
//! lines ignored.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::{CsrGraph, GraphBuilder, VertexId};

/// Error produced when an edge-list input cannot be parsed.
#[derive(Debug)]
pub struct ParseEdgeListError {
    line: usize,
    kind: ParseErrorKind,
}

#[derive(Debug)]
enum ParseErrorKind {
    Io(std::io::Error),
    MissingEndpoint,
    BadVertexId(String),
}

impl ParseEdgeListError {
    /// 1-based line number at which parsing failed (0 for I/O errors that
    /// precede line accounting).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseEdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::Io(e) => write!(f, "i/o error reading edge list: {e}"),
            ParseErrorKind::MissingEndpoint => {
                write!(f, "line {}: expected two vertex ids", self.line)
            }
            ParseErrorKind::BadVertexId(tok) => {
                write!(f, "line {}: invalid vertex id {tok:?}", self.line)
            }
        }
    }
}

impl Error for ParseEdgeListError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            ParseErrorKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Parses a whitespace-separated edge list into a canonical [`CsrGraph`].
///
/// # Errors
///
/// Returns [`ParseEdgeListError`] if a line has fewer than two tokens, a
/// token is not a `u32`, or the reader fails.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "# demo graph\n0 1\n1 2\n2 0\n";
/// let g = fingers_graph::io::read_edge_list(text.as_bytes())?;
/// assert_eq!(g.edge_count(), 3);
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph, ParseEdgeListError> {
    let mut builder = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| ParseEdgeListError {
            line: lineno,
            kind: ParseErrorKind::Io(e),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        let u = parse_vertex(tokens.next(), lineno)?;
        let v = parse_vertex(tokens.next(), lineno)?;
        builder = builder.edge(u, v);
    }
    Ok(builder.build())
}

fn parse_vertex(token: Option<&str>, line: usize) -> Result<VertexId, ParseEdgeListError> {
    let token = token.ok_or(ParseEdgeListError {
        line,
        kind: ParseErrorKind::MissingEndpoint,
    })?;
    token.parse::<VertexId>().map_err(|_| ParseEdgeListError {
        line,
        kind: ParseErrorKind::BadVertexId(token.to_owned()),
    })
}

/// Writes `graph` as an edge list, one `u v` pair per line with `u < v`.
///
/// Accepts any [`Write`]; pass `&mut writer` to keep ownership.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    for (u, v) in graph.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let text = "# comment\n\n0 1\n  \n1 2 # trailing tokens beyond two are ignored? no\n";
        // Note: trailing tokens after the first two are ignored by design.
        let g = read_edge_list(text.as_bytes()).expect("parse");
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn parse_rejects_single_token_line() {
        let err = read_edge_list("0\n".as_bytes()).unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("two vertex ids"));
    }

    #[test]
    fn parse_rejects_non_numeric() {
        let err = read_edge_list("0 x\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid vertex id"));
    }

    #[test]
    fn round_trip_preserves_graph() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
            .build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let g2 = read_edge_list(buf.as_slice()).expect("read");
        assert_eq!(g, g2);
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ParseEdgeListError>();
    }

    #[test]
    fn file_round_trip() {
        let g = crate::gen::erdos_renyi(40, 90, 5);
        let path = std::env::temp_dir().join("fingers_io_roundtrip.txt");
        {
            let f = std::fs::File::create(&path).expect("create temp file");
            write_edge_list(&g, std::io::BufWriter::new(f)).expect("write");
        }
        let f = std::fs::File::open(&path).expect("open temp file");
        let g2 = read_edge_list(std::io::BufReader::new(f)).expect("read");
        std::fs::remove_file(&path).ok();
        // Isolated trailing vertices are not representable in an edge list.
        assert_eq!(g.edge_count(), g2.edge_count());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn error_reports_correct_line() {
        let text = "0 1\n1 2\nbroken\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert_eq!(err.line(), 3);
    }
}
