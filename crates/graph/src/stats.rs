//! Graph statistics matching the columns of the paper's Table 1.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::CsrGraph;

/// Summary statistics of a graph: the Table 1 columns plus a couple of
/// structure probes used to validate the dataset stand-ins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// `|V|`.
    pub vertices: usize,
    /// `|E|` (undirected).
    pub edges: usize,
    /// `2|E| / |V|`.
    pub avg_degree: f64,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Total simulated memory footprint in bytes (CSR arrays).
    pub footprint_bytes: u64,
    /// Global clustering coefficient estimated on a vertex sample
    /// (triangle-richness probe for the clique-heavy stand-ins).
    pub clustering_estimate: f64,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    ///
    /// The clustering coefficient is exact for graphs with at most
    /// `sample_cap` vertices and estimated on the first `sample_cap`
    /// vertices otherwise (deterministic, sufficient for calibration).
    pub fn compute(graph: &CsrGraph) -> Self {
        let sample_cap = 2_000;
        let n = graph.vertex_count();
        let sample = n.min(sample_cap);
        let mut closed = 0u64;
        let mut open = 0u64;
        for v in 0..sample as u32 {
            let nbrs = graph.neighbors(v);
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    if graph.has_edge(a, b) {
                        closed += 1;
                    } else {
                        open += 1;
                    }
                }
            }
        }
        let total = closed + open;
        let clustering = if total == 0 {
            0.0
        } else {
            closed as f64 / total as f64
        };
        Self {
            vertices: n,
            edges: graph.edge_count(),
            avg_degree: graph.avg_degree(),
            max_degree: graph.max_degree(),
            footprint_bytes: graph.total_bytes(),
            clustering_estimate: clustering,
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={} |E|={} avg_deg={:.1} max_deg={} footprint={}B clustering≈{:.3}",
            self.vertices,
            self.edges,
            self.avg_degree,
            self.max_degree,
            self.footprint_bytes,
            self.clustering_estimate
        )
    }
}

/// Returns the degree histogram of `graph` as `(degree, count)` pairs in
/// increasing degree order, omitting empty bins.
pub fn degree_histogram(graph: &CsrGraph) -> Vec<(usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for v in graph.vertices() {
        *counts.entry(graph.degree(v)).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> CsrGraph {
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (0, 2), (2, 3)])
            .build()
    }

    #[test]
    fn basic_counts() {
        let s = GraphStats::compute(&triangle_plus_tail());
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.max_degree, 3);
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .build();
        let s = GraphStats::compute(&g);
        assert!((s.clustering_estimate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = GraphBuilder::new().edges([(0, 1), (0, 2), (0, 3)]).build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.clustering_estimate, 0.0);
    }

    #[test]
    fn histogram_sums_to_vertex_count() {
        let g = triangle_plus_tail();
        let h = degree_histogram(&g);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.vertex_count());
        assert_eq!(h, vec![(1, 1), (2, 2), (3, 1)]);
    }

    #[test]
    fn display_is_nonempty() {
        let s = GraphStats::compute(&triangle_plus_tail());
        assert!(!s.to_string().is_empty());
    }
}
