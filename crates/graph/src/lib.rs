//! Graph substrate for the FINGERS reproduction.
//!
//! This crate provides everything the accelerator models and the software
//! miner need from an input graph:
//!
//! - [`CsrGraph`]: a compressed-sparse-row undirected graph whose neighbor
//!   lists are sorted ascending, the representation assumed by the paper's
//!   merge-based set operations (Section 2.1, "Set operations and
//!   representation").
//! - [`GraphBuilder`]: canonicalizes arbitrary edge lists (dedup, self-loop
//!   removal, sorting) into a [`CsrGraph`].
//! - [`gen`]: deterministic synthetic graph generators (Erdős–Rényi,
//!   Chung–Lu power-law, planted cliques) used to build the dataset
//!   stand-ins.
//! - [`datasets`]: scaled stand-ins for the six real-world graphs of the
//!   paper's Table 1 (AstroPh, Mico, Youtube, Patents, LiveJournal, Orkut).
//! - [`stats`]: degree and size statistics matching Table 1's columns.
//! - [`hubs`]: top-k-by-degree hub identification and dense neighbor
//!   bitmaps built from CSR rows (the bitmap kernel tier's substrate).
//! - [`io`]: plain-text edge-list parsing and serialization, with a strict
//!   path (typed [`GraphError`]s with line numbers) and a repairing
//!   [`sanitize`] path that tolerates dirty real-world inputs.
//! - [`error`]: the typed [`GraphError`] returned by every fallible
//!   construction/ingestion API (`CsrGraph::try_from_csr`,
//!   `GraphBuilder::try_build`, the parsers).
//!
//! # Example
//!
//! ```
//! use fingers_graph::{GraphBuilder, CsrGraph};
//!
//! // A triangle plus a pendant vertex (the paper's Figure 1 input graph is
//! // built the same way).
//! let g: CsrGraph = GraphBuilder::new()
//!     .edges([(0, 1), (1, 2), (0, 2), (2, 3)])
//!     .build();
//! assert_eq!(g.vertex_count(), 4);
//! assert_eq!(g.edge_count(), 4);
//! assert_eq!(g.neighbors(2), &[0, 1, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
pub mod datasets;
pub mod error;
pub mod gen;
pub mod hubs;
pub mod io;
pub mod reorder;
pub mod sanitize;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, VertexId};
pub use error::GraphError;
pub use sanitize::{SanitizeOptions, SanitizeReport};
pub use stats::GraphStats;
