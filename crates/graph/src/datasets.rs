//! Scaled stand-ins for the six real-world graphs of the paper's Table 1.
//!
//! The original evaluation uses SNAP datasets (AstroPh, Mico, Youtube,
//! Patents, LiveJournal, Orkut). Those are not redistributable here and are
//! far too large to mine under a software-simulated accelerator, so each is
//! replaced by a deterministic synthetic graph, scaled down ~10–400× in
//! vertex count while preserving the three properties the paper's analysis
//! attributes per-graph effects to:
//!
//! 1. **degree shape** — heavy power-law tails for Youtube/LiveJournal/Orkut,
//!    tight low-max-degree distribution for Patents, moderate for AstroPh;
//! 2. **size relative to the shared cache** — AstroPh and Mico fit, the other
//!    four exceed it (the simulator scales cache capacities by the same
//!    factor, see `fingers-sim`);
//! 3. **clique richness** — Mico and LiveJournal get planted dense clusters,
//!    Orkut deliberately fewer (Section 6.2 "it has fewer dense vertex
//!    clusters").
//!
//! The achieved statistics are printed next to Table 1's real values by
//! `cargo run -p fingers-bench --bin table1_datasets`.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::gen::{chung_lu_power_law, plant_cliques, ChungLuConfig, PlantedCliques};
use crate::{CsrGraph, GraphStats};

/// The six evaluation graphs of the paper's Table 1, as scaled stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// AstroPh (`As`): small collaboration network, fits on chip.
    AstroPh,
    /// Mico (`Mi`): small, clique-rich.
    Mico,
    /// Youtube (`Yo`): large, very low average degree, huge hubs.
    Youtube,
    /// Patents (`Pa`): large, low maximum degree.
    Patents,
    /// LiveJournal (`Lj`): large, power-law, many large cliques.
    LiveJournal,
    /// Orkut (`Or`): large, very high average degree, fewer dense clusters.
    Orkut,
}

/// Table-1 row of the original paper (real dataset statistics), for
/// side-by-side reporting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperRow {
    /// Vertex count of the real dataset.
    pub vertices: f64,
    /// Undirected edge count of the real dataset.
    pub edges: f64,
    /// Average degree reported in Table 1.
    pub avg_degree: f64,
    /// Maximum degree reported in Table 1.
    pub max_degree: usize,
}

impl Dataset {
    /// All six datasets in the paper's Table 1 order.
    pub const ALL: [Dataset; 6] = [
        Dataset::AstroPh,
        Dataset::Mico,
        Dataset::Youtube,
        Dataset::Patents,
        Dataset::LiveJournal,
        Dataset::Orkut,
    ];

    /// The two-letter abbreviation used throughout the paper's figures.
    pub fn abbrev(self) -> &'static str {
        match self {
            Dataset::AstroPh => "As",
            Dataset::Mico => "Mi",
            Dataset::Youtube => "Yo",
            Dataset::Patents => "Pa",
            Dataset::LiveJournal => "Lj",
            Dataset::Orkut => "Or",
        }
    }

    /// Full dataset name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::AstroPh => "AstroPh",
            Dataset::Mico => "Mico",
            Dataset::Youtube => "Youtube",
            Dataset::Patents => "Patents",
            Dataset::LiveJournal => "LiveJournal",
            Dataset::Orkut => "Orkut",
        }
    }

    /// Real-dataset statistics from the paper's Table 1.
    pub fn paper_row(self) -> PaperRow {
        match self {
            Dataset::AstroPh => PaperRow {
                vertices: 18.8e3,
                edges: 198e3,
                avg_degree: 21.1,
                max_degree: 504,
            },
            Dataset::Mico => PaperRow {
                vertices: 80.0e3,
                edges: 432e3,
                avg_degree: 10.8,
                max_degree: 936,
            },
            Dataset::Youtube => PaperRow {
                vertices: 1.1e6,
                edges: 3.0e6,
                avg_degree: 5.3,
                max_degree: 28_754,
            },
            Dataset::Patents => PaperRow {
                vertices: 3.8e6,
                edges: 16.5e6,
                avg_degree: 8.8,
                max_degree: 793,
            },
            Dataset::LiveJournal => PaperRow {
                vertices: 4.8e6,
                edges: 42.9e6,
                avg_degree: 17.7,
                max_degree: 20_333,
            },
            Dataset::Orkut => PaperRow {
                vertices: 3.1e6,
                edges: 117.2e6,
                avg_degree: 76.3,
                max_degree: 33_313,
            },
        }
    }

    /// Whether the stand-in (like the real dataset) fits in the (scaled)
    /// shared cache — the property Section 6.2 uses to split the analysis.
    pub fn fits_in_shared_cache(self) -> bool {
        matches!(self, Dataset::AstroPh | Dataset::Mico)
    }

    /// Generates the stand-in graph. Deterministic; takes up to a couple of
    /// seconds for the largest stand-ins.
    pub fn load(self) -> CsrGraph {
        match self {
            Dataset::AstroPh => {
                // Small collaboration network: moderate tail + small co-author
                // cliques; fits in the scaled shared cache.
                let base = chung_lu_power_law(&ChungLuConfig {
                    vertices: 1_800,
                    edges: 16_000,
                    exponent: 2.5,
                    max_degree_fraction: 0.05,
                    seed: 0xA57,
                });
                plant_cliques(
                    &base,
                    &PlantedCliques {
                        count: 150,
                        min_size: 3,
                        max_size: 5,
                        seed: 0xA58,
                    },
                )
            }
            Dataset::Mico => {
                // Clique-rich: strong community planting on a mild tail.
                let base = chung_lu_power_law(&ChungLuConfig {
                    vertices: 4_000,
                    edges: 12_000,
                    exponent: 2.5,
                    max_degree_fraction: 0.06,
                    seed: 0x310,
                });
                plant_cliques(
                    &base,
                    &PlantedCliques {
                        count: 700,
                        min_size: 4,
                        max_size: 9,
                        seed: 0x311,
                    },
                )
            }
            Dataset::Youtube => {
                // Large, lowest average degree, enormous hubs relative to the
                // average (paper: avg 5.3, max 28 754).
                chung_lu_power_law(&ChungLuConfig {
                    vertices: 20_000,
                    edges: 54_000,
                    exponent: 1.9,
                    max_degree_fraction: 0.05,
                    seed: 0x707,
                })
            }
            Dataset::Patents => {
                // Large with "very few high-degree vertices": a steep
                // power-law (large exponent) with a tight hub cap gives the
                // real Patents' max/avg degree ratio (~90 in Table 1,
                // ~15–20 here) without Youtube-style giant hubs. A sprinkle
                // of small cliques adds citation-cluster structure.
                let base = chung_lu_power_law(&ChungLuConfig {
                    vertices: 32_000,
                    edges: 136_000,
                    exponent: 3.0,
                    max_degree_fraction: 0.005,
                    seed: 0x9A7,
                });
                plant_cliques(
                    &base,
                    &PlantedCliques {
                        count: 700,
                        min_size: 3,
                        max_size: 5,
                        seed: 0x9A8,
                    },
                )
            }
            Dataset::LiveJournal => {
                // Large power-law with many large planted cliques.
                let base = chung_lu_power_law(&ChungLuConfig {
                    vertices: 10_000,
                    edges: 80_000,
                    exponent: 2.2,
                    max_degree_fraction: 0.12,
                    seed: 0x1,
                });
                plant_cliques(
                    &base,
                    &PlantedCliques {
                        count: 380,
                        min_size: 5,
                        max_size: 10,
                        seed: 0x2,
                    },
                )
            }
            Dataset::Orkut => {
                // Very high average degree, heavy tail, but deliberately few
                // planted dense clusters.
                let base = chung_lu_power_law(&ChungLuConfig {
                    vertices: 2_500,
                    edges: 90_000,
                    exponent: 2.5,
                    max_degree_fraction: 0.15,
                    seed: 0x0F1,
                });
                plant_cliques(
                    &base,
                    &PlantedCliques {
                        count: 40,
                        min_size: 4,
                        max_size: 6,
                        seed: 0x0F2,
                    },
                )
            }
        }
    }

    /// Computed statistics of the stand-in.
    pub fn stand_in_stats(self) -> GraphStats {
        GraphStats::compute(&self.load())
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_load_and_are_nonempty() {
        for d in Dataset::ALL {
            let g = d.load();
            assert!(g.vertex_count() > 0, "{d} empty");
            assert!(g.edge_count() > 0, "{d} no edges");
        }
    }

    #[test]
    fn loads_are_deterministic() {
        assert_eq!(Dataset::AstroPh.load(), Dataset::AstroPh.load());
    }

    #[test]
    fn avg_degree_ordering_matches_table1() {
        // Paper ordering of average degrees: Yo < Pa < Mi < Lj < As < Or.
        let avg = |d: Dataset| d.load().avg_degree();
        assert!(avg(Dataset::Youtube) < avg(Dataset::Patents));
        assert!(avg(Dataset::Patents) < avg(Dataset::LiveJournal));
        assert!(avg(Dataset::LiveJournal) < avg(Dataset::AstroPh));
        assert!(avg(Dataset::AstroPh) < avg(Dataset::Orkut));
    }

    #[test]
    fn patents_has_low_max_degree() {
        // Table 1 ratios max/avg: Patents ≈ 90, Youtube ≈ 5 400. The
        // stand-ins preserve the *ordering and separation*: Patents' hubs
        // are modest, Youtube's are an order of magnitude more extreme.
        let pa = Dataset::Patents.load();
        let pa_ratio = pa.max_degree() as f64 / pa.avg_degree();
        assert!(
            pa_ratio < 50.0,
            "Patents stand-in too hubby (max {}, avg {:.1})",
            pa.max_degree(),
            pa.avg_degree()
        );
        let yo = Dataset::Youtube.load();
        let yo_ratio = yo.max_degree() as f64 / yo.avg_degree();
        assert!(
            yo_ratio > 5.0 * pa_ratio,
            "Youtube ({yo_ratio:.0}) should dwarf Patents ({pa_ratio:.0})"
        );
    }

    #[test]
    fn youtube_has_huge_hubs() {
        let g = Dataset::Youtube.load();
        assert!(
            (g.max_degree() as f64) > 50.0 * g.avg_degree(),
            "Youtube stand-in should be extremely hubby (max {}, avg {:.1})",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn cache_fit_split_matches_section_6_2() {
        // "As and Mi are small graphs that all fit in the on-chip shared
        // cache"; the scaled shared cache is 512 KiB (see fingers-sim).
        let scaled_shared_cache = 512 * 1024;
        for d in Dataset::ALL {
            let fits = d.load().total_bytes() <= scaled_shared_cache;
            assert_eq!(
                fits,
                d.fits_in_shared_cache(),
                "{d}: footprint {} vs cache {}",
                d.load().total_bytes(),
                scaled_shared_cache
            );
        }
    }

    #[test]
    fn mico_is_more_clique_rich_than_orkut() {
        // Compare clustering normalized by edge density: how much more
        // clustered than a random graph of the same density each stand-in is.
        // This is the "dense vertex clusters" property of Section 6.2.
        let enrichment = |d: Dataset| {
            let s = GraphStats::compute(&d.load());
            let density = s.avg_degree / (s.vertices as f64 - 1.0);
            s.clustering_estimate / density
        };
        let mi = enrichment(Dataset::Mico);
        let or = enrichment(Dataset::Orkut);
        assert!(mi > 2.0 * or, "Mi enrichment {mi:.1} vs Or {or:.1}");
    }
}
