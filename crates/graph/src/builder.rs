//! Canonicalizing builder for [`CsrGraph`].

use crate::csr::{CsrGraph, VertexId};
use crate::error::GraphError;

/// Builds a [`CsrGraph`] from an arbitrary collection of undirected edges.
///
/// The builder accepts edges in any order, with duplicates, in either
/// direction, and with self loops; it canonicalizes them into the sorted,
/// deduplicated, symmetric CSR form the miners require. Self loops are
/// dropped (the paper's input graphs are undirected with no self loops or
/// duplicated edges, Section 5).
///
/// # Example
///
/// ```
/// use fingers_graph::GraphBuilder;
///
/// let g = GraphBuilder::new()
///     .edge(0, 1)
///     .edge(1, 0) // duplicate in the other direction: ignored
///     .edge(1, 1) // self loop: ignored
///     .edges([(1, 2)])
///     .build();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    min_vertex_count: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one undirected edge.
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many undirected edges.
    pub fn edges<I>(mut self, iter: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        self.edges.extend(iter);
        self
    }

    /// Forces the graph to contain at least `n` vertices even if the highest
    /// ID seen in an edge is smaller (trailing vertices become isolated).
    pub fn vertex_count(mut self, n: usize) -> Self {
        self.min_vertex_count = n;
        self
    }

    /// Finalizes the canonical CSR graph.
    ///
    /// # Panics
    ///
    /// Panics if the requested vertex count exceeds what [`VertexId`] can
    /// address — a thin wrapper over [`GraphBuilder::try_build`].
    pub fn build(self) -> CsrGraph {
        match self.try_build() {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`GraphBuilder::build`].
    ///
    /// Canonicalization itself cannot fail (duplicates, reversals, and self
    /// loops are repaired by construction), so the only error is a vertex
    /// count beyond [`VertexId`] range — possible via
    /// [`GraphBuilder::vertex_count`] on 64-bit hosts.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::TooManyVertices`] when the graph would need
    /// more vertices than `VertexId::MAX + 1`.
    pub fn try_build(self) -> Result<CsrGraph, GraphError> {
        let mut n = self.min_vertex_count;
        for &(u, v) in &self.edges {
            n = n.max(u as usize + 1).max(v as usize + 1);
        }
        if n > VertexId::MAX as usize + 1 {
            return Err(GraphError::TooManyVertices { requested: n });
        }

        // Symmetrize, drop self loops, canonicalize direction.
        let mut sym: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.edges.len() * 2);
        for &(u, v) in &self.edges {
            if u == v {
                continue;
            }
            sym.push((u, v));
            sym.push((v, u));
        }
        sym.sort_unstable();
        sym.dedup();

        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in &sym {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let neighbors: Vec<VertexId> = sym.into_iter().map(|(_, v)| v).collect();
        // The arrays are canonical by construction; a validation failure
        // here would be a builder bug, so the panicking constructor is
        // deliberate.
        Ok(CsrGraph::from_csr(offsets, neighbors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_gives_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn duplicates_and_reversals_collapse() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 0), (0, 1), (2, 0), (0, 2)])
            .build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn self_loops_are_dropped() {
        let g = GraphBuilder::new().edges([(0, 0), (0, 1), (1, 1)]).build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn vertex_count_pads_isolated_vertices() {
        let g = GraphBuilder::new().edge(0, 1).vertex_count(10).build();
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn symmetry_holds_after_build() {
        let g = GraphBuilder::new().edges([(3, 1), (1, 2), (4, 0)]).build();
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                assert!(g.neighbors(v).contains(&u));
            }
        }
    }

    #[test]
    fn try_build_rejects_unaddressable_vertex_counts() {
        let err = GraphBuilder::new()
            .vertex_count(VertexId::MAX as usize + 2)
            .try_build()
            .unwrap_err();
        assert!(matches!(err, GraphError::TooManyVertices { .. }));
        let g = GraphBuilder::new().edge(0, 1).try_build().expect("clean");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        let g = GraphBuilder::new()
            .edges([(0, 5), (0, 2), (0, 9), (0, 1)])
            .build();
        assert_eq!(g.neighbors(0), &[1, 2, 5, 9]);
    }
}
