//! Compressed-sparse-row undirected graph with sorted neighbor lists.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// Identifier of a vertex in an input graph.
///
/// The paper's symmetric-breaking restrictions compare raw vertex IDs
/// (e.g. `u1 > u2` in Figure 1), so IDs are plain integers rather than an
/// opaque handle.
pub type VertexId = u32;

/// An undirected graph in compressed-sparse-row form.
///
/// Invariants (established by [`GraphBuilder`](crate::GraphBuilder) and
/// relied upon by every consumer):
///
/// - neighbor lists are sorted ascending and duplicate-free;
/// - there are no self loops;
/// - the graph is symmetric: `v ∈ N(u)` iff `u ∈ N(v)`.
///
/// Sorted adjacency is what makes the paper's one-pass merge-based set
/// intersection/subtraction possible without any explicit sort at mining
/// time (Section 2.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// Prefer [`GraphBuilder`](crate::GraphBuilder) unless the arrays are
    /// already canonical.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are malformed — a thin wrapper over
    /// [`CsrGraph::try_from_csr`] for callers whose arrays are canonical by
    /// construction (the builder, the generators).
    pub fn from_csr(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        match Self::try_from_csr(offsets, neighbors) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`CsrGraph::from_csr`]: validates the arrays
    /// and returns a typed [`GraphError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// `offsets` must be monotonically non-decreasing, start at 0, and end
    /// at `neighbors.len()`; every neighbor list must be strictly
    /// increasing with in-range IDs and no self loops. The first violation
    /// encountered is reported with its vertex.
    pub fn try_from_csr(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Result<Self, GraphError> {
        let last = match offsets.last() {
            Some(&last) => last,
            None => {
                return Err(GraphError::InvalidOffsets {
                    reason: "offsets must contain at least [0]".to_owned(),
                })
            }
        };
        if offsets[0] != 0 {
            return Err(GraphError::InvalidOffsets {
                reason: "offsets must start at 0".to_owned(),
            });
        }
        if last != neighbors.len() {
            return Err(GraphError::InvalidOffsets {
                reason: format!(
                    "offsets must end at neighbors.len() ({} != {})",
                    last,
                    neighbors.len()
                ),
            });
        }
        let n = offsets.len() - 1;
        if n > VertexId::MAX as usize + 1 {
            return Err(GraphError::TooManyVertices { requested: n });
        }
        for v in 0..n {
            if offsets[v] > offsets[v + 1] {
                return Err(GraphError::InvalidOffsets {
                    reason: format!("offsets must be monotonic (decrease at vertex {v})"),
                });
            }
            if offsets[v + 1] > neighbors.len() {
                return Err(GraphError::InvalidOffsets {
                    reason: format!(
                        "offset {} at vertex {v} exceeds the neighbor array length {}",
                        offsets[v + 1],
                        neighbors.len()
                    ),
                });
            }
            let list = &neighbors[offsets[v]..offsets[v + 1]];
            for (i, &u) in list.iter().enumerate() {
                if u as usize >= n {
                    return Err(GraphError::NeighborOutOfRange {
                        vertex: v,
                        neighbor: u,
                        vertex_count: n,
                    });
                }
                if u as usize == v {
                    return Err(GraphError::SelfLoop { vertex: v });
                }
                if i > 0 && list[i - 1] >= u {
                    return Err(GraphError::UnsortedNeighbors { vertex: v });
                }
            }
        }
        Ok(Self { offsets, neighbors })
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// The sorted neighbor list `N(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`, i.e. `|N(v)|`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Whether the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.vertex_count() || v as usize >= self.vertex_count() {
            return false;
        }
        // Probe the shorter list for cache friendliness.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates over all vertex IDs.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.vertex_count() as VertexId
    }

    /// Iterates over each undirected edge exactly once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Byte address of the start of `N(v)` in the simulated memory layout.
    ///
    /// The accelerator models lay the neighbor array out contiguously in
    /// DRAM after the offset array; this gives each list a stable address
    /// for cache simulation.
    pub fn neighbor_list_addr(&self, v: VertexId) -> u64 {
        (self.offsets[v as usize] * std::mem::size_of::<VertexId>()) as u64
    }

    /// Byte size of `N(v)` in the simulated memory layout.
    pub fn neighbor_list_bytes(&self, v: VertexId) -> u64 {
        (self.degree(v) * std::mem::size_of::<VertexId>()) as u64
    }

    /// Total bytes of the neighbor array (the streamed portion of the graph).
    pub fn neighbor_array_bytes(&self) -> u64 {
        (self.neighbors.len() * std::mem::size_of::<VertexId>()) as u64
    }

    /// Total bytes of the CSR structure (offsets + neighbors), i.e. the
    /// graph's simulated memory footprint.
    pub fn total_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<usize>()) as u64 + self.neighbor_array_bytes()
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2|E| / |V|` (0.0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.vertex_count() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn paper_figure1_graph() -> CsrGraph {
        // The 5-vertex input graph of the paper's Figure 1 (1-indexed there;
        // we keep the same IDs by allocating vertex 0 as isolated).
        GraphBuilder::new()
            .edges([(1, 2), (1, 3), (2, 3), (2, 4), (2, 5), (3, 4), (3, 5)])
            .build()
    }

    #[test]
    fn figure1_graph_shape() {
        let g = paper_figure1_graph();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.neighbors(2), &[1, 3, 4, 5]);
        assert_eq!(g.neighbors(1), &[2, 3]);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = paper_figure1_graph();
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
            }
        }
        assert!(g.has_edge(2, 5));
        assert!(!g.has_edge(4, 5));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn has_edge_out_of_range_is_false() {
        let g = paper_figure1_graph();
        assert!(!g.has_edge(0, 100));
        assert!(!g.has_edge(100, 0));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = paper_figure1_graph();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        for &(u, v) in &edges {
            assert!(u < v);
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn memory_layout_addresses_are_contiguous() {
        let g = paper_figure1_graph();
        let mut expected = 0u64;
        for v in g.vertices() {
            assert_eq!(g.neighbor_list_addr(v), expected);
            expected += g.neighbor_list_bytes(v);
        }
        assert_eq!(expected, g.neighbor_array_bytes());
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn from_csr_rejects_self_loops() {
        CsrGraph::from_csr(vec![0, 1], vec![0]);
    }

    #[test]
    #[should_panic(expected = "not strictly sorted")]
    fn from_csr_rejects_unsorted_lists() {
        CsrGraph::from_csr(vec![0, 2, 3, 4], vec![2, 1, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_csr_rejects_out_of_range() {
        CsrGraph::from_csr(vec![0, 1, 2], vec![5, 0]);
    }

    #[test]
    fn try_from_csr_returns_typed_errors() {
        use crate::error::GraphError;
        assert!(matches!(
            CsrGraph::try_from_csr(vec![0, 1], vec![0]),
            Err(GraphError::SelfLoop { vertex: 0 })
        ));
        assert!(matches!(
            CsrGraph::try_from_csr(vec![0, 2, 3, 4], vec![2, 1, 0, 0]),
            Err(GraphError::UnsortedNeighbors { vertex: 0 })
        ));
        assert!(matches!(
            CsrGraph::try_from_csr(vec![0, 1, 2], vec![5, 0]),
            Err(GraphError::NeighborOutOfRange {
                vertex: 0,
                neighbor: 5,
                vertex_count: 2
            })
        ));
        assert!(matches!(
            CsrGraph::try_from_csr(vec![], vec![]),
            Err(GraphError::InvalidOffsets { .. })
        ));
        assert!(matches!(
            CsrGraph::try_from_csr(vec![0, 2, 1, 2], vec![1, 2]),
            Err(GraphError::InvalidOffsets { .. })
        ));
        let g = CsrGraph::try_from_csr(vec![0, 1, 2], vec![1, 0]).expect("valid CSR");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn degree_statistics() {
        let g = paper_figure1_graph();
        assert_eq!(g.max_degree(), 4);
        let avg = g.avg_degree();
        assert!((avg - 14.0 / 6.0).abs() < 1e-12);
    }
}
