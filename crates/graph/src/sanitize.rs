//! Repairing ingestion for dirty edge lists.
//!
//! Real SNAP-style inputs routinely contain self loops, duplicate edges
//! (including the same edge in both directions), unsorted adjacency, and
//! occasionally IDs outside the expected range. The strict parser
//! ([`crate::io::read_edge_list`]) rejects such inputs with typed errors;
//! the sanitize path in this module *repairs* them instead, and returns a
//! [`SanitizeReport`] counting every repair so callers can decide whether
//! the input was trustworthy (`--strict` in the CLI refuses any repair).

use crate::csr::{CsrGraph, VertexId};
use crate::error::GraphError;
use crate::GraphBuilder;

/// Knobs for the sanitizing ingestion path.
#[derive(Debug, Clone, Default)]
pub struct SanitizeOptions {
    /// Drop edges with an endpoint greater than this ID (`None` accepts
    /// the full [`VertexId`] range). Lets callers bound the vertex space
    /// when IDs beyond a known count indicate corruption.
    pub max_vertex_id: Option<VertexId>,
}

impl SanitizeOptions {
    /// Options bounding vertex IDs at `max` (inclusive).
    pub fn with_max_vertex_id(max: VertexId) -> Self {
        Self {
            max_vertex_id: Some(max),
        }
    }
}

/// Tally of every repair the sanitizer performed.
///
/// A report with all counters zero ([`SanitizeReport::is_clean`]) means the
/// input was already canonical: no information was discarded and the strict
/// parser would have accepted it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Edges examined (one per non-comment, non-blank input line).
    pub edges_seen: usize,
    /// Edges kept after all repairs.
    pub edges_kept: usize,
    /// Self loops (`u u`) dropped.
    pub self_loops_dropped: usize,
    /// Parallel edges dropped (repeats of an already-seen undirected edge,
    /// in either direction).
    pub duplicates_dropped: usize,
    /// Edges dropped because an endpoint exceeded
    /// [`SanitizeOptions::max_vertex_id`].
    pub out_of_range_dropped: usize,
    /// Edges given as `u v` with `u > v`, normalized to canonical order.
    pub reversed_normalized: usize,
    /// Kept edges that arrived out of ascending canonical order — the
    /// "adjacency needed sorting" measure.
    pub out_of_order_edges: usize,
    /// Input lines carrying more than two tokens (tolerated by the
    /// sanitizing parser, rejected by the strict one).
    pub trailing_token_lines: usize,
}

impl SanitizeReport {
    /// Whether the input needed no repair at all.
    pub fn is_clean(&self) -> bool {
        self.self_loops_dropped == 0
            && self.duplicates_dropped == 0
            && self.out_of_range_dropped == 0
            && self.reversed_normalized == 0
            && self.out_of_order_edges == 0
            && self.trailing_token_lines == 0
    }

    /// One-line human-readable summary (the CLI prints this under
    /// `--sanitize`).
    pub fn summary(&self) -> String {
        format!(
            "sanitize: kept {}/{} edges ({} self-loops, {} duplicates, {} out-of-range \
             dropped; {} reversed, {} out-of-order, {} trailing-token lines repaired)",
            self.edges_kept,
            self.edges_seen,
            self.self_loops_dropped,
            self.duplicates_dropped,
            self.out_of_range_dropped,
            self.reversed_normalized,
            self.out_of_order_edges,
            self.trailing_token_lines,
        )
    }
}

/// Repairs a raw undirected edge sequence into a canonical [`CsrGraph`],
/// counting every repair.
///
/// Repairs, in order: bounds-check IDs (drop), drop self loops, normalize
/// direction, sort, and dedup parallel edges. The resulting graph is
/// identical to what [`GraphBuilder`] would produce from the same edges
/// (minus the out-of-range ones) — sanitization changes *accounting*, never
/// the canonical graph.
///
/// # Errors
///
/// Returns [`GraphError::TooManyVertices`] when the kept IDs exceed the
/// addressable vertex range (only possible with `min_vertex_count` via the
/// builder; kept here for parity with [`GraphBuilder::try_build`]).
pub fn sanitize_edges<I>(
    edges: I,
    options: &SanitizeOptions,
) -> Result<(CsrGraph, SanitizeReport), GraphError>
where
    I: IntoIterator<Item = (VertexId, VertexId)>,
{
    let mut report = SanitizeReport::default();
    let mut kept: Vec<(VertexId, VertexId)> = Vec::new();
    let mut prev: Option<(VertexId, VertexId)> = None;
    for (u, v) in edges {
        report.edges_seen += 1;
        if let Some(cap) = options.max_vertex_id {
            if u > cap || v > cap {
                report.out_of_range_dropped += 1;
                continue;
            }
        }
        if u == v {
            report.self_loops_dropped += 1;
            continue;
        }
        let pair = if u < v {
            (u, v)
        } else {
            report.reversed_normalized += 1;
            (v, u)
        };
        if let Some(p) = prev {
            if pair < p {
                report.out_of_order_edges += 1;
            }
        }
        prev = Some(pair);
        kept.push(pair);
    }
    kept.sort_unstable();
    let before = kept.len();
    kept.dedup();
    report.duplicates_dropped = before - kept.len();
    report.edges_kept = kept.len();
    let graph = GraphBuilder::new().edges(kept).try_build()?;
    Ok((graph, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_input_reports_clean() {
        let (g, r) = sanitize_edges([(0, 1), (0, 2), (1, 2)], &SanitizeOptions::default())
            .expect("sanitize");
        assert!(r.is_clean(), "{r:?}");
        assert_eq!(r.edges_seen, 3);
        assert_eq!(r.edges_kept, 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn every_repair_is_counted() {
        let edges = [
            (3u32, 3u32), // self loop
            (2, 1),       // reversed (and out of order relative to nothing yet kept)
            (1, 2),       // duplicate of the above
            (0, 1),       // out of order (arrives after (1,2))
            (9, 0),       // out of range under cap 5, would otherwise be reversed
        ];
        let opts = SanitizeOptions::with_max_vertex_id(5);
        let (g, r) = sanitize_edges(edges, &opts).expect("sanitize");
        assert_eq!(r.edges_seen, 5);
        assert_eq!(r.self_loops_dropped, 1);
        assert_eq!(r.reversed_normalized, 1);
        assert_eq!(r.duplicates_dropped, 1);
        assert_eq!(r.out_of_range_dropped, 1);
        assert_eq!(r.out_of_order_edges, 1);
        assert_eq!(r.edges_kept, 2);
        assert!(!r.is_clean());
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn sanitized_graph_equals_builder_graph() {
        // Sanitization never changes the canonical graph, only the report.
        let dirty = [(4u32, 1u32), (1, 4), (2, 2), (0, 4), (1, 0), (0, 1)];
        let (g, _) = sanitize_edges(dirty, &SanitizeOptions::default()).expect("sanitize");
        let clean = GraphBuilder::new().edges(dirty).build();
        assert_eq!(g, clean);
    }

    #[test]
    fn summary_mentions_counts() {
        let (_, r) =
            sanitize_edges([(1, 1), (0, 1)], &SanitizeOptions::default()).expect("sanitize");
        let s = r.summary();
        assert!(s.contains("1/2 edges"), "{s}");
        assert!(s.contains("1 self-loops"), "{s}");
    }
}
