//! Vertex reordering (relabeling) preprocessing.
//!
//! Pattern-aware miners commonly relabel the input graph before mining:
//! a degree-descending order interacts with symmetry-breaking restrictions
//! (`u_a < u_b` on IDs) to shrink candidate sets early, and a locality
//! order improves cache behaviour. All orders preserve embedding counts
//! (counts are isomorphism-invariant — property-tested in the workspace
//! tests); only performance changes.

use crate::{CsrGraph, GraphBuilder, VertexId};

/// A relabeled graph together with the mapping back to original IDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabeled {
    /// The relabeled graph.
    pub graph: CsrGraph,
    /// `old_of[new_id] = old_id`.
    pub old_of: Vec<VertexId>,
    /// `new_of[old_id] = new_id`.
    pub new_of: Vec<VertexId>,
}

impl Relabeled {
    /// Translates an embedding on the relabeled graph back to original IDs.
    pub fn to_original(&self, embedding: &[VertexId]) -> Vec<VertexId> {
        embedding.iter().map(|&v| self.old_of[v as usize]).collect()
    }
}

/// Relabels `graph` so that new ID order follows `order` (a permutation of
/// the old IDs; `order[i]` becomes new vertex `i`).
///
/// # Panics
///
/// Panics if `order` is not a permutation of the vertex IDs.
pub fn relabel(graph: &CsrGraph, order: &[VertexId]) -> Relabeled {
    let n = graph.vertex_count();
    assert_eq!(order.len(), n, "order must cover every vertex");
    let mut new_of = vec![VertexId::MAX; n];
    for (new_id, &old_id) in order.iter().enumerate() {
        assert!(
            (old_id as usize) < n && new_of[old_id as usize] == VertexId::MAX,
            "order is not a permutation"
        );
        new_of[old_id as usize] = new_id as VertexId;
    }
    let graph_new = GraphBuilder::new()
        .edges(
            graph
                .edges()
                .map(|(u, v)| (new_of[u as usize], new_of[v as usize])),
        )
        .vertex_count(n)
        .build();
    Relabeled {
        graph: graph_new,
        old_of: order.to_vec(),
        new_of,
    }
}

/// Relabels so that vertex IDs are in descending degree order (hubs get the
/// smallest IDs). With `u_a < u_b` restrictions this forces the restricted
/// level to iterate the high-ID (low-degree) tail — the classical
/// degree-ordering optimization for clique mining.
pub fn by_degree_descending(graph: &CsrGraph) -> Relabeled {
    let mut order: Vec<VertexId> = graph.vertices().collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    relabel(graph, &order)
}

/// Relabels so that vertex IDs are in ascending degree order.
pub fn by_degree_ascending(graph: &CsrGraph) -> Relabeled {
    let mut order: Vec<VertexId> = graph.vertices().collect();
    order.sort_by_key(|&v| (graph.degree(v), v));
    relabel(graph, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::erdos_renyi;

    #[test]
    fn relabel_preserves_structure() {
        let g = erdos_renyi(30, 90, 3);
        let r = by_degree_descending(&g);
        assert_eq!(r.graph.vertex_count(), g.vertex_count());
        assert_eq!(r.graph.edge_count(), g.edge_count());
        // Edges map consistently.
        for (u, v) in g.edges() {
            assert!(r.graph.has_edge(r.new_of[u as usize], r.new_of[v as usize]));
        }
    }

    #[test]
    fn degree_descending_sorts_degrees() {
        let g = erdos_renyi(40, 120, 7);
        let r = by_degree_descending(&g);
        for w in 0..r.graph.vertex_count() - 1 {
            assert!(
                r.graph.degree(w as VertexId) >= r.graph.degree(w as VertexId + 1),
                "degrees not descending at {w}"
            );
        }
    }

    #[test]
    fn ascending_is_reverse_of_descending_degrees() {
        let g = erdos_renyi(25, 70, 1);
        let asc = by_degree_ascending(&g);
        let desc = by_degree_descending(&g);
        let d_asc: Vec<usize> = asc.graph.vertices().map(|v| asc.graph.degree(v)).collect();
        let mut d_desc: Vec<usize> = desc
            .graph
            .vertices()
            .map(|v| desc.graph.degree(v))
            .collect();
        d_desc.reverse();
        assert_eq!(d_asc, d_desc);
    }

    #[test]
    fn mapping_round_trips() {
        let g = erdos_renyi(20, 50, 9);
        let r = by_degree_descending(&g);
        for v in g.vertices() {
            assert_eq!(r.old_of[r.new_of[v as usize] as usize], v);
        }
        let emb = vec![r.new_of[3], r.new_of[7]];
        assert_eq!(r.to_original(&emb), vec![3, 7]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_order_rejected() {
        let g = erdos_renyi(5, 4, 0);
        relabel(&g, &[0, 0, 1, 2, 3]);
    }
}
