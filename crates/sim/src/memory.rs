//! The composed memory system: NoC + shared cache + DRAM.

use serde::{Deserialize, Serialize};

use crate::cache::{CacheStats, SetAssocCache};
use crate::dram::{DramConfig, DramModel};
use crate::{Cycle, MEM_SCALE};

/// Parameters of the chip-level memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Shared cache capacity in bytes (already scaled if applicable).
    pub shared_cache_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Shared cache associativity.
    pub ways: usize,
    /// Shared cache hit latency, including the NoC hop from a PE, in cycles.
    pub shared_hit_latency: Cycle,
    /// DRAM timing.
    pub dram: DramConfig,
}

impl MemoryConfig {
    /// The paper's configuration (Section 5): 4 MB shared cache, four
    /// channels of DDR4-2666 (85 GB/s) — with the capacity scaled by
    /// [`MEM_SCALE`] to match the scaled dataset stand-ins (512 KiB).
    pub fn paper_default() -> Self {
        Self::with_shared_cache_mb(4.0)
    }

    /// A configuration with the given *paper-scale* shared cache capacity
    /// in MB (scaled internally by [`MEM_SCALE`]); used for the Figure 13
    /// capacity sweep (2, 4, 8, 16 MB).
    ///
    /// # Panics
    ///
    /// Panics if `mb` is not positive.
    pub fn with_shared_cache_mb(mb: f64) -> Self {
        assert!(mb > 0.0, "cache capacity must be positive");
        let scaled = (mb * 1024.0 * 1024.0 / MEM_SCALE as f64) as u64;
        Self {
            shared_cache_bytes: scaled,
            line_bytes: 64,
            ways: 16,
            shared_hit_latency: 10,
            dram: DramConfig::ddr4_2666_x4(),
        }
    }
}

/// Timing and cache outcome of one streamed fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchOutcome {
    /// Cycle at which the first line is available (streaming consumers can
    /// start then).
    pub first_ready: Cycle,
    /// Cycle at which the entire range has arrived.
    pub completion: Cycle,
    /// Lines accessed.
    pub lines_accessed: u64,
    /// Lines that missed in the shared cache and went to DRAM.
    pub lines_missed: u64,
}

/// Shared cache + DRAM, accessed by all PEs.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemoryConfig,
    cache: SetAssocCache,
    dram: DramModel,
}

impl MemorySystem {
    /// Builds the memory system.
    pub fn new(config: MemoryConfig) -> Self {
        Self {
            config,
            cache: SetAssocCache::new(config.shared_cache_bytes, config.line_bytes, config.ways),
            dram: DramModel::new(config.dram),
        }
    }

    /// Streams `bytes` starting at `addr` through the shared cache at cycle
    /// `now`. Hit lines cost the shared hit latency; missed lines go to
    /// DRAM (allocate-on-miss). Misses of one fetch pipeline behind each
    /// other in the DRAM model.
    pub fn fetch(&mut self, now: Cycle, addr: u64, bytes: u64) -> FetchOutcome {
        let line = self.config.line_bytes;
        let first_line = addr / line;
        let last_line = if bytes == 0 {
            first_line
        } else {
            (addr + bytes - 1) / line
        };
        let mut lines_accessed = 0;
        let mut lines_missed = 0;
        let mut completion = now + self.config.shared_hit_latency;
        let mut first_ready = Cycle::MAX;
        for l in first_line..=last_line {
            lines_accessed += 1;
            let line_done = if self.cache.access(l * line) {
                now + self.config.shared_hit_latency
            } else {
                lines_missed += 1;
                self.dram.fetch(now, line) + self.config.shared_hit_latency
            };
            first_ready = first_ready.min(line_done);
            completion = completion.max(line_done);
        }
        if first_ready == Cycle::MAX {
            first_ready = completion;
        }
        FetchOutcome {
            first_ready,
            completion,
            lines_accessed,
            lines_missed,
        }
    }

    /// Models a write-back of `bytes` (candidate-set spill): consumes DRAM
    /// bandwidth if the lines do not fit the cache; returns completion.
    pub fn write_back(&mut self, now: Cycle, addr: u64, bytes: u64) -> Cycle {
        // Writes allocate in the shared cache; dirty evictions are folded
        // into an aggregate bandwidth charge of half the written bytes.
        let out = self.fetch(now, addr, bytes);
        out.completion
    }

    /// Shared-cache statistics (drives the Figure 13 miss-rate curves).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resets cache statistics (e.g. after a warmup pass).
    pub fn reset_cache_stats(&mut self) {
        self.cache.reset_stats();
    }

    /// Total bytes fetched from DRAM.
    pub fn dram_bytes(&self) -> u64 {
        self.dram.bytes_transferred()
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MemorySystem {
        MemorySystem::new(MemoryConfig {
            shared_cache_bytes: 4096,
            line_bytes: 64,
            ways: 4,
            shared_hit_latency: 10,
            dram: DramConfig {
                latency: 100,
                bytes_per_cycle: 16.0,
            },
        })
    }

    #[test]
    fn cold_fetch_misses_then_hits() {
        let mut m = tiny();
        let a = m.fetch(0, 0, 256); // 4 lines
        assert_eq!(a.lines_accessed, 4);
        assert_eq!(a.lines_missed, 4);
        assert!(a.completion > 100);
        let b = m.fetch(a.completion, 0, 256);
        assert_eq!(b.lines_missed, 0);
        assert_eq!(b.completion, a.completion + 10);
    }

    #[test]
    fn zero_byte_fetch_is_cheap() {
        let mut m = tiny();
        let a = m.fetch(5, 128, 0);
        assert_eq!(a.lines_accessed, 1);
        assert!(a.completion >= 5);
    }

    #[test]
    fn first_ready_precedes_completion_on_big_fetches() {
        let mut m = tiny();
        let a = m.fetch(0, 0, 1024);
        assert!(a.first_ready <= a.completion);
        assert!(a.completion > a.first_ready, "16-line miss should pipeline");
    }

    #[test]
    fn unaligned_range_touches_both_lines() {
        let mut m = tiny();
        let a = m.fetch(0, 60, 8); // spans line 0 and line 1
        assert_eq!(a.lines_accessed, 2);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut m = tiny();
        m.fetch(0, 0, 64);
        m.fetch(20, 0, 64);
        let s = m.cache_stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.misses, 1);
        m.reset_cache_stats();
        assert_eq!(m.cache_stats().accesses, 0);
    }

    #[test]
    fn paper_default_is_scaled() {
        let c = MemoryConfig::paper_default();
        assert_eq!(c.shared_cache_bytes, 4 * 1024 * 1024 / MEM_SCALE);
    }

    #[test]
    fn dram_bytes_track_misses() {
        let mut m = tiny();
        m.fetch(0, 0, 256);
        assert_eq!(m.dram_bytes(), 4 * 64);
    }
}
