//! Set-associative LRU cache model with hit/miss statistics.

use serde::{Deserialize, Serialize};

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total line accesses.
    pub accesses: u64,
    /// Line misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]` (0 for an untouched cache).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with LRU replacement, modeled at line
/// granularity (tags only — data never lives here; the functional results
/// come from the real set computation).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// `sets[s]` holds up to `ways` tags, most recently used last.
    sets: Vec<Vec<u64>>,
    ways: usize,
    line_bytes: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with the given line size and
    /// associativity. The set count is rounded up to a power of two.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or `capacity_bytes` is smaller than
    /// one way of lines.
    pub fn new(capacity_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        assert!(
            capacity_bytes > 0 && line_bytes > 0 && ways > 0,
            "cache parameters must be positive"
        );
        let lines = capacity_bytes / line_bytes;
        assert!(lines >= ways as u64, "capacity smaller than one set");
        let set_count = (lines / ways as u64).next_power_of_two();
        Self {
            sets: vec![Vec::with_capacity(ways); set_count as usize],
            ways,
            line_bytes,
            stats: CacheStats::default(),
        }
    }

    /// Accesses the line containing `addr`; returns `true` on hit. On miss
    /// the line is installed (allocate-on-miss) with LRU eviction.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        self.stats.accesses += 1;
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let tag = set.remove(pos);
            set.push(tag);
            true
        } else {
            self.stats.misses += 1;
            if set.len() == self.ways {
                set.remove(0);
            }
            set.push(line);
            false
        }
    }

    /// Probes without updating statistics or LRU order.
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set_idx = (line % self.sets.len() as u64) as usize;
        self.sets[set_idx].contains(&line)
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (not contents) — used between warmup and
    /// measurement phases.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SetAssocCache::new(1024, 64, 2);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way, small cache: lines mapping to the same set.
        let mut c = SetAssocCache::new(128, 64, 2); // 1 set of 2 ways
        c.access(0); // line 0
        c.access(64); // line 1
        c.access(0); // touch line 0 → line 1 is LRU
        c.access(128); // evicts line 1
        assert!(c.contains(0));
        assert!(!c.contains(64));
        assert!(c.contains(128));
    }

    #[test]
    fn capacity_bounds_working_set() {
        let mut c = SetAssocCache::new(4096, 64, 4); // 64 lines
                                                     // Touch 128 lines: second pass over the first 64 should mostly miss.
        for i in 0..128u64 {
            c.access(i * 64);
        }
        c.reset_stats();
        for i in 0..64u64 {
            c.access(i * 64);
        }
        assert!(
            c.stats().miss_rate() > 0.9,
            "miss rate {}",
            c.stats().miss_rate()
        );
    }

    #[test]
    fn working_set_within_capacity_hits() {
        let mut c = SetAssocCache::new(4096, 64, 4);
        for _ in 0..3 {
            for i in 0..32u64 {
                c.access(i * 64);
            }
        }
        // Only the first pass misses.
        assert_eq!(c.stats().misses, 32);
        assert_eq!(c.stats().accesses, 96);
    }

    #[test]
    fn miss_rate_of_empty_stats_is_zero() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        SetAssocCache::new(0, 64, 4);
    }

    #[test]
    #[should_panic(expected = "smaller than one set")]
    fn capacity_below_one_set_rejected() {
        SetAssocCache::new(64, 64, 4);
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 1-way: two lines mapping to the same set always evict each other.
        let mut c = SetAssocCache::new(256, 64, 1); // 4 sets
        c.access(0); // set 0
        c.access(4 * 64); // also set 0
        assert!(!c.contains(0));
        assert!(c.contains(4 * 64));
        // Ping-pong: every access misses.
        c.reset_stats();
        for i in 0..10 {
            c.access((i % 2) * 4 * 64);
        }
        assert_eq!(c.stats().misses, 10);
    }

    #[test]
    fn higher_associativity_reduces_conflicts() {
        let run = |ways: usize| {
            let mut c = SetAssocCache::new(1024, 64, ways);
            // Cyclic sweep over 12 lines in a 16-line cache: fully
            // associative would always hit after warmup; low associativity
            // conflicts on the shared sets.
            let mut misses = 0;
            for round in 0..20u64 {
                for i in 0..12u64 {
                    if !c.access(i * 5 * 64) && round > 0 {
                        misses += 1;
                    }
                }
            }
            misses
        };
        assert!(run(16) <= run(1), "16-way {} vs 1-way {}", run(16), run(1));
    }
}
