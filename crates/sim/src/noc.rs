//! Network-on-chip model: a 2D mesh between PEs and the shared cache.
//!
//! The paper's Figure 5 connects the PEs to the shared cache through a NoC.
//! This model places PEs on a near-square mesh with the cache controller at
//! the center and charges XY-routed hop latency per access, so outer PEs
//! see slightly longer shared-cache latency than inner ones.

use crate::Cycle;
use serde::{Deserialize, Serialize};

/// A 2D-mesh NoC with the shared-cache port at the mesh center.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshNoc {
    width: usize,
    height: usize,
    /// Cycles per router hop.
    pub per_hop_latency: Cycle,
    /// Fixed injection/ejection overhead in cycles.
    pub base_latency: Cycle,
}

impl MeshNoc {
    /// Builds a near-square mesh large enough for `pes` endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `pes == 0`.
    pub fn for_pes(pes: usize, per_hop_latency: Cycle, base_latency: Cycle) -> Self {
        assert!(pes > 0, "a NoC needs at least one PE");
        let width = (pes as f64).sqrt().ceil() as usize;
        let height = pes.div_ceil(width);
        Self {
            width,
            height,
            per_hop_latency,
            base_latency,
        }
    }

    /// Mesh dimensions `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Grid coordinates of PE `idx` (row-major placement).
    ///
    /// # Panics
    ///
    /// Panics if `idx` lies outside the mesh.
    pub fn position(&self, idx: usize) -> (usize, usize) {
        assert!(idx < self.width * self.height, "PE {idx} outside the mesh");
        (idx % self.width, idx / self.width)
    }

    /// XY-routing hop count between two grid points.
    pub fn hops(&self, a: (usize, usize), b: (usize, usize)) -> usize {
        a.0.abs_diff(b.0) + a.1.abs_diff(b.1)
    }

    /// One-way latency from PE `idx` to the shared-cache port at the mesh
    /// center.
    ///
    /// # Panics
    ///
    /// Panics if `idx` lies outside the mesh.
    pub fn pe_latency(&self, idx: usize) -> Cycle {
        let center = (self.width / 2, self.height / 2);
        let hops = self.hops(self.position(idx), center) as Cycle;
        self.base_latency + hops * self.per_hop_latency
    }

    /// Mean one-way PE→cache latency over the first `pes` endpoints.
    pub fn average_latency(&self, pes: usize) -> f64 {
        assert!(pes > 0 && pes <= self.width * self.height);
        (0..pes).map(|i| self.pe_latency(i) as f64).sum::<f64>() / pes as f64
    }
}

impl Default for MeshNoc {
    /// The 20-PE chip's mesh with 1-cycle hops and 2-cycle injection.
    fn default() -> Self {
        Self::for_pes(20, 1, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_fits_all_pes() {
        for pes in [1usize, 2, 5, 16, 20, 40] {
            let noc = MeshNoc::for_pes(pes, 1, 2);
            let (w, h) = noc.dims();
            assert!(w * h >= pes, "{pes} PEs in {w}x{h}");
            // Every PE has a defined position and latency.
            for i in 0..pes {
                let _ = noc.position(i);
                assert!(noc.pe_latency(i) >= noc.base_latency);
            }
        }
    }

    #[test]
    fn hop_count_is_manhattan() {
        let noc = MeshNoc::for_pes(16, 1, 0);
        assert_eq!(noc.hops((0, 0), (3, 3)), 6);
        assert_eq!(noc.hops((2, 1), (2, 1)), 0);
        assert_eq!(noc.hops((3, 0), (0, 2)), 5);
    }

    #[test]
    fn center_pe_is_fastest() {
        let noc = MeshNoc::for_pes(25, 2, 1);
        let center_idx = 2 * 5 + 2; // (2,2) in a 5x5 mesh
        let corner_idx = 0;
        assert!(noc.pe_latency(center_idx) < noc.pe_latency(corner_idx));
        assert_eq!(noc.pe_latency(center_idx), 1);
    }

    #[test]
    fn average_latency_between_min_and_max() {
        let noc = MeshNoc::for_pes(20, 1, 2);
        let avg = noc.average_latency(20);
        let lats: Vec<Cycle> = (0..20).map(|i| noc.pe_latency(i)).collect();
        let min = *lats.iter().min().unwrap() as f64;
        let max = *lats.iter().max().unwrap() as f64;
        assert!(avg >= min && avg <= max);
    }

    #[test]
    #[should_panic(expected = "outside the mesh")]
    fn out_of_mesh_rejected() {
        MeshNoc::for_pes(4, 1, 1).position(4);
    }
}
