//! Architectural simulation substrate for the FINGERS reproduction.
//!
//! Provides the shared memory-system models both accelerator designs
//! (FINGERS and the FlexMiner baseline) are simulated on, following the
//! paper's methodology (Section 5): a 4 MB shared on-chip cache in front of
//! four channels of DDR4-2666 (85 GB/s), with PEs attached through a NoC.
//!
//! - [`cache::SetAssocCache`]: set-associative LRU cache with hit/miss
//!   statistics (the Figure 13 miss-rate curves come straight from it).
//! - [`dram::DramModel`]: latency + bandwidth-reservation DRAM timing.
//! - [`MemorySystem`]: shared cache + DRAM composed, with per-line
//!   streaming fetch timing.
//!
//! # Scaling
//!
//! The dataset stand-ins are scaled down from the paper's graphs (see
//! `fingers-graph::datasets`), so chip configurations scale the *capacities*
//! by [`MEM_SCALE`] while keeping latencies and bandwidth-per-cycle
//! unchanged — preserving every capacity relationship the evaluation
//! depends on (which graphs fit in the shared cache, when candidate sets
//! spill, when DRAM bandwidth saturates).
//!
//! # Example
//!
//! ```
//! use fingers_sim::{MemoryConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemoryConfig::paper_default());
//! // A cold 256-byte neighbor-list fetch misses in the shared cache...
//! let first = mem.fetch(0, 0x1000, 256);
//! assert!(first.lines_missed > 0);
//! // ...and a re-fetch hits.
//! let again = mem.fetch(first.completion, 0x1000, 256);
//! assert_eq!(again.lines_missed, 0);
//! assert!(again.completion - first.completion < first.completion);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dram;
mod memory;
pub mod noc;

pub use cache::{CacheStats, SetAssocCache};
pub use dram::DramModel;
pub use memory::{FetchOutcome, MemoryConfig, MemorySystem};
pub use noc::MeshNoc;

/// Simulation time, in accelerator clock cycles (1 GHz in the paper's
/// synthesis, Section 6.1).
pub type Cycle = u64;

/// Capacity scale factor applied to cache sizes when simulating the scaled
/// dataset stand-ins (graphs are scaled ~8–400× down in vertex count; an
/// 8× capacity scale keeps the "fits in shared cache" split of Table 1
/// intact — asserted by tests in `fingers-graph::datasets`).
pub const MEM_SCALE: u64 = 8;
