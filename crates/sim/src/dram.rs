//! Off-chip DRAM timing: fixed latency plus bandwidth reservation.
//!
//! Models the paper's four channels of DDR4-2666 delivering 85 GB/s
//! (Section 5) as an aggregate resource: each request pays the access
//! latency, and the channel pipe advances by `bytes / bytes_per_cycle`,
//! so concurrent requests queue behind one another when bandwidth
//! saturates — the effect that limits Yo/Pa in the paper's Figure 10
//! discussion.

use crate::Cycle;
use serde::{Deserialize, Serialize};

/// DRAM timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Access latency in cycles (row activation + channel + controller).
    pub latency: Cycle,
    /// Aggregate bandwidth in bytes per accelerator cycle. At 1 GHz,
    /// 85 GB/s ≈ 85 B/cycle.
    pub bytes_per_cycle: f64,
}

impl DramConfig {
    /// The paper's memory system: four channels of DDR4-2666 (85 GB/s) at
    /// a 1 GHz accelerator clock, ~120-cycle access latency.
    pub fn ddr4_2666_x4() -> Self {
        Self {
            latency: 120,
            bytes_per_cycle: 85.0,
        }
    }
}

/// Bandwidth-reservation DRAM model.
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    /// The cycle at which the (aggregate) channel pipe next frees up.
    busy_until: f64,
    /// Total bytes transferred (for bandwidth-utilization reporting).
    bytes_transferred: u64,
    requests: u64,
}

impl DramModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.bytes_per_cycle > 0.0, "bandwidth must be positive");
        Self {
            config,
            busy_until: 0.0,
            bytes_transferred: 0,
            requests: 0,
        }
    }

    /// Issues a `bytes`-byte transfer at cycle `now`; returns the cycle at
    /// which the data has fully arrived.
    pub fn fetch(&mut self, now: Cycle, bytes: u64) -> Cycle {
        self.requests += 1;
        self.bytes_transferred += bytes;
        let start = (now as f64).max(self.busy_until);
        let transfer = bytes as f64 / self.config.bytes_per_cycle;
        self.busy_until = start + transfer;
        (self.busy_until.ceil() as Cycle) + self.config.latency
    }

    /// Total bytes transferred so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Total requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Achieved bandwidth in bytes/cycle over `elapsed` cycles.
    pub fn achieved_bandwidth(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.bytes_transferred as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramModel {
        DramModel::new(DramConfig {
            latency: 100,
            bytes_per_cycle: 10.0,
        })
    }

    #[test]
    fn single_fetch_pays_latency_plus_transfer() {
        let mut d = model();
        // 50 bytes at 10 B/cycle = 5 cycles transfer + 100 latency.
        assert_eq!(d.fetch(0, 50), 105);
    }

    #[test]
    fn back_to_back_fetches_queue_on_bandwidth() {
        let mut d = model();
        let a = d.fetch(0, 100); // transfer occupies cycles 0-10
        let b = d.fetch(0, 100); // queues: occupies 10-20
        assert_eq!(a, 110);
        assert_eq!(b, 120);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut d = model();
        d.fetch(0, 100);
        // Long idle gap: next fetch starts fresh.
        let c = d.fetch(1000, 10);
        assert_eq!(c, 1101);
    }

    #[test]
    fn counters_accumulate() {
        let mut d = model();
        d.fetch(0, 64);
        d.fetch(0, 64);
        assert_eq!(d.bytes_transferred(), 128);
        assert_eq!(d.requests(), 2);
        assert!(d.achieved_bandwidth(64) > 1.0);
    }

    #[test]
    fn paper_config_is_85_bytes_per_cycle() {
        let c = DramConfig::ddr4_2666_x4();
        assert!((c.bytes_per_cycle - 85.0).abs() < f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        DramModel::new(DramConfig {
            latency: 1,
            bytes_per_cycle: 0.0,
        });
    }

    #[test]
    fn saturation_degrades_latency_linearly() {
        // A burst of K equal-size fetches at t=0: the i-th completes
        // i transfer-slots after the first (bandwidth queuing).
        let mut d = model();
        let mut last = 0;
        for i in 0..10u64 {
            let done = d.fetch(0, 100); // 10 cycles of pipe each
            assert_eq!(done, 110 + i * 10);
            assert!(done > last);
            last = done;
        }
    }

    #[test]
    fn fractional_transfers_accumulate() {
        // 3 bytes at 10 B/cycle = 0.3 cycles each; queueing must not lose
        // the fractions.
        let mut d = model();
        for _ in 0..10 {
            d.fetch(0, 3);
        }
        // After 10 fetches the pipe is busy until cycle 3.
        let done = d.fetch(0, 10);
        assert_eq!(done, 104);
    }
}
