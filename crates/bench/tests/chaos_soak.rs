//! The chaos soak as an integration test: the full fixed seed matrix in
//! its own process (the chaos plan is process-global, so the soak gets a
//! binary to itself), quick storm sizing.
//!
//! ci.sh runs this as the robustness gate; the full-size storm behind
//! `BENCH_soak_chaos.json` runs through `run_all` / the `soak_chaos`
//! binary.

use fingers_bench::experiments::soak_chaos::{run_soak, SEEDS};

#[test]
fn seed_matrix_survives_verifies_and_drains() {
    let result = run_soak(true);
    assert_eq!(result.seeds.len(), SEEDS.len());
    assert!(
        result.mem_budget_typed,
        "the 1-byte budget probe must fail typed (`mem-budget`, exit 11)"
    );
    for s in &result.seeds {
        assert!(s.survived, "seed {}: daemon died during the storm", s.seed);
        assert!(s.ok > 0, "seed {}: no query survived chaos", s.seed);
        assert!(
            s.attempted >= s.ok,
            "seed {}: accounting is inconsistent",
            s.seed
        );
        assert_eq!(
            s.gauge_final_bytes, s.gauge_baseline_bytes,
            "seed {}: gauge leaked bytes past the drain",
            s.seed
        );
        // Counts were verified bit-identical against the serial baseline
        // inside every storm client; reaching here means none diverged.
    }
}
