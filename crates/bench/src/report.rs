//! Report formatting: markdown matrices and summary statistics.

/// Geometric mean of strictly positive values (the paper's "on average"
/// aggregation for speedups); 0.0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Renders a row-major matrix as a markdown table.
///
/// # Panics
///
/// Panics if the matrix shape does not match the label counts.
pub fn markdown_matrix(
    corner: &str,
    col_labels: &[&str],
    row_labels: &[&str],
    values: &[Vec<String>],
) -> String {
    assert_eq!(
        values.len(),
        row_labels.len(),
        "one row of values per row label"
    );
    let mut out = String::new();
    out.push_str(&format!("| {corner} |"));
    for c in col_labels {
        out.push_str(&format!(" {c} |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in col_labels {
        out.push_str("---|");
    }
    out.push('\n');
    for (r, row) in row_labels.iter().zip(values) {
        assert_eq!(row.len(), col_labels.len(), "one value per column");
        out.push_str(&format!("| {r} |"));
        for v in row {
            out.push_str(&format!(" {v} |"));
        }
        out.push('\n');
    }
    out
}

/// Formats a speedup with two decimals and a trailing ×.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}×")
}

/// Formats a large integer with thousands separators.
pub fn with_commas(mut n: u64) -> String {
    let mut parts = Vec::new();
    loop {
        let next = n / 1000;
        if next == 0 {
            parts.push(format!("{}", n % 1000));
            break;
        }
        parts.push(format!("{:03}", n % 1000));
        n = next;
    }
    parts.reverse();
    parts.join(",")
}

/// Writes plot-ready CSV next to the markdown report.
///
/// The target directory is `$FINGERS_RESULTS_DIR` (default `results`);
/// nothing is written — and `false` is returned — unless that directory
/// already exists, so unit tests and ad-hoc runs stay side-effect free.
/// `run_all` creates the directory, so full evaluation runs always persist
/// their series.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> bool {
    let dir = std::env::var("FINGERS_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    let dir = std::path::Path::new(&dir);
    if !dir.is_dir() {
        return false;
    }
    let path = dir.join(format!("{name}.csv"));
    let mut text = header.join(",");
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    std::fs::write(&path, text).is_ok()
}

/// Writes a JSON document next to the markdown/CSV outputs, under the same
/// `$FINGERS_RESULTS_DIR` gating as [`write_csv`] (no directory → no-op,
/// `false` returned). `text` must already be rendered JSON — the harness
/// hand-renders its few documents rather than pulling in a serializer.
pub fn write_json(name: &str, text: &str) -> bool {
    let dir = std::env::var("FINGERS_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    let dir = std::path::Path::new(&dir);
    if !dir.is_dir() {
        return false;
    }
    std::fs::write(dir.join(format!("{name}.json")), text).is_ok()
}

/// Escapes a string for inclusion in a JSON document (quotes, backslashes,
/// and control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_renders_all_cells() {
        let m = markdown_matrix(
            "pat",
            &["As", "Mi"],
            &["tc"],
            &[vec!["1.00×".into(), "2.00×".into()]],
        );
        assert!(m.contains("| pat | As | Mi |"));
        assert!(m.contains("| tc | 1.00× | 2.00× |"));
    }

    #[test]
    #[should_panic(expected = "one value per column")]
    fn matrix_rejects_ragged_rows() {
        markdown_matrix("x", &["a", "b"], &["r"], &[vec!["1".into()]]);
    }

    #[test]
    fn commas() {
        assert_eq!(with_commas(0), "0");
        assert_eq!(with_commas(999), "999");
        assert_eq!(with_commas(1000), "1,000");
        assert_eq!(with_commas(1234567), "1,234,567");
    }

    #[test]
    fn speedup_format() {
        assert_eq!(speedup(2.8), "2.80×");
    }

    /// One test for both CSV paths: the env var is process-global, so the
    /// scenarios must not run concurrently.
    #[test]
    fn csv_writing_behaviour() {
        // Without an existing directory: no-op.
        std::env::set_var("FINGERS_RESULTS_DIR", "/nonexistent-fingers-dir");
        assert!(!write_csv("x", &["a"], &[vec!["1".into()]]));

        // With a directory: written and readable.
        let dir = std::env::temp_dir().join("fingers_csv_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::env::set_var("FINGERS_RESULTS_DIR", &dir);
        assert!(write_csv(
            "unit",
            &["k", "v"],
            &[vec!["a".into(), "1".into()], vec!["b".into(), "2".into()]]
        ));
        let text = std::fs::read_to_string(dir.join("unit.csv")).expect("read back");
        assert_eq!(text, "k,v\na,1\nb,2\n");

        // JSON follows the same gating and round-trips bytes.
        assert!(write_json("unit", "{\"k\": 1}"));
        let text = std::fs::read_to_string(dir.join("unit.json")).expect("read back");
        assert_eq!(text, "{\"k\": 1}");

        std::env::set_var("FINGERS_RESULTS_DIR", "/nonexistent-fingers-dir");
        assert!(!write_json("unit", "{}"));
        std::env::remove_var("FINGERS_RESULTS_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
