//! Checkpointed, fault-isolated execution of the full evaluation run.
//!
//! A full `run_all` pass takes >10 minutes; before this module an
//! interrupted run restarted from zero and one panicking section killed
//! every section after it. Here each section runs on its own thread under
//! `catch_unwind` with a wall-clock watchdog; on completion its markdown
//! body is written to `<results>/sections/<name>.md` and an entry is
//! appended to the `<results>/run_all_manifest.jsonl` manifest. A resumed
//! run (`--resume` / `FINGERS_RESUME=1`) skips sections the manifest
//! already records as completed (for the same `--quick` mode), a failed or
//! timed-out section is retried once and then skipped without killing the
//! remaining sections, and the combined report is reassembled from the
//! per-section files at the end of every run.
//!
//! The watchdog does not merely detect stuck sections: on timeout it fires
//! the section's [`CancelToken`] and grace-joins the worker thread.
//! Sections observe the token through [`section_token`] (the experiment
//! loops poll it between grid cells), so a cooperative section stops
//! within one cell and its thread is reclaimed instead of abandoned; the
//! manifest records which happened via the `aborted` field.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use fingers_mining::CancelToken;

use crate::report::json_escape;

thread_local! {
    /// The cancellation token of the checkpointed section running on this
    /// thread. Defaults to a fresh, never-cancelled token so code polling
    /// it outside a checkpointed run behaves as if no watchdog existed.
    static SECTION_TOKEN: RefCell<CancelToken> = RefCell::new(CancelToken::new());
}

/// The [`CancelToken`] of the checkpointed section currently running on
/// this thread. Long-running experiment loops poll it between units of
/// work (e.g. grid cells) so the `run_all` watchdog can abort a stuck
/// section instead of abandoning its thread. Outside a checkpointed
/// section the returned token never cancels.
pub fn section_token() -> CancelToken {
    SECTION_TOKEN.with(|t| t.borrow().clone())
}

fn install_section_token(token: CancelToken) {
    SECTION_TOKEN.with(|t| *t.borrow_mut() = token);
}

/// One named section of the evaluation (a table/figure module's `run`).
#[derive(Debug, Clone, Copy)]
pub struct Section {
    /// Manifest/file name of the section (e.g. `"table1"`).
    pub name: &'static str,
    /// The section body renderer (`quick` → markdown).
    pub run: fn(bool) -> String,
}

/// Terminal state of one section attempt cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionStatus {
    /// The section completed and its body was checkpointed.
    Ok,
    /// A prior run already completed the section; it was not re-run.
    Skipped,
    /// Every attempt panicked; the last panic message is carried.
    Failed(String),
    /// Every attempt exceeded the watchdog timeout.
    TimedOut,
}

impl SectionStatus {
    /// Manifest wire word for the status.
    pub fn as_str(&self) -> &'static str {
        match self {
            SectionStatus::Ok => "ok",
            SectionStatus::Skipped => "skipped",
            SectionStatus::Failed(_) => "failed",
            SectionStatus::TimedOut => "timed_out",
        }
    }
}

/// What happened to one section during a checkpointed run.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionOutcome {
    /// Section name.
    pub name: String,
    /// Terminal status after up to two attempts.
    pub status: SectionStatus,
    /// Wall-clock seconds across all attempts (0 when skipped).
    pub wall_secs: f64,
    /// Attempts made (0 when skipped, 1–2 otherwise).
    pub attempts: u32,
    /// For a timed-out section: whether the watchdog's cancellation
    /// reclaimed the worker thread within the grace period (`true`) or the
    /// thread had to be abandoned (`false`). Always `false` otherwise.
    pub aborted: bool,
}

/// Configuration of a checkpointed run.
#[derive(Debug, Clone)]
pub struct RunAllConfig {
    /// Reduced-matrix mode (`--quick`).
    pub quick: bool,
    /// Skip sections the manifest already records as completed.
    pub resume: bool,
    /// Directory receiving the manifest, per-section bodies, and the
    /// combined report.
    pub results_dir: PathBuf,
    /// Wall-clock watchdog per section attempt.
    pub section_timeout: Duration,
    /// After the watchdog fires the section's [`CancelToken`], how long to
    /// wait for the worker thread to stop before abandoning it.
    pub abort_grace: Duration,
    /// Stop after attempting this many (non-skipped) sections — the
    /// deterministic stand-in for an interrupted run, used by the resume
    /// smoke test.
    pub max_sections: Option<usize>,
}

impl RunAllConfig {
    /// A config with an effectively disabled watchdog.
    pub fn new(results_dir: impl Into<PathBuf>, quick: bool, resume: bool) -> Self {
        Self {
            quick,
            resume,
            results_dir: results_dir.into(),
            section_timeout: Duration::from_secs(30 * 60),
            abort_grace: Duration::from_secs(5),
            max_sections: None,
        }
    }
}

/// Path of the run manifest inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("run_all_manifest.jsonl")
}

/// Names of sections the manifest records as completed for `quick` mode.
///
/// Unreadable or unparseable manifest lines are ignored — a truncated
/// manifest (killed mid-append) must never block a resume.
pub fn completed_sections(dir: &Path, quick: bool) -> BTreeSet<String> {
    let mut done = BTreeSet::new();
    let Ok(text) = std::fs::read_to_string(manifest_path(dir)) else {
        return done;
    };
    for line in text.lines() {
        let (Some(name), Some(status), Some(q)) = (
            json_field(line, "section"),
            json_field(line, "status"),
            json_field(line, "quick"),
        ) else {
            continue;
        };
        if status == "ok" && q == if quick { "true" } else { "false" } {
            done.insert(name.to_owned());
        }
    }
    done
}

/// Minimal JSON field extraction for the manifest's flat records: returns
/// the raw text of `"key": <value>` where the value is a string (without
/// quotes) or a bare literal. Section names and statuses never contain
/// escapes, so no unescaping is needed.
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = line[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        let mut end = 0;
        let bytes = stripped.as_bytes();
        while end < bytes.len() {
            match bytes[end] {
                b'\\' => end += 2,
                b'"' => return Some(&stripped[..end]),
                _ => end += 1,
            }
        }
        None
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// Appends one manifest entry; creates the file on first use.
fn append_manifest(dir: &Path, outcome: &SectionOutcome, quick: bool) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(manifest_path(dir))?;
    let message = match &outcome.status {
        SectionStatus::Failed(m) => format!(", \"error\": \"{}\"", json_escape(m)),
        SectionStatus::TimedOut => format!(", \"aborted\": {}", outcome.aborted),
        _ => String::new(),
    };
    writeln!(
        file,
        "{{\"section\": \"{}\", \"status\": \"{}\", \"quick\": {}, \"wall_secs\": {:.3}, \
         \"attempts\": {}{message}}}",
        json_escape(&outcome.name),
        outcome.status.as_str(),
        quick,
        outcome.wall_secs,
        outcome.attempts,
    )
}

/// Result of one watchdog-guarded attempt.
enum Attempt {
    Ok(String),
    Panicked(String),
    /// The watchdog fired. `reclaimed` is whether the cancelled worker
    /// thread stopped (and was joined) within the grace period.
    TimedOut {
        reclaimed: bool,
    },
}

/// Runs `section` once on its own thread under `catch_unwind`, waiting at
/// most `timeout`. On timeout the watchdog cancels the section's
/// [`CancelToken`] and waits up to `grace` for the worker to stop: a
/// cooperative section (one that polls [`section_token`]) returns promptly
/// and its thread is joined; only a section that ignores the token is
/// abandoned. A cancelled section's late body is discarded either way — a
/// partial section body must never be checkpointed as complete.
fn attempt_section(
    run: fn(bool) -> String,
    quick: bool,
    timeout: Duration,
    grace: Duration,
) -> Attempt {
    let (tx, rx) = std::sync::mpsc::channel();
    let token = CancelToken::new();
    let worker_token = token.clone();
    let handle = std::thread::spawn(move || {
        install_section_token(worker_token);
        let result = std::panic::catch_unwind(|| run(quick));
        // The receiver may be gone after a timeout; a failed send is fine.
        let _ = tx.send(result);
    });
    match rx.recv_timeout(timeout) {
        Ok(Ok(body)) => {
            let _ = handle.join();
            Attempt::Ok(body)
        }
        Ok(Err(payload)) => {
            let _ = handle.join();
            Attempt::Panicked(panic_message(payload))
        }
        Err(_) => {
            token.cancel();
            match rx.recv_timeout(grace) {
                // The worker stopped (cooperatively or by finishing late);
                // join it so the thread is truly reclaimed, then discard
                // whatever it produced.
                Ok(_) => {
                    let _ = handle.join();
                    Attempt::TimedOut { reclaimed: true }
                }
                Err(_) => Attempt::TimedOut { reclaimed: false },
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `sections` in order under checkpointing: resume-skip, panic
/// isolation, watchdog, retry-once, manifest append, per-section body
/// files, and final reassembly of the combined report. Section bodies are
/// also streamed to `out` as they complete.
///
/// # Errors
///
/// Propagates I/O errors creating the results directory or writing
/// checkpoint state; section failures are *not* errors — they are reported
/// in the returned outcomes (and on stderr) so the run can continue.
pub fn run_checkpointed<W: std::io::Write>(
    sections: &[Section],
    config: &RunAllConfig,
    out: &mut W,
) -> std::io::Result<Vec<SectionOutcome>> {
    let dir = &config.results_dir;
    let section_dir = dir.join("sections");
    std::fs::create_dir_all(&section_dir)?;
    let done = if config.resume {
        completed_sections(dir, config.quick)
    } else {
        BTreeSet::new()
    };
    let mut outcomes = Vec::with_capacity(sections.len());
    let mut attempted = 0usize;
    for section in sections {
        if done.contains(section.name) {
            eprintln!("[{} already complete, skipped]", section.name);
            outcomes.push(SectionOutcome {
                name: section.name.to_owned(),
                status: SectionStatus::Skipped,
                wall_secs: 0.0,
                attempts: 0,
                aborted: false,
            });
            continue;
        }
        if let Some(max) = config.max_sections {
            if attempted >= max {
                eprintln!("[stopping after {attempted} sections (FINGERS_MAX_SECTIONS)]");
                break;
            }
        }
        attempted += 1;
        let t0 = Instant::now();
        let mut attempts = 0u32;
        let mut status = SectionStatus::TimedOut;
        let mut aborted = false;
        let mut body = None;
        while attempts < 2 {
            attempts += 1;
            match attempt_section(
                section.run,
                config.quick,
                config.section_timeout,
                config.abort_grace,
            ) {
                Attempt::Ok(b) => {
                    status = SectionStatus::Ok;
                    body = Some(b);
                    break;
                }
                Attempt::Panicked(m) => {
                    eprintln!(
                        "[{} attempt {attempts} panicked: {m}{}]",
                        section.name,
                        if attempts < 2 {
                            "; retrying"
                        } else {
                            "; giving up"
                        },
                    );
                    status = SectionStatus::Failed(m);
                }
                Attempt::TimedOut { reclaimed } => {
                    eprintln!(
                        "[{} attempt {attempts} exceeded {:.0?} ({}){}]",
                        section.name,
                        config.section_timeout,
                        if reclaimed {
                            "aborted, thread reclaimed"
                        } else {
                            "unresponsive, thread abandoned"
                        },
                        if attempts < 2 {
                            "; retrying"
                        } else {
                            "; giving up"
                        },
                    );
                    status = SectionStatus::TimedOut;
                    aborted = reclaimed;
                }
            }
        }
        let outcome = SectionOutcome {
            name: section.name.to_owned(),
            status,
            wall_secs: t0.elapsed().as_secs_f64(),
            attempts,
            aborted,
        };
        if let Some(body) = &body {
            std::fs::write(section_dir.join(format!("{}.md", section.name)), body)?;
            writeln!(out, "{body}")?;
            eprintln!("[{} done in {:.1?}]", section.name, t0.elapsed());
        }
        append_manifest(dir, &outcome, config.quick)?;
        outcomes.push(outcome);
    }
    assemble_report(sections, dir)?;
    Ok(outcomes)
}

/// Rebuilds `<dir>/run_all_output.md` by concatenating, in section order,
/// every per-section body present on disk (current run or checkpointed by
/// an earlier one).
fn assemble_report(sections: &[Section], dir: &Path) -> std::io::Result<()> {
    let mut combined = String::from("# FINGERS reproduction — full evaluation run\n\n");
    for section in sections {
        let path = dir.join("sections").join(format!("{}.md", section.name));
        if let Ok(body) = std::fs::read_to_string(&path) {
            combined.push_str(&body);
            if !body.ends_with('\n') {
                combined.push('\n');
            }
            combined.push('\n');
        }
    }
    std::fs::write(dir.join("run_all_output.md"), combined)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_one(_q: bool) -> String {
        "## section one\nbody-one".into()
    }
    fn ok_two(_q: bool) -> String {
        "## section two\nbody-two".into()
    }
    fn panicky(_q: bool) -> String {
        panic!("section exploded")
    }
    fn slow(_q: bool) -> String {
        std::thread::sleep(Duration::from_millis(500));
        "late".into()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fingers_checkpoint_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn panicking_section_is_retried_then_skipped_without_killing_the_run() {
        let dir = temp_dir("panic");
        let sections = [
            Section {
                name: "alpha",
                run: ok_one,
            },
            Section {
                name: "boom",
                run: panicky,
            },
            Section {
                name: "omega",
                run: ok_two,
            },
        ];
        let mut out = Vec::new();
        let cfg = RunAllConfig::new(&dir, true, false);
        let outcomes = run_checkpointed(&sections, &cfg, &mut out).expect("io");
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].status, SectionStatus::Ok);
        assert!(matches!(&outcomes[1].status, SectionStatus::Failed(m) if m.contains("exploded")));
        assert_eq!(outcomes[1].attempts, 2, "failed section retried once");
        assert_eq!(outcomes[2].status, SectionStatus::Ok, "run continued");
        let stdout = String::from_utf8(out).expect("utf8");
        assert!(stdout.contains("body-one") && stdout.contains("body-two"));
        // Checkpoint state: bodies for the two ok sections, manifest rows
        // for all three, combined report containing the ok bodies.
        assert!(dir.join("sections/alpha.md").is_file());
        assert!(!dir.join("sections/boom.md").exists());
        let manifest = std::fs::read_to_string(manifest_path(&dir)).expect("manifest");
        assert_eq!(manifest.lines().count(), 3);
        assert!(manifest.contains("\"section\": \"boom\", \"status\": \"failed\""));
        assert!(manifest.contains("section exploded"));
        let combined = std::fs::read_to_string(dir.join("run_all_output.md")).expect("combined");
        assert!(combined.contains("body-one") && combined.contains("body-two"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_run_resumes_without_duplicating_sections() {
        let dir = temp_dir("resume");
        let sections = [
            Section {
                name: "first",
                run: ok_one,
            },
            Section {
                name: "second",
                run: ok_two,
            },
            Section {
                name: "third",
                run: ok_one,
            },
        ];
        // "Interrupted" first pass: only one section attempted.
        let mut cfg = RunAllConfig::new(&dir, true, false);
        cfg.max_sections = Some(1);
        let outcomes = run_checkpointed(&sections, &cfg, &mut Vec::new()).expect("io");
        assert_eq!(outcomes.len(), 1);
        assert_eq!(completed_sections(&dir, true).len(), 1);
        // Resume: first is skipped, the rest run.
        let cfg = RunAllConfig::new(&dir, true, true);
        let outcomes = run_checkpointed(&sections, &cfg, &mut Vec::new()).expect("io");
        assert_eq!(outcomes[0].status, SectionStatus::Skipped);
        assert_eq!(outcomes[1].status, SectionStatus::Ok);
        assert_eq!(outcomes[2].status, SectionStatus::Ok);
        // Every section ok exactly once in the manifest.
        let manifest = std::fs::read_to_string(manifest_path(&dir)).expect("manifest");
        for name in ["first", "second", "third"] {
            let occurrences = manifest
                .lines()
                .filter(|l| {
                    json_field(l, "section") == Some(name) && json_field(l, "status") == Some("ok")
                })
                .count();
            assert_eq!(occurrences, 1, "{name}");
        }
        // A quick-mode checkpoint does not satisfy a full-mode resume.
        assert!(completed_sections(&dir, false).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watchdog_times_out_and_the_run_continues() {
        let dir = temp_dir("watchdog");
        let sections = [
            Section {
                name: "slowpoke",
                run: slow,
            },
            Section {
                name: "after",
                run: ok_two,
            },
        ];
        let mut cfg = RunAllConfig::new(&dir, true, false);
        cfg.section_timeout = Duration::from_millis(40);
        cfg.abort_grace = Duration::from_millis(10);
        let outcomes = run_checkpointed(&sections, &cfg, &mut Vec::new()).expect("io");
        assert_eq!(outcomes[0].status, SectionStatus::TimedOut);
        assert_eq!(outcomes[0].attempts, 2);
        assert!(
            !outcomes[0].aborted,
            "a token-ignoring section cannot be reclaimed in a 10ms grace"
        );
        assert_eq!(outcomes[1].status, SectionStatus::Ok);
        let manifest = std::fs::read_to_string(manifest_path(&dir)).expect("manifest");
        assert!(manifest.contains("\"status\": \"timed_out\""));
        assert!(manifest.contains("\"aborted\": false"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watchdog_aborts_cooperative_section_and_reclaims_its_thread() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static OBSERVED: AtomicU32 = AtomicU32::new(0);
        fn cooperative(_q: bool) -> String {
            let token = section_token();
            for _ in 0..10_000 {
                if token.is_cancelled() {
                    OBSERVED.fetch_add(1, Ordering::SeqCst);
                    return "stopped at a cell boundary".into();
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            "never cancelled".into()
        }
        let dir = temp_dir("abort");
        let sections = [
            Section {
                name: "coop",
                run: cooperative,
            },
            Section {
                name: "after",
                run: ok_two,
            },
        ];
        let mut cfg = RunAllConfig::new(&dir, true, false);
        cfg.section_timeout = Duration::from_millis(30);
        cfg.abort_grace = Duration::from_secs(5);
        let outcomes = run_checkpointed(&sections, &cfg, &mut Vec::new()).expect("io");
        assert_eq!(outcomes[0].status, SectionStatus::TimedOut);
        assert!(outcomes[0].aborted, "cooperative section must be reclaimed");
        assert_eq!(
            OBSERVED.load(Ordering::SeqCst),
            2,
            "both attempts observed the token and stopped early"
        );
        // The aborted section's partial body is discarded, not checkpointed.
        assert!(!dir.join("sections/coop.md").exists());
        assert_eq!(outcomes[1].status, SectionStatus::Ok);
        let manifest = std::fs::read_to_string(manifest_path(&dir)).expect("manifest");
        assert!(manifest.contains("\"aborted\": true"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn section_token_outside_a_run_never_cancels() {
        assert!(!section_token().is_cancelled());
    }

    #[test]
    fn json_field_extracts_strings_and_literals() {
        let line = "{\"section\": \"fig9\", \"status\": \"ok\", \"quick\": true, \"attempts\": 2}";
        assert_eq!(json_field(line, "section"), Some("fig9"));
        assert_eq!(json_field(line, "status"), Some("ok"));
        assert_eq!(json_field(line, "quick"), Some("true"));
        assert_eq!(json_field(line, "attempts"), Some("2"));
        assert_eq!(json_field(line, "missing"), None);
        assert_eq!(json_field("{\"a\": \"unterminated", "a"), None);
    }

    #[test]
    fn corrupt_manifest_lines_are_ignored() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(
            manifest_path(&dir),
            "garbage not json\n\
             {\"section\": \"good\", \"status\": \"ok\", \"quick\": true}\n\
             {\"section\": \"truncat",
        )
        .expect("write");
        let done = completed_sections(&dir, true);
        assert_eq!(done.len(), 1);
        assert!(done.contains("good"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
