//! Chaos soak: storm the governed daemon under seeded fault injection.
//!
//! Runs the full fixed seed matrix by default; set `FINGERS_CHAOS_SEED`
//! to storm a single seed (ci.sh's per-seed matrix job does this).

fn main() {
    let quick = fingers_bench::quick_mode();
    if let Some(seed) = std::env::var("FINGERS_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        let s = fingers_bench::experiments::soak_chaos::run_seed(seed, quick);
        let typed = s
            .typed_failures
            .iter()
            .map(|(k, n)| format!("{k}: {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let injected = s
            .injected
            .iter()
            .map(|(k, n)| format!("{k}: {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!("seed {seed}: injected {{{injected}}}");
        println!(
            "seed {seed}: {}/{} ok, typed failures {{{typed}}}, {} transport failures, \
             {} degradations, {} pool rebuilds, recovery p99 {:.1} ms, \
             gauge peaked at {} B, drained to {} B",
            s.ok,
            s.attempted,
            s.transport_failures,
            s.degradations,
            s.pool_rebuilds,
            s.recovery_p99_ms,
            s.gauge_peak_bytes,
            s.gauge_final_bytes,
        );
        assert!(s.survived, "daemon did not survive the storm");
    } else {
        print!("{}", fingers_bench::experiments::soak_chaos::run(quick));
    }
}
