//! SIMD-tier equivalence sweep + scalar-vs-vector speedup grid.

fn main() {
    let quick = fingers_bench::quick_mode();
    print!("{}", fingers_bench::experiments::simd_kernels::run(quick));
}
