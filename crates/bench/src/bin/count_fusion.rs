//! Count-fusion equivalence sweep + before/after speedup grid.

fn main() {
    let quick = fingers_bench::quick_mode();
    print!("{}", fingers_bench::experiments::count_fusion::run(quick));
}
