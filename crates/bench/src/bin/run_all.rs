//! Runs every table and figure of the evaluation in order, printing a
//! complete EXPERIMENTS-style report to stdout and checkpointing every
//! section under the results directory.
//!
//! Fault tolerance (see `fingers_bench::checkpoint`): each section runs
//! under panic isolation with a wall-clock watchdog; its markdown body
//! lands in `results/sections/<name>.md` and a manifest entry is appended
//! to `results/run_all_manifest.jsonl` on completion. A failed section is
//! retried once, then skipped without killing the rest of the run. Pass
//! `--resume` (or set `FINGERS_RESUME=1`) to skip sections an earlier,
//! interrupted run already completed; the combined report is reassembled
//! into `results/run_all_output.md` either way.
//!
//! Environment knobs: `FINGERS_RESULTS_DIR` (default `results`),
//! `FINGERS_SECTION_TIMEOUT_SECS` (watchdog, default 1800),
//! `FINGERS_MAX_SECTIONS` (stop after N sections — simulates an
//! interruption for the resume smoke test).

use std::time::Duration;

use fingers_bench::checkpoint::{run_checkpointed, RunAllConfig, Section, SectionStatus};

const SECTIONS: [Section; 17] = [
    Section {
        name: "table1",
        run: fingers_bench::experiments::table1::run,
    },
    Section {
        name: "table2",
        run: fingers_bench::experiments::table2::run,
    },
    Section {
        name: "fig9",
        run: fingers_bench::experiments::fig9::run,
    },
    Section {
        name: "fig10",
        run: fingers_bench::experiments::fig10::run,
    },
    Section {
        name: "fig11",
        run: fingers_bench::experiments::fig11::run,
    },
    Section {
        name: "fig12",
        run: fingers_bench::experiments::fig12::run,
    },
    Section {
        name: "fig13",
        run: fingers_bench::experiments::fig13::run,
    },
    Section {
        name: "table3",
        run: fingers_bench::experiments::table3::run,
    },
    Section {
        name: "parallelism",
        run: fingers_bench::experiments::parallelism::run,
    },
    Section {
        name: "bitmap_kernels",
        run: fingers_bench::experiments::bitmap_kernels::run,
    },
    Section {
        name: "count_fusion",
        run: fingers_bench::experiments::count_fusion::run,
    },
    Section {
        name: "simd_kernels",
        run: fingers_bench::experiments::simd_kernels::run,
    },
    Section {
        name: "steal_balance",
        run: fingers_bench::experiments::steal_balance::run,
    },
    Section {
        name: "energy",
        run: fingers_bench::experiments::energy::run,
    },
    Section {
        name: "ablations",
        run: fingers_bench::experiments::ablations::run,
    },
    Section {
        name: "service_latency",
        run: fingers_bench::experiments::service_latency::run,
    },
    Section {
        name: "soak_chaos",
        run: fingers_bench::experiments::soak_chaos::run,
    },
];

fn env_number(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn main() -> std::process::ExitCode {
    let results_dir = std::env::var("FINGERS_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    let mut config = RunAllConfig::new(&results_dir, fingers_bench::quick_mode(), false);
    config.resume = fingers_bench::resume_mode();
    if let Some(secs) = env_number("FINGERS_SECTION_TIMEOUT_SECS") {
        config.section_timeout = Duration::from_secs(secs);
    }
    config.max_sections = env_number("FINGERS_MAX_SECTIONS").map(|n| n as usize);

    println!("# FINGERS reproduction — full evaluation run\n");
    let outcomes = match run_checkpointed(&SECTIONS, &config, &mut std::io::stdout()) {
        Ok(outcomes) => outcomes,
        Err(e) => {
            eprintln!("error: cannot checkpoint under {results_dir}: {e}");
            return std::process::ExitCode::from(3);
        }
    };
    let troubled: Vec<&str> = outcomes
        .iter()
        .filter(|o| matches!(o.status, SectionStatus::Failed(_) | SectionStatus::TimedOut))
        .map(|o| o.name.as_str())
        .collect();
    if troubled.is_empty() {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!(
            "warning: {} section(s) did not complete: {} — re-run with --resume to retry them",
            troubled.len(),
            troubled.join(", ")
        );
        std::process::ExitCode::from(7)
    }
}
