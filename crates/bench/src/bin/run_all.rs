//! Runs every table and figure of the evaluation in order, printing a
//! complete EXPERIMENTS-style report to stdout (tee it into a file).
use std::time::Instant;

type Section = (&'static str, fn(bool) -> String);

fn main() {
    let quick = fingers_bench::quick_mode();
    // Persist plot-ready CSV series alongside the markdown report.
    let results_dir = std::env::var("FINGERS_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    if let Err(e) = std::fs::create_dir_all(&results_dir) {
        eprintln!("warning: cannot create {results_dir}: {e}");
    }
    let sections: [Section; 12] = [
        ("table1", fingers_bench::experiments::table1::run),
        ("table2", fingers_bench::experiments::table2::run),
        ("fig9", fingers_bench::experiments::fig9::run),
        ("fig10", fingers_bench::experiments::fig10::run),
        ("fig11", fingers_bench::experiments::fig11::run),
        ("fig12", fingers_bench::experiments::fig12::run),
        ("fig13", fingers_bench::experiments::fig13::run),
        ("table3", fingers_bench::experiments::table3::run),
        ("parallelism", fingers_bench::experiments::parallelism::run),
        (
            "bitmap_kernels",
            fingers_bench::experiments::bitmap_kernels::run,
        ),
        ("energy", fingers_bench::experiments::energy::run),
        ("ablations", fingers_bench::experiments::ablations::run),
    ];
    println!("# FINGERS reproduction — full evaluation run\n");
    for (name, f) in sections {
        let t0 = Instant::now();
        let body = f(quick);
        println!("{body}");
        eprintln!("[{name} done in {:.1?}]", t0.elapsed());
    }
}
