//! Regenerates one element of the paper's evaluation; see `fingers-bench`.
fn main() {
    let quick = fingers_bench::quick_mode();
    print!("{}", fingers_bench::experiments::bitmap_kernels::run(quick));
}
