//! Work-stealing vs static/cursor scheduling on the power-law hub graph.

fn main() {
    let quick = fingers_bench::quick_mode();
    print!("{}", fingers_bench::experiments::steal_balance::run(quick));
}
