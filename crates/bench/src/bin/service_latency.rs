//! Service latency storm: concurrent mixed queries against the daemon.

fn main() {
    let quick = fingers_bench::quick_mode();
    print!(
        "{}",
        fingers_bench::experiments::service_latency::run(quick)
    );
}
