//! Shared experiment execution helpers.

use fingers_core::chip::simulate_fingers;
use fingers_core::config::{ChipConfig, PeConfig};
use fingers_core::stats::ChipReport;
use fingers_flexminer::{simulate_flexminer, FlexMinerChipConfig};
use fingers_graph::CsrGraph;
use fingers_mining::{count_benchmark_parallel_with, EngineConfig};
use fingers_pattern::benchmarks::Benchmark;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Result of running one (graph, benchmark) cell on both designs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// FINGERS end-to-end cycles.
    pub fingers_cycles: u64,
    /// FlexMiner end-to-end cycles.
    pub flexminer_cycles: u64,
    /// Per-pattern embedding counts (identical between designs; asserted).
    pub embeddings: Vec<u64>,
    /// `flexminer_cycles / fingers_cycles`.
    pub speedup: f64,
}

fn cell(fingers: ChipReport, flexminer: ChipReport) -> CellResult {
    assert_eq!(
        fingers.embeddings, flexminer.embeddings,
        "functional divergence between designs"
    );
    CellResult {
        fingers_cycles: fingers.cycles,
        flexminer_cycles: flexminer.cycles,
        speedup: flexminer.cycles as f64 / fingers.cycles.max(1) as f64,
        embeddings: fingers.embeddings,
    }
}

/// Runs one benchmark on one graph with a single PE of each design
/// (Figure 9's comparison unit).
pub fn compare_single_pe(graph: &CsrGraph, bench: Benchmark) -> CellResult {
    let multi = bench.plan();
    cell(
        simulate_fingers(graph, &multi, &ChipConfig::single_pe()),
        simulate_flexminer(graph, &multi, &FlexMinerChipConfig::single_pe()),
    )
}

/// Runs the iso-area chip comparison: 20 FINGERS PEs vs 40 FlexMiner PEs
/// (Figure 10).
pub fn compare_overall(graph: &CsrGraph, bench: Benchmark) -> CellResult {
    let multi = bench.plan();
    let (fingers_pes, flexminer_pes) = fingers_core::area::iso_area_pe_counts();
    cell(
        simulate_fingers(
            graph,
            &multi,
            &ChipConfig {
                num_pes: fingers_pes,
                ..ChipConfig::default()
            },
        ),
        simulate_flexminer(
            graph,
            &multi,
            &FlexMinerChipConfig {
                num_pes: flexminer_pes,
                ..FlexMinerChipConfig::default()
            },
        ),
    )
}

/// Runs one benchmark on a single FINGERS PE with the given PE config.
pub fn run_fingers_single(graph: &CsrGraph, bench: Benchmark, pe: PeConfig) -> ChipReport {
    let multi = bench.plan();
    let mut cfg = ChipConfig::single_pe();
    cfg.pe = pe;
    simulate_fingers(graph, &multi, &cfg)
}

/// One measured cell of the software-miner grid: a benchmark mined on a
/// dataset with the task-parallel engine at a fixed thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoftwareCell {
    /// Dataset abbreviation (Table 1 naming).
    pub dataset: String,
    /// Benchmark abbreviation.
    pub benchmark: String,
    /// Worker threads used.
    pub threads: usize,
    /// Hub budget of the bitmap kernel tier (0 = tier disabled).
    pub bitmap_hubs: usize,
    /// Whether terminal-count fusion was enabled for this cell (bench
    /// hygiene: fusion mode is tagged on every JSON cell so cross-PR
    /// trajectories stay comparable).
    pub count_fusion: bool,
    /// Whether the SIMD kernel tier was eligible for this cell (the
    /// `EngineConfig::simd` toggle; actual vector execution additionally
    /// requires hardware support at run time).
    pub simd: bool,
    /// Whether the work-stealing scheduler ran this cell (`false` = the
    /// shared-cursor baseline).
    pub work_stealing: bool,
    /// Total embeddings across the benchmark's patterns.
    pub embeddings: u64,
    /// Wall-clock time of the mining run, in milliseconds.
    pub wall_ms: f64,
}

/// Mines one benchmark on one graph with the task-parallel software engine,
/// recording wall-clock time.
pub fn run_software_cell(
    graph: &CsrGraph,
    dataset: &str,
    bench: Benchmark,
    threads: usize,
    config: &EngineConfig,
) -> SoftwareCell {
    let start = Instant::now();
    let out = count_benchmark_parallel_with(graph, bench, threads, config);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    SoftwareCell {
        dataset: dataset.to_owned(),
        benchmark: bench.abbrev().to_owned(),
        threads,
        bitmap_hubs: config.bitmap_hubs,
        count_fusion: config.fuse_terminal_counts,
        simd: config.simd,
        work_stealing: config.work_stealing,
        embeddings: out.total(),
        wall_ms,
    }
}

/// Runs the dataset × benchmark grid with the parallel software miner at
/// each of `configs` × `thread_counts`, in grid order (dataset-major, then
/// benchmark, then config, then thread count). The raw series behind the
/// parallelism experiment's speedup table and JSON dump.
///
/// Polls the checkpoint watchdog's [`crate::checkpoint::section_token`]
/// between cells: when the enclosing `run_all` section is aborted, the
/// grid stops at the next cell boundary (the partial cell list is
/// discarded by the watchdog along with the section body).
pub fn run_software_grid(
    quick: bool,
    thread_counts: &[usize],
    configs: &[EngineConfig],
) -> Vec<SoftwareCell> {
    let token = crate::checkpoint::section_token();
    let mut cells = Vec::new();
    for d in datasets(quick) {
        let graph = crate::datasets::load(d);
        for b in benchmarks(quick) {
            for cfg in configs {
                for &t in thread_counts {
                    if token.is_cancelled() {
                        return cells;
                    }
                    cells.push(run_software_cell(graph, d.abbrev(), b, t, cfg));
                }
            }
        }
    }
    cells
}

/// The benchmark set: all seven in full mode, a fast subset in quick mode.
pub fn benchmarks(quick: bool) -> Vec<Benchmark> {
    if quick {
        vec![Benchmark::Tc, Benchmark::Tt]
    } else {
        Benchmark::ALL.to_vec()
    }
}

/// The dataset set: all six in full mode, the two cache-resident ones in
/// quick mode.
pub fn datasets(quick: bool) -> Vec<fingers_graph::datasets::Dataset> {
    use fingers_graph::datasets::Dataset;
    if quick {
        vec![Dataset::AstroPh, Dataset::Mico]
    } else {
        Dataset::ALL.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingers_graph::gen::erdos_renyi;

    #[test]
    fn single_pe_cell_is_consistent() {
        let g = erdos_renyi(50, 200, 1);
        let c = compare_single_pe(&g, Benchmark::Tc);
        assert!(c.speedup > 0.0);
        assert_eq!(
            c.speedup,
            c.flexminer_cycles as f64 / c.fingers_cycles as f64
        );
    }

    #[test]
    fn software_cell_counts_and_times() {
        let g = erdos_renyi(40, 160, 2);
        let cfg = EngineConfig::default();
        let one = run_software_cell(&g, "er", Benchmark::Tc, 1, &cfg);
        let two = run_software_cell(&g, "er", Benchmark::Tc, 2, &cfg);
        let off = run_software_cell(&g, "er", Benchmark::Tc, 1, &EngineConfig::without_bitmap());
        assert_eq!(one.embeddings, two.embeddings, "thread-count invariance");
        assert_eq!(one.embeddings, off.embeddings, "bitmap-toggle invariance");
        assert!(one.wall_ms >= 0.0 && two.wall_ms >= 0.0);
        assert_eq!(one.threads, 1);
        assert_eq!(two.threads, 2);
        assert_eq!(one.bitmap_hubs, cfg.bitmap_hubs);
        assert_eq!(off.bitmap_hubs, 0);
        assert!(one.count_fusion, "default config fuses terminal counts");
        let unfused = run_software_cell(
            &g,
            "er",
            Benchmark::Tc,
            1,
            &EngineConfig::without_count_fusion(),
        );
        assert_eq!(one.embeddings, unfused.embeddings, "fusion invariance");
        assert!(!unfused.count_fusion);
        assert!(one.simd && one.work_stealing, "defaults tag both modes on");
        let scalar = run_software_cell(&g, "er", Benchmark::Tc, 2, &EngineConfig::without_simd());
        let cursor = run_software_cell(
            &g,
            "er",
            Benchmark::Tc,
            2,
            &EngineConfig::without_stealing(),
        );
        assert_eq!(one.embeddings, scalar.embeddings, "simd-toggle invariance");
        assert_eq!(one.embeddings, cursor.embeddings, "steal-toggle invariance");
        assert!(!scalar.simd && scalar.work_stealing);
        assert!(cursor.simd && !cursor.work_stealing);
        assert_eq!(one.dataset, "er");
        assert_eq!(one.benchmark, Benchmark::Tc.abbrev());
    }

    #[test]
    fn quick_sets_are_subsets() {
        assert!(benchmarks(true).len() < benchmarks(false).len());
        assert!(datasets(true).len() < datasets(false).len());
    }
}
