//! Shared experiment execution helpers.

use fingers_core::chip::simulate_fingers;
use fingers_core::config::{ChipConfig, PeConfig};
use fingers_core::stats::ChipReport;
use fingers_flexminer::{simulate_flexminer, FlexMinerChipConfig};
use fingers_graph::CsrGraph;
use fingers_pattern::benchmarks::Benchmark;
use serde::{Deserialize, Serialize};

/// Result of running one (graph, benchmark) cell on both designs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// FINGERS end-to-end cycles.
    pub fingers_cycles: u64,
    /// FlexMiner end-to-end cycles.
    pub flexminer_cycles: u64,
    /// Per-pattern embedding counts (identical between designs; asserted).
    pub embeddings: Vec<u64>,
    /// `flexminer_cycles / fingers_cycles`.
    pub speedup: f64,
}

fn cell(fingers: ChipReport, flexminer: ChipReport) -> CellResult {
    assert_eq!(
        fingers.embeddings, flexminer.embeddings,
        "functional divergence between designs"
    );
    CellResult {
        fingers_cycles: fingers.cycles,
        flexminer_cycles: flexminer.cycles,
        speedup: flexminer.cycles as f64 / fingers.cycles.max(1) as f64,
        embeddings: fingers.embeddings,
    }
}

/// Runs one benchmark on one graph with a single PE of each design
/// (Figure 9's comparison unit).
pub fn compare_single_pe(graph: &CsrGraph, bench: Benchmark) -> CellResult {
    let multi = bench.plan();
    cell(
        simulate_fingers(graph, &multi, &ChipConfig::single_pe()),
        simulate_flexminer(graph, &multi, &FlexMinerChipConfig::single_pe()),
    )
}

/// Runs the iso-area chip comparison: 20 FINGERS PEs vs 40 FlexMiner PEs
/// (Figure 10).
pub fn compare_overall(graph: &CsrGraph, bench: Benchmark) -> CellResult {
    let multi = bench.plan();
    let (fingers_pes, flexminer_pes) = fingers_core::area::iso_area_pe_counts();
    cell(
        simulate_fingers(
            graph,
            &multi,
            &ChipConfig {
                num_pes: fingers_pes,
                ..ChipConfig::default()
            },
        ),
        simulate_flexminer(
            graph,
            &multi,
            &FlexMinerChipConfig {
                num_pes: flexminer_pes,
                ..FlexMinerChipConfig::default()
            },
        ),
    )
}

/// Runs one benchmark on a single FINGERS PE with the given PE config.
pub fn run_fingers_single(graph: &CsrGraph, bench: Benchmark, pe: PeConfig) -> ChipReport {
    let multi = bench.plan();
    let mut cfg = ChipConfig::single_pe();
    cfg.pe = pe;
    simulate_fingers(graph, &multi, &cfg)
}

/// The benchmark set: all seven in full mode, a fast subset in quick mode.
pub fn benchmarks(quick: bool) -> Vec<Benchmark> {
    if quick {
        vec![Benchmark::Tc, Benchmark::Tt]
    } else {
        Benchmark::ALL.to_vec()
    }
}

/// The dataset set: all six in full mode, the two cache-resident ones in
/// quick mode.
pub fn datasets(quick: bool) -> Vec<fingers_graph::datasets::Dataset> {
    use fingers_graph::datasets::Dataset;
    if quick {
        vec![Dataset::AstroPh, Dataset::Mico]
    } else {
        Dataset::ALL.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingers_graph::gen::erdos_renyi;

    #[test]
    fn single_pe_cell_is_consistent() {
        let g = erdos_renyi(50, 200, 1);
        let c = compare_single_pe(&g, Benchmark::Tc);
        assert!(c.speedup > 0.0);
        assert_eq!(
            c.speedup,
            c.flexminer_cycles as f64 / c.fingers_cycles as f64
        );
    }

    #[test]
    fn quick_sets_are_subsets() {
        assert!(benchmarks(true).len() < benchmarks(false).len());
        assert!(datasets(true).len() < datasets(false).len());
    }
}
