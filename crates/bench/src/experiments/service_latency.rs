//! Service latency under concurrent mixed load (DESIGN.md §13).
//!
//! Beyond the paper: FINGERS evaluates isolated runs, but the
//! mining-as-a-service daemon's value is *query* latency when many
//! clients share one resident graph. This experiment starts an
//! in-process daemon (real Unix socket, real protocol round-trips), then
//! drives it with a load generator — several client threads issuing a
//! fixed mix of query classes over shared graphs — and reports p50/p99
//! latency and throughput per class plus overall QPS.
//!
//! Two invariants are asserted along the way, making this a correctness
//! gate as well as a measurement:
//!
//! - every repetition of a class returns the *same* counts (the shared
//!   CSR + plan cache + scheduler must stay bit-identical under
//!   concurrency), and
//! - no query fails: the mix is sized inside the admission queue, so an
//!   `overloaded` or `error` response is a bug, not back-pressure.
//!
//! The raw series is written to `service_latency.json` under the usual
//! results-directory gating.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fingers_mining::EngineConfig;
use fingers_server::{Client, Daemon, DaemonConfig, Json, SchedulerConfig};

use crate::report::{json_escape, write_json};

/// One query class of the load mix.
#[derive(Debug, Clone)]
struct QueryClass {
    /// Short label for the report.
    name: &'static str,
    /// The request line sent verbatim.
    request: &'static str,
}

/// The mixed workload: cheap counts, a motif census, and a heavier
/// 4-clique, across two resident graphs.
const CLASSES: [QueryClass; 5] = [
    QueryClass {
        name: "tc@pl",
        request: r#"{"op":"count","graph":"pl","patterns":["tc"],"threads":2}"#,
    },
    QueryClass {
        name: "wedge@er",
        request: r#"{"op":"count","graph":"er","patterns":["wedge"],"threads":2}"#,
    },
    QueryClass {
        name: "tt@pl",
        request: r#"{"op":"count","graph":"pl","patterns":["tt"],"threads":2}"#,
    },
    QueryClass {
        name: "census@er",
        request: r#"{"op":"motif-census","graph":"er","threads":2}"#,
    },
    QueryClass {
        name: "4cl@pl",
        request: r#"{"op":"count","graph":"pl","patterns":["4cl"],"threads":2}"#,
    },
];

/// Measured latencies of one class, in milliseconds.
#[derive(Debug, Clone)]
pub struct ClassSeries {
    /// Class label (`pattern@graph`).
    pub name: String,
    /// Completed requests.
    pub requests: usize,
    /// Median latency.
    pub p50_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Worst observed latency.
    pub max_ms: f64,
    /// The counts every repetition returned (asserted identical).
    pub counts: Vec<u64>,
}

/// The whole experiment's output.
#[derive(Debug, Clone)]
pub struct ServiceLatencyResult {
    /// Client threads in the load generator.
    pub clients: usize,
    /// Total completed requests across all classes.
    pub requests: usize,
    /// Wall-clock of the whole storm, milliseconds.
    pub wall_ms: f64,
    /// Overall completed queries per second.
    pub qps: f64,
    /// Per-class latency series, in `CLASSES` order.
    pub classes: Vec<ClassSeries>,
}

/// Runs the load storm and writes `service_latency.json`.
pub fn run(quick: bool) -> String {
    let result = run_storm(quick);
    write_json("service_latency", &render_json(&result));
    render(&result)
}

/// Starts the daemon, fires `clients` threads each walking the class mix
/// round-robin, and collects per-class latency series.
// §11: a daemon that fails to start, a request that fails to round-trip,
// or a malformed response is a harness bug the panic-isolated run aborts.
#[allow(clippy::expect_used)]
pub fn run_storm(quick: bool) -> ServiceLatencyResult {
    let clients = if quick { 4 } else { 8 };
    let per_client = if quick { 15 } else { 120 };
    let socket = std::env::temp_dir().join(format!(
        "fingers-service-latency-{}.sock",
        std::process::id()
    ));
    let daemon = Daemon::start(DaemonConfig {
        socket: socket.clone(),
        graphs: vec![
            ("pl".to_owned(), "gen:pl:2000:24000:7".to_owned()),
            ("er".to_owned(), "gen:er:1500:9000:3".to_owned()),
        ],
        engine: EngineConfig::default(),
        sched: SchedulerConfig {
            workers: 4,
            // Room for every in-flight client: this experiment measures
            // latency under load, not admission-control rejections (those
            // have their own tests); any non-ok response is asserted away.
            queue_depth: clients.max(16),
            max_threads_per_query: 2,
            ..SchedulerConfig::default()
        },
    })
    .expect("daemon starts");

    // Each client thread walks the mix round-robin from a different
    // offset, so every class sees load throughout the storm.
    let cursor = Arc::new(AtomicUsize::new(0));
    let cancel = crate::checkpoint::section_token();
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let socket = socket.clone();
            let cursor = Arc::clone(&cursor);
            let cancel = cancel.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("client connects");
                let mut samples: Vec<(usize, f64, Vec<u64>)> = Vec::new();
                for _ in 0..per_client {
                    if cancel.is_cancelled() {
                        break; // watchdog abort: partial series discarded
                    }
                    // ord: relaxed(pure ticket counter over the workload classes)
                    let class = cursor.fetch_add(1, Ordering::Relaxed) % CLASSES.len();
                    let t = Instant::now();
                    let line = client
                        .request(CLASSES[class].request)
                        .expect("request round-trips");
                    let latency_ms = t.elapsed().as_secs_f64() * 1e3;
                    let v = Json::parse(&line).expect("response parses");
                    assert_eq!(
                        v.get("status").and_then(Json::as_str),
                        Some("ok"),
                        "client {c} class {} failed: {line}",
                        CLASSES[class].name
                    );
                    let counts = v
                        .get("counts")
                        .and_then(Json::as_array)
                        .expect("counts present")
                        .iter()
                        .map(|n| n.as_u64().expect("count fits u64"))
                        .collect();
                    samples.push((class, latency_ms, counts));
                }
                samples
            })
        })
        .collect();
    let mut all: Vec<(usize, f64, Vec<u64>)> = Vec::new();
    for handle in handles {
        all.extend(handle.join().expect("client thread"));
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    daemon.shutdown();
    daemon.wait();

    let mut classes = Vec::new();
    for (idx, class) in CLASSES.iter().enumerate() {
        let mut latencies: Vec<f64> = Vec::new();
        let mut counts: Option<Vec<u64>> = None;
        for (c, ms, sample_counts) in all.iter().filter(|(c, _, _)| *c == idx) {
            let _ = c;
            latencies.push(*ms);
            match &counts {
                None => counts = Some(sample_counts.clone()),
                Some(expected) => assert_eq!(
                    expected, sample_counts,
                    "class {} returned diverging counts under concurrency",
                    class.name
                ),
            }
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        classes.push(ClassSeries {
            name: class.name.to_owned(),
            requests: latencies.len(),
            p50_ms: percentile(&latencies, 50.0),
            p99_ms: percentile(&latencies, 99.0),
            max_ms: latencies.last().copied().unwrap_or(0.0),
            counts: counts.unwrap_or_default(),
        });
    }
    let requests = all.len();
    ServiceLatencyResult {
        clients,
        requests,
        wall_ms,
        qps: requests as f64 / (wall_ms / 1e3).max(1e-9),
        classes,
    }
}

/// The `p`-th percentile of an ascending-sorted series (nearest-rank on
/// the inclusive index scale; 0 for an empty series).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

// §11: latencies are elapsed-time measurements, always finite; a NaN is a
// harness bug.
#[allow(clippy::expect_used)]
fn render(r: &ServiceLatencyResult) -> String {
    let mut out = format!(
        "## Service latency — concurrent mixed queries over shared graphs\n\n\
         {} client connections walked a {}-class query mix round-robin \
         against the daemon ({} completed queries, {:.1} QPS overall, \
         4 scheduler workers, 2 threads per query). Every repetition of a \
         class returned identical counts, and no query was rejected or \
         failed — the latency below is pure scheduling + execution, on \
         graphs loaded exactly once.\n\n\
         | class | requests | p50 ms | p99 ms | max ms |\n\
         |---|---|---|---|---|\n",
        r.clients,
        r.classes.len(),
        r.requests,
        r.qps,
    );
    for c in &r.classes {
        out.push_str(&format!(
            "| {} | {} | {:.2} | {:.2} | {:.2} |\n",
            c.name, c.requests, c.p50_ms, c.p99_ms, c.max_ms
        ));
    }
    let slowest = r
        .classes
        .iter()
        .max_by(|a, b| a.p99_ms.partial_cmp(&b.p99_ms).expect("finite"))
        .map(|c| c.name.as_str())
        .unwrap_or("-");
    out.push_str(&format!(
        "\n- total wall: {:.0} ms; the heaviest class (`{slowest}`) bounds \
         the tail, while cheap classes keep their p50 near the protocol \
         floor because the plan cache and resident CSRs leave nothing \
         per-query to set up\n",
        r.wall_ms
    ));
    out
}

/// Renders the series as a JSON document.
fn render_json(r: &ServiceLatencyResult) -> String {
    let mut out = format!(
        "{{\n  \"clients\": {},\n  \"requests\": {},\n  \"wall_ms\": {:.3},\n  \
         \"qps\": {:.3},\n  \"classes\": [\n",
        r.clients, r.requests, r.wall_ms, r.qps
    );
    for (i, c) in r.classes.iter().enumerate() {
        let counts = c
            .counts
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"class\": \"{}\", \"requests\": {}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"max_ms\": {:.3}, \"counts\": [{counts}]}}{}\n",
            json_escape(&c.name),
            c.requests,
            c.p50_ms,
            c.p99_ms,
            c.max_ms,
            if i + 1 == r.classes.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0, 10.0];
        assert_eq!(percentile(&s, 50.0), 3.0);
        assert_eq!(percentile(&s, 99.0), 10.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn quick_storm_completes_with_consistent_counts() {
        let r = run_storm(true);
        assert_eq!(r.requests, 4 * 15);
        assert_eq!(r.classes.len(), CLASSES.len());
        for c in &r.classes {
            assert!(c.requests > 0, "class {} saw no load", c.name);
            assert!(c.p50_ms <= c.p99_ms && c.p99_ms <= c.max_ms + 1e-9);
            assert!(!c.counts.is_empty());
        }
        // The census class returns two counts (triangle + wedge).
        let census = r.classes.iter().find(|c| c.name == "census@er").unwrap();
        assert_eq!(census.counts.len(), 2);
        assert!(r.qps > 0.0);
    }

    #[test]
    fn json_document_is_well_formed() {
        let r = ServiceLatencyResult {
            clients: 2,
            requests: 4,
            wall_ms: 100.0,
            qps: 40.0,
            classes: vec![ClassSeries {
                name: "tc@pl".into(),
                requests: 4,
                p50_ms: 1.0,
                p99_ms: 2.0,
                max_ms: 2.5,
                counts: vec![42],
            }],
        };
        let j = render_json(&r);
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\"classes\": ["));
        assert!(j.contains("\"counts\": [42]"));
        assert!(j.contains("\"qps\": 40.000"));
    }
}
