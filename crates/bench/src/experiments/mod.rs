//! One module per table/figure of the paper's evaluation (Section 6), plus
//! the extra ablations of DESIGN.md §8.
//!
//! Every `run(quick)` returns a rendered markdown report containing the
//! same rows/series the paper presents, with our measured values next to
//! the paper's reference numbers where the paper states them.

pub mod ablations;
pub mod bitmap_kernels;
pub mod count_fusion;
pub mod energy;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig9;
pub mod parallelism;
pub mod service_latency;
pub mod simd_kernels;
pub mod soak_chaos;
pub mod steal_balance;
pub mod table1;
pub mod table2;
pub mod table3;
