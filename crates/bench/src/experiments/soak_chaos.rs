//! Chaos soak: storm the daemon under seeded fault injection and prove
//! the resource governor's claims (DESIGN.md §15) hold end to end.
//!
//! For each seed in a fixed matrix, an in-process daemon (real Unix
//! socket, global memory budget small enough that the storm walks the
//! degradation ladder) is stormed by retrying client threads while the
//! chaos plan injects allocation failures, mining-worker panics,
//! scheduler-pool panics, and socket drops. The harness then asserts:
//!
//! - **survival** — the daemon answers `ping` after the storm; injected
//!   pool panics were healed by the phoenix guard (rebuild count ≥ the
//!   injected count is reported, never a dead socket);
//! - **no leaked bytes** — once the storm drains, the global gauge is
//!   back to its baseline: exactly the plan cache's footprint, nothing
//!   orphaned by any aborted or panicked query;
//! - **no leaked sockets** — shutdown removes the socket file;
//! - **bit-identical counts** — every successful repetition of a class
//!   returned the same counts as a single-threaded ungoverned run;
//! - **typed budget failures** — a companion daemon with a 1-byte
//!   per-query budget fails a heavy query with the `mem-budget` kind
//!   (client exit 11), never an OOM or a partial count.
//!
//! Recovery latency (a failure on a connection to that client's next
//! success) is reported as a p99 per seed. The raw series lands in
//! `BENCH_soak_chaos.json` under the usual results-directory gating.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fingers_graph::CsrGraph;
use fingers_mining::chaos::{self, ChaosPlan, ChaosSite};
use fingers_mining::{try_count_multi_parallel_with, EngineConfig};
use fingers_pattern::{Induced, MultiPlan};
use fingers_server::{Client, Daemon, DaemonConfig, Json, RetryPolicy, SchedulerConfig};

use crate::report::write_json;

/// The fixed seed matrix: every CI run replays exactly these fault
/// streams (ci.sh runs the same three via `FINGERS_CHAOS_SEED`).
pub const SEEDS: [u64; 3] = [11, 23, 47];

/// How a class's responses are allowed to resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// Must succeed (chaos failures aside) with the serial counts.
    Ok,
    /// A 1 ms deadline: `cancelled` is the norm, a fast `ok` is legal.
    MostlyCancelled,
    /// Malformed on purpose: always a `bad-request` rejection.
    BadRequest,
}

/// One query class of the storm mix.
struct SoakClass {
    name: &'static str,
    request: &'static str,
    /// Graph + patterns for the serial baseline (`Expect::Ok` only).
    baseline: Option<(&'static str, &'static [&'static str])>,
    expect: Expect,
}

const PL_SPEC: &str = "gen:pl:2000:24000:7";
const ER_SPEC: &str = "gen:er:1500:9000:3";

const CLASSES: [SoakClass; 6] = [
    SoakClass {
        name: "tc@pl",
        request: r#"{"op":"count","graph":"pl","patterns":["tc"],"threads":2}"#,
        baseline: Some(("pl", &["tc"])),
        expect: Expect::Ok,
    },
    SoakClass {
        name: "wedge@er",
        request: r#"{"op":"count","graph":"er","patterns":["wedge"],"threads":2}"#,
        baseline: Some(("er", &["wedge"])),
        expect: Expect::Ok,
    },
    SoakClass {
        name: "census@er",
        request: r#"{"op":"motif-census","graph":"er","threads":2}"#,
        baseline: Some(("er", &["tc", "wedge"])),
        expect: Expect::Ok,
    },
    SoakClass {
        name: "4cl@pl",
        request: r#"{"op":"count","graph":"pl","patterns":["4cl"],"threads":2}"#,
        baseline: Some(("pl", &["4cl"])),
        expect: Expect::Ok,
    },
    SoakClass {
        name: "deadline@pl",
        request: r#"{"op":"count","graph":"pl","patterns":["4cl"],"threads":2,"timeout_ms":1}"#,
        baseline: Some(("pl", &["4cl"])),
        expect: Expect::MostlyCancelled,
    },
    SoakClass {
        name: "bad-pattern",
        request: r#"{"op":"count","graph":"pl","patterns":["zzz"]}"#,
        baseline: None,
        expect: Expect::BadRequest,
    },
];

/// Outcome of one seed's storm.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// The chaos seed.
    pub seed: u64,
    /// Requests the clients attempted (including retried lines once).
    pub attempted: usize,
    /// Requests answered `ok` with verified counts.
    pub ok: usize,
    /// Typed failures by response kind (`engine`, `cancelled`, …).
    pub typed_failures: Vec<(String, usize)>,
    /// Connections the chaos plan (or a pool death) severed mid-request.
    pub transport_failures: usize,
    /// Ladder steps the scheduler took during the storm (stat delta).
    pub degradations: u64,
    /// Pool workers the phoenix guard rebuilt.
    pub pool_rebuilds: u64,
    /// Faults the chaos plan actually injected, by site name.
    pub injected: Vec<(&'static str, u64)>,
    /// p99 of failure→next-success latency per client, milliseconds.
    pub recovery_p99_ms: f64,
    /// Global gauge after the storm drained (must equal the baseline).
    pub gauge_final_bytes: u64,
    /// The gauge's baseline: the plan cache's accounted footprint.
    pub gauge_baseline_bytes: u64,
    /// High-water mark the gauge reached during the storm.
    pub gauge_peak_bytes: u64,
    /// Whether the post-storm `ping` answered ok.
    pub survived: bool,
    /// Wall-clock of the storm, milliseconds.
    pub wall_ms: f64,
}

/// The whole experiment: one storm per seed plus the budget probe.
#[derive(Debug, Clone)]
pub struct SoakResult {
    /// Per-seed outcomes, in `SEEDS` order.
    pub seeds: Vec<SeedOutcome>,
    /// Whether the 1-byte-budget probe failed typed with `mem-budget`.
    pub mem_budget_typed: bool,
}

/// Runs the full seed matrix and writes `BENCH_soak_chaos.json`.
pub fn run(quick: bool) -> String {
    let result = run_soak(quick);
    write_json("BENCH_soak_chaos", &render_json(&result));
    render(&result)
}

/// Storms every seed of the matrix, then runs the budget probe.
pub fn run_soak(quick: bool) -> SoakResult {
    let seeds = SEEDS.iter().map(|&s| run_seed(s, quick)).collect();
    SoakResult {
        seeds,
        mem_budget_typed: mem_budget_probe(),
    }
}

/// Suppresses chaos-injected panic messages (and only those) so a soak's
/// output is the report, not a wall of expected backtraces.
fn quiet_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| chaos::is_chaos_panic(s))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| chaos::is_chaos_panic(s))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Clears the process-global chaos plan even when the storm panics, so a
/// failing soak cannot leak faults into later sections of a full run.
struct ChaosGuard;

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        chaos::clear();
    }
}

/// Serial, ungoverned baseline counts for every `Expect::Ok` class.
// §11: the baseline runs chaos-free on clean generated graphs; a failure
// there is a harness bug the panic-isolated section reports.
#[allow(clippy::expect_used)]
fn baselines() -> Vec<Option<Vec<u64>>> {
    let pl = load(PL_SPEC);
    let er = load(ER_SPEC);
    CLASSES
        .iter()
        .map(|class| {
            class.baseline.map(|(graph, patterns)| {
                let graph = if graph == "pl" { &pl } else { &er };
                let patterns: Vec<_> = patterns
                    .iter()
                    .map(|p| fingers_pattern::parse_pattern(p).expect("soak pattern parses"))
                    .collect();
                let multi = MultiPlan::new("soak", &patterns, Induced::Vertex);
                try_count_multi_parallel_with(graph, &multi, 1, &EngineConfig::default())
                    .expect("serial baseline")
                    .per_pattern
            })
        })
        .collect()
}

// §11: generator specs are compile-time constants; see above.
#[allow(clippy::expect_used)]
fn load(spec: &str) -> CsrGraph {
    let parts: Vec<&str> = spec.split(':').collect();
    let (n, m, seed) = (
        parts[2].parse().expect("n"),
        parts[3].parse().expect("m"),
        parts[4].parse().expect("seed"),
    );
    match parts[1] {
        "er" => fingers_graph::gen::erdos_renyi(n, m, seed),
        _ => fingers_graph::gen::chung_lu_power_law(&fingers_graph::gen::ChungLuConfig::new(
            n, m, seed,
        )),
    }
}

/// Storms one seed: start a governed daemon, install the chaos plan, let
/// retrying clients walk the mix, then verify recovery and drain state.
// §11: a daemon that cannot start or a stats/ping line that does not
// parse is a harness bug the panic-isolated section reports.
#[allow(clippy::expect_used)]
pub fn run_seed(seed: u64, quick: bool) -> SeedOutcome {
    quiet_chaos_panics();
    let clients = if quick { 4 } else { 6 };
    let per_client = if quick { 20 } else { 100 };
    let socket =
        std::env::temp_dir().join(format!("fingers-soak-{seed}-{}.sock", std::process::id()));
    let daemon = Daemon::start(DaemonConfig {
        socket: socket.clone(),
        graphs: vec![
            ("pl".to_owned(), PL_SPEC.to_owned()),
            ("er".to_owned(), ER_SPEC.to_owned()),
        ],
        engine: EngineConfig::default(),
        sched: SchedulerConfig {
            workers: 3,
            queue_depth: 16,
            max_threads_per_query: 2,
            // Sized against the storm's observed gauge peak (~0.5 MiB
            // with every class in flight) so concurrent scratch walks the
            // whole ladder — shrink and clamp bands included, not just an
            // instant jump to shed — while drained-state queries still
            // fit comfortably.
            mem_budget: Some(256 * 1024),
            ..SchedulerConfig::default()
        },
    })
    .expect("soak daemon starts");
    let expected = baselines();

    let degraded_before = ping_stats(&socket).1;
    let _guard = ChaosGuard;
    // Rates are per *draw*, and the sites draw at wildly different
    // frequencies (the alloc site thousands of times per query, the socket
    // site once per request), so the per-site cap is what shapes the
    // storm: faults front-load while the cap fills, then the tail of the
    // storm observes recovery and drain.
    chaos::install(ChaosPlan {
        alloc_per_mille: 2,
        worker_panic_per_mille: 5,
        sched_worker_per_mille: 30,
        socket_io_per_mille: 20,
        max_per_site: if quick { 6 } else { 15 },
        ..ChaosPlan::quiet(seed)
    });

    let cursor = Arc::new(AtomicUsize::new(0));
    let cancel = crate::checkpoint::section_token();
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let socket = socket.clone();
            let cursor = Arc::clone(&cursor);
            let cancel = cancel.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                storm_client(c, seed, &socket, &cursor, per_client, &expected, &cancel)
            })
        })
        .collect();
    let mut attempted = 0usize;
    let mut ok = 0usize;
    let mut transport_failures = 0usize;
    let mut typed: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    let mut recoveries: Vec<f64> = Vec::new();
    for handle in handles {
        let s = handle.join().expect("storm client thread");
        attempted += s.attempted;
        ok += s.ok;
        transport_failures += s.transport_failures;
        for (kind, n) in s.typed_failures {
            *typed.entry(kind).or_default() += n;
        }
        recoveries.extend(s.recoveries_ms);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let injected = [
        ChaosSite::Alloc,
        ChaosSite::WorkerPanic,
        ChaosSite::SchedWorker,
        ChaosSite::SocketIo,
    ]
    .map(|site| (site.name(), chaos::injected(site)));
    chaos::clear();

    // The storm is over and chaos is off: the daemon must answer a fresh
    // connection, and the drained gauge must be exactly the plan cache.
    let (survived, _, pool_rebuilds, gauge_peak_bytes) = ping_stats(&socket);
    let (gauge_final_bytes, gauge_baseline_bytes, degraded_after) = drained_gauge(&socket);
    assert_eq!(
        gauge_final_bytes, gauge_baseline_bytes,
        "seed {seed}: gauge did not return to the plan-cache baseline"
    );
    daemon.shutdown();
    daemon.wait();
    assert!(
        !socket.exists(),
        "seed {seed}: shutdown leaked the socket file"
    );

    recoveries.sort_by(|a, b| a.partial_cmp(b).expect("finite recovery latencies"));
    SeedOutcome {
        seed,
        attempted,
        ok,
        typed_failures: typed.into_iter().collect(),
        transport_failures,
        degradations: degraded_after.saturating_sub(degraded_before),
        pool_rebuilds,
        injected: injected.to_vec(),
        recovery_p99_ms: percentile(&recoveries, 99.0),
        gauge_final_bytes,
        gauge_baseline_bytes,
        gauge_peak_bytes,
        survived,
        wall_ms,
    }
}

/// What one storm client thread observed.
struct ClientSeries {
    attempted: usize,
    ok: usize,
    transport_failures: usize,
    typed_failures: Vec<(String, usize)>,
    recoveries_ms: Vec<f64>,
}

/// One client thread: walk the mix round-robin, retry overloads under a
/// seeded policy, reconnect through chaos-severed sockets, and verify
/// every `ok` against the serial baseline.
// §11: a response that is neither ok nor a typed error kind is a protocol
// bug the panic-isolated section reports.
#[allow(clippy::expect_used)]
fn storm_client(
    client_idx: usize,
    seed: u64,
    socket: &std::path::Path,
    cursor: &AtomicUsize,
    per_client: usize,
    expected: &[Option<Vec<u64>>],
    cancel: &fingers_mining::CancelToken,
) -> ClientSeries {
    let policy = RetryPolicy {
        retries: 3,
        base_ms: 5,
        seed: seed ^ ((client_idx as u64) << 16),
    };
    let mut series = ClientSeries {
        attempted: 0,
        ok: 0,
        transport_failures: 0,
        typed_failures: Vec::new(),
        recoveries_ms: Vec::new(),
    };
    let mut typed: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    let mut conn: Option<Client> = None;
    let mut failed_at: Option<Instant> = None;
    for _ in 0..per_client {
        if cancel.is_cancelled() {
            break; // watchdog abort: partial series is still reported
        }
        // ord: relaxed(pure ticket counter over the workload classes)
        let idx = cursor.fetch_add(1, Ordering::Relaxed) % CLASSES.len();
        let class = &CLASSES[idx];
        series.attempted += 1;
        let client = match conn.take() {
            Some(c) => c,
            None => match Client::connect(socket) {
                Ok(c) => c,
                Err(_) => {
                    // Accept raced a shutdown sweep or the listener was
                    // busy; count it and move on with a fresh attempt.
                    series.transport_failures += 1;
                    failed_at.get_or_insert_with(Instant::now);
                    continue;
                }
            },
        };
        let mut client = client;
        let line = match client.request_with_backoff(class.request, &policy) {
            Ok(line) => {
                conn = Some(client);
                line
            }
            Err(_) => {
                // Chaos dropped the socket mid-request (or the daemon is
                // mid-heal): reconnect on the next iteration.
                series.transport_failures += 1;
                failed_at.get_or_insert_with(Instant::now);
                continue;
            }
        };
        let v = Json::parse(&line).expect("response parses");
        match v.get("status").and_then(Json::as_str) {
            Some("ok") => {
                if let Some(t) = failed_at.take() {
                    series.recoveries_ms.push(t.elapsed().as_secs_f64() * 1e3);
                }
                assert_ne!(
                    class.expect,
                    Expect::BadRequest,
                    "class {} must never succeed: {line}",
                    class.name
                );
                let counts: Vec<u64> = v
                    .get("counts")
                    .and_then(Json::as_array)
                    .expect("ok count response carries counts")
                    .iter()
                    .map(|n| n.as_u64().expect("count fits u64"))
                    .collect();
                let serial = expected[idx].as_ref().expect("ok class has a baseline");
                assert_eq!(
                    &counts, serial,
                    "seed {seed} class {}: counts diverged from serial",
                    class.name
                );
                series.ok += 1;
            }
            _ => {
                // Error responses carry a `kind`; cancellations spell
                // their verdict in `status` alone.
                let kind = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .or_else(|| v.get("status").and_then(Json::as_str))
                    .unwrap_or_else(|| panic!("untyped failure response: {line}"))
                    .to_owned();
                match class.expect {
                    Expect::BadRequest => {
                        assert_eq!(kind, "bad-request", "class {}: {line}", class.name)
                    }
                    // Anything typed is legal under chaos: cancelled for
                    // the deadline class, engine for injected deaths,
                    // overloaded when retries exhaust under shed.
                    Expect::Ok | Expect::MostlyCancelled => {
                        failed_at.get_or_insert_with(Instant::now);
                    }
                }
                *typed.entry(kind).or_default() += 1;
            }
        }
    }
    series.typed_failures = typed.into_iter().collect();
    series
}

/// `(answered, degraded-count, pool rebuilds, gauge peak)` from one fresh
/// `ping` + `stats` round-trip; zeros when the daemon is unreachable.
fn ping_stats(socket: &std::path::Path) -> (bool, u64, u64, u64) {
    let Ok(mut client) = Client::connect(socket) else {
        return (false, 0, 0, 0);
    };
    let Ok(line) = client.request(r#"{"op":"ping"}"#) else {
        return (false, 0, 0, 0);
    };
    let answered = Json::parse(&line)
        .ok()
        .and_then(|v| v.get("status").and_then(Json::as_str).map(|s| s == "ok"))
        .unwrap_or(false);
    let rebuilds = Json::parse(&line)
        .ok()
        .and_then(|v| {
            v.get("pool")
                .and_then(|p| p.get("rebuilds"))
                .and_then(Json::as_u64)
        })
        .unwrap_or(0);
    let peak = Json::parse(&line)
        .ok()
        .and_then(|v| v.get("gauge_peak_bytes").and_then(Json::as_u64))
        .unwrap_or(0);
    let degraded = client
        .request(r#"{"op":"stats"}"#)
        .ok()
        .and_then(|l| Json::parse(&l).ok())
        .and_then(|v| {
            v.get("scheduler")
                .and_then(|s| s.get("degraded"))
                .and_then(Json::as_u64)
        })
        .unwrap_or(0);
    (answered, degraded, rebuilds, peak)
}

/// `(gauge bytes, plan-cache bytes, degraded-count)` from `stats` once
/// the storm has drained.
// §11: the daemon survived `ping` just before; a stats line that fails to
// parse here is a protocol bug.
#[allow(clippy::expect_used)]
fn drained_gauge(socket: &std::path::Path) -> (u64, u64, u64) {
    let line = Client::connect(socket)
        .and_then(|mut c| c.request(r#"{"op":"stats"}"#))
        .expect("post-storm stats");
    let v = Json::parse(&line).expect("stats parses");
    let gauge = v
        .get("memory")
        .and_then(|m| m.get("gauge_bytes"))
        .and_then(Json::as_u64)
        .expect("memory.gauge_bytes");
    let cache = v
        .get("plan_cache")
        .and_then(|c| c.get("bytes"))
        .and_then(Json::as_u64)
        .expect("plan_cache.bytes");
    let degraded = v
        .get("scheduler")
        .and_then(|s| s.get("degraded"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    (gauge, cache, degraded)
}

/// The budget probe: a companion daemon whose engine carries a 1-byte
/// per-query budget must fail a heavy query with the `mem-budget` kind
/// (client exit 11) — typed, all-or-nothing, never an OOM.
// §11: see `run_seed`.
#[allow(clippy::expect_used)]
fn mem_budget_probe() -> bool {
    let socket =
        std::env::temp_dir().join(format!("fingers-soak-budget-{}.sock", std::process::id()));
    let daemon = Daemon::start(DaemonConfig {
        socket: socket.clone(),
        graphs: vec![("pl".to_owned(), PL_SPEC.to_owned())],
        engine: EngineConfig {
            query_mem_budget: Some(1),
            ..EngineConfig::default()
        },
        sched: SchedulerConfig {
            workers: 1,
            max_threads_per_query: 2,
            ..SchedulerConfig::default()
        },
    })
    .expect("budget daemon starts");
    let line = Client::connect(&socket)
        .and_then(|mut c| c.request(r#"{"op":"count","graph":"pl","patterns":["4cl"]}"#))
        .expect("budget probe round-trips");
    let v = Json::parse(&line).expect("budget response parses");
    let typed = v.get("kind").and_then(Json::as_str) == Some("mem-budget")
        && fingers_server::proto::exit_code_for_response(&v) == 11;
    daemon.shutdown();
    daemon.wait();
    typed
}

/// The `p`-th percentile of an ascending-sorted series (nearest-rank; 0
/// for an empty series).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn render(r: &SoakResult) -> String {
    let mut out = String::from(
        "## Chaos soak — seeded fault injection against the governed daemon\n\n\
         Each seed storms the daemon (3 workers, 256 KiB global budget) with \
         retrying clients while the chaos plan injects allocation failures, \
         worker panics, scheduler-pool panics, and socket drops. Every \
         successful query returned counts bit-identical to a serial \
         ungoverned run; after every storm the global gauge drained back to \
         exactly the plan cache's footprint and shutdown removed the \
         socket.\n\n\
         | seed | attempted | ok | typed failures | transport | degradations \
         | pool rebuilds | recovery p99 ms | gauge drained |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    for s in &r.seeds {
        let typed: usize = s.typed_failures.iter().map(|(_, n)| n).sum();
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {:.1} | {} B |\n",
            s.seed,
            s.attempted,
            s.ok,
            typed,
            s.transport_failures,
            s.degradations,
            s.pool_rebuilds,
            s.recovery_p99_ms,
            s.gauge_final_bytes,
        ));
    }
    out.push_str(&format!(
        "\n- per-query budget probe: a 1-byte budget failed a 4-clique query \
         typed (`mem-budget`, exit 11): {}\n\
         - every daemon survived its storm and answered `ping` afterwards: {}\n",
        if r.mem_budget_typed { "yes" } else { "NO" },
        if r.seeds.iter().all(|s| s.survived) {
            "yes"
        } else {
            "NO"
        },
    ));
    out
}

/// Renders the soak as a JSON document.
fn render_json(r: &SoakResult) -> String {
    let mut out = format!(
        "{{\n  \"mem_budget_typed\": {},\n  \"seeds\": [\n",
        r.mem_budget_typed
    );
    for (i, s) in r.seeds.iter().enumerate() {
        let typed = s
            .typed_failures
            .iter()
            .map(|(k, n)| format!("\"{k}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let injected = s
            .injected
            .iter()
            .map(|(k, n)| format!("\"{k}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"seed\": {}, \"attempted\": {}, \"ok\": {}, \
             \"typed_failures\": {{{typed}}}, \"transport_failures\": {}, \
             \"degradations\": {}, \"pool_rebuilds\": {}, \
             \"injected\": {{{injected}}}, \"recovery_p99_ms\": {:.3}, \
             \"gauge_final_bytes\": {}, \"gauge_baseline_bytes\": {}, \
             \"gauge_peak_bytes\": {}, \"survived\": {}, \"wall_ms\": {:.3}}}{}\n",
            s.seed,
            s.attempted,
            s.ok,
            s.transport_failures,
            s.degradations,
            s.pool_rebuilds,
            s.recovery_p99_ms,
            s.gauge_final_bytes,
            s.gauge_baseline_bytes,
            s.gauge_peak_bytes,
            s.survived,
            s.wall_ms,
            if i + 1 == r.seeds.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0, 10.0];
        assert_eq!(percentile(&s, 50.0), 3.0);
        assert_eq!(percentile(&s, 99.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn json_document_is_well_formed() {
        let r = SoakResult {
            seeds: vec![SeedOutcome {
                seed: 11,
                attempted: 80,
                ok: 60,
                typed_failures: vec![("cancelled".into(), 10), ("engine".into(), 4)],
                transport_failures: 6,
                degradations: 3,
                pool_rebuilds: 2,
                injected: vec![("alloc", 1), ("sched-worker", 2)],
                recovery_p99_ms: 12.5,
                gauge_final_bytes: 4096,
                gauge_baseline_bytes: 4096,
                gauge_peak_bytes: 65536,
                survived: true,
                wall_ms: 900.0,
            }],
            mem_budget_typed: true,
        };
        let j = render_json(&r);
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\"mem_budget_typed\": true"));
        assert!(j.contains("\"cancelled\": 10"));
        assert!(j.contains("\"sched-worker\": 2"));
        assert!(j.contains("\"survived\": true"));
        let m = render(&r);
        assert!(m.contains("| 11 | 80 | 60 |"));
        assert!(m.contains("exit 11"));
    }

    /// The real soak (quick sizing, first seed only) — also exercised with
    /// the full matrix by `run_all` and the dedicated chaos test binary.
    #[test]
    fn quick_storm_survives_and_drains() {
        let s = run_seed(SEEDS[0], true);
        assert!(s.survived, "daemon died during the storm");
        assert!(s.ok > 0, "no query survived chaos");
        assert_eq!(s.gauge_final_bytes, s.gauge_baseline_bytes);
        assert!(s.attempted >= s.ok);
    }

    #[test]
    fn budget_probe_is_typed() {
        assert!(mem_budget_probe(), "mem-budget failure was not typed");
    }
}
