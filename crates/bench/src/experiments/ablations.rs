//! Ablations beyond the paper (DESIGN.md §8): sensitivity sweeps for the
//! design parameters the paper fixes or calls "insensitive".

use fingers_core::config::PeConfig;
use fingers_graph::datasets::Dataset;
use fingers_pattern::benchmarks::Benchmark;
use fingers_pattern::{Induced, MultiPlan, Pattern};

use crate::datasets::load;
use crate::runner::run_fingers_single;

/// Sweeps the pseudo-DFS maximum group size (the paper claims performance
/// is insensitive to this parameter — we test it).
pub fn group_size_sweep(quick: bool) -> String {
    let d = if quick {
        Dataset::AstroPh
    } else {
        Dataset::Youtube
    };
    let g = load(d);
    let b = Benchmark::Tt;
    let mut out = format!(
        "### Ablation — pseudo-DFS max group size ({} / {})\n\n| max group | cycles | vs default |\n|---|---|---|\n",
        d.abbrev(),
        b.abbrev()
    );
    let base = run_fingers_single(g, b, PeConfig::default()).cycles;
    for gs in [1usize, 2, 4, 8, 16, 32] {
        let r = run_fingers_single(
            g,
            b,
            PeConfig {
                max_group_size: gs,
                ..PeConfig::default()
            },
        );
        out.push_str(&format!(
            "| {gs} | {} | {:.2}× |\n",
            r.cycles,
            base as f64 / r.cycles as f64
        ));
    }
    out
}

/// Sweeps the task-divider max-load threshold.
pub fn max_load_sweep(quick: bool) -> String {
    let d = if quick {
        Dataset::AstroPh
    } else {
        Dataset::Youtube
    };
    let g = load(d);
    let b = Benchmark::Cyc;
    let mut out = format!(
        "### Ablation — task-divider max load ({} / {})\n\n| max load | cycles | balance rate |\n|---|---|---|\n",
        d.abbrev(),
        b.abbrev()
    );
    for ml in [1usize, 2, 4, 8] {
        let r = run_fingers_single(
            g,
            b,
            PeConfig {
                max_load: ml,
                ..PeConfig::default()
            },
        );
        out.push_str(&format!(
            "| {ml} | {} | {:.1}% |\n",
            r.cycles,
            r.balance_rate() * 100.0
        ));
    }
    out
}

/// Sweeps the segment geometry `(s_l, s_s)` at fixed IU count.
pub fn segment_geometry_sweep(quick: bool) -> String {
    let d = if quick {
        Dataset::AstroPh
    } else {
        Dataset::Youtube
    };
    let g = load(d);
    let b = Benchmark::Tt;
    let mut out = format!(
        "### Ablation — segment geometry ({} / {})\n\n| s_l | s_s | cycles |\n|---|---|---|\n",
        d.abbrev(),
        b.abbrev()
    );
    for (sl, ss) in [(8usize, 2usize), (16, 4), (32, 8), (64, 16)] {
        let r = run_fingers_single(
            g,
            b,
            PeConfig {
                long_segment_len: sl,
                short_segment_len: ss,
                ..PeConfig::default()
            },
        );
        out.push_str(&format!("| {sl} | {ss} | {} |\n", r.cycles));
    }
    out
}

/// Compares vertex- vs edge-induced plans for the tailed triangle: the
/// edge-induced plan drops its subtractions (Section 2.1), changing both
/// counts and the available parallelism.
pub fn induced_semantics_comparison(quick: bool) -> String {
    let d = if quick {
        Dataset::AstroPh
    } else {
        Dataset::Mico
    };
    let g = load(d);
    let mut out = format!(
        "### Ablation — vertex- vs edge-induced (tailed triangle, {})\n\n| semantics | embeddings | FINGERS cycles |\n|---|---|---|\n",
        d.abbrev()
    );
    for induced in [Induced::Vertex, Induced::Edge] {
        let multi = MultiPlan::new("tt", &[Pattern::tailed_triangle()], induced);
        let mut cfg = fingers_core::config::ChipConfig::single_pe();
        cfg.pe = PeConfig::default();
        let r = fingers_core::chip::simulate_fingers(g, &multi, &cfg);
        out.push_str(&format!(
            "| {induced:?} | {} | {} |\n",
            r.total_embeddings(),
            r.cycles
        ));
    }
    out
}

/// Sweeps the global scheduler's root order — the paper's Section 6.3
/// future-work locality knob.
pub fn root_schedule_sweep(quick: bool) -> String {
    use fingers_core::chip::{simulate_fingers_scheduled, RootSchedule};
    let d = if quick {
        Dataset::AstroPh
    } else {
        Dataset::LiveJournal
    };
    let g = load(d);
    let multi = Benchmark::Cyc.plan();
    let cfg = fingers_core::config::ChipConfig::default();
    let mut out = format!(
        "### Ablation — root scheduling policy ({} / cyc, 20 PEs)\n\n\
         | schedule | cycles | shared-cache miss rate |\n|---|---|---|\n",
        d.abbrev()
    );
    for schedule in [
        RootSchedule::Sequential,
        RootSchedule::Strided,
        RootSchedule::DegreeDescending,
    ] {
        let r = simulate_fingers_scheduled(g, &multi, &cfg, schedule);
        out.push_str(&format!(
            "| {schedule:?} | {} | {:.1}% |\n",
            r.cycles,
            r.shared_cache.miss_rate() * 100.0
        ));
    }
    out
}

/// Measures the pattern-aware vs pattern-oblivious gap (the Gramer vs
/// AutoMine comparison of Section 2.2) on a scaled-down graph: wall time of
/// the two software engines plus the oblivious paradigm's wasted-work
/// ratio (isomorphism checks per matching subgraph).
pub fn paradigm_gap(quick: bool) -> String {
    use fingers_mining::oblivious;
    use fingers_pattern::Pattern;
    use std::time::Instant;

    let g = if quick {
        fingers_graph::gen::erdos_renyi(300, 900, 3)
    } else {
        fingers_graph::gen::chung_lu_power_law(&fingers_graph::gen::ChungLuConfig::new(
            2_000, 8_000, 3,
        ))
    };
    let mut out = String::from(
        "### Ablation — pattern-aware vs pattern-oblivious paradigm\n\n\
         | pattern | aware (ms) | oblivious (ms) | slowdown | checks per match |\n\
         |---|---|---|---|---|\n",
    );
    for p in [
        Pattern::triangle(),
        Pattern::tailed_triangle(),
        Pattern::four_cycle(),
    ] {
        let plan = fingers_pattern::ExecutionPlan::compile(&p, fingers_pattern::Induced::Vertex);
        let t0 = Instant::now();
        let aware = fingers_mining::count_plan(&g, &plan);
        let t_aware = t0.elapsed();
        let t1 = Instant::now();
        let obl = oblivious::count_embeddings_oblivious(&g, &p);
        let t_obl = t1.elapsed();
        assert_eq!(aware, obl, "{p}");
        let ratio = oblivious::wasted_check_ratio(&g, &p);
        out.push_str(&format!(
            "| {p} | {:.1} | {:.1} | {:.1}× | {ratio:.1} |\n",
            t_aware.as_secs_f64() * 1e3,
            t_obl.as_secs_f64() * 1e3,
            t_obl.as_secs_f64() / t_aware.as_secs_f64().max(1e-9),
        ));
    }
    out.push_str(
        "\n- the paper's Section 2.2 rationale: the oblivious paradigm's \
         gap \"could not be closed by hardware acceleration\", which is why \
         FINGERS (and FlexMiner) build on pattern-aware plans\n",
    );
    out
}

/// Runs all ablations.
pub fn run(quick: bool) -> String {
    let mut out = String::from("## Ablations beyond the paper (DESIGN.md §8)\n\n");
    out.push_str(&group_size_sweep(quick));
    out.push('\n');
    out.push_str(&max_load_sweep(quick));
    out.push('\n');
    out.push_str(&segment_geometry_sweep(quick));
    out.push('\n');
    out.push_str(&induced_semantics_comparison(quick));
    out.push('\n');
    out.push_str(&root_schedule_sweep(quick));
    out.push('\n');
    out.push_str(&paradigm_gap(quick));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_ablations_render() {
        let r = super::run(true);
        assert!(r.contains("max group size"));
        assert!(r.contains("max load"));
        assert!(r.contains("segment geometry"));
        assert!(r.contains("edge-induced"));
    }
}
