//! Figure 10: overall speedups, iso-area — 20-PE FINGERS vs 40-PE FlexMiner.

use crate::datasets::load;
use crate::report::{geomean, markdown_matrix, speedup, write_csv};
use crate::runner::{benchmarks, compare_overall, datasets};

/// Runs the iso-area chip comparison over the full matrix.
pub fn run(quick: bool) -> String {
    let benches = benchmarks(quick);
    let graphs = datasets(quick);

    let mut values = Vec::new();
    let mut all = Vec::new();
    let mut small_graph_speedups = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for &b in &benches {
        let mut row = Vec::new();
        for &d in &graphs {
            let c = compare_overall(load(d), b);
            all.push(c.speedup);
            if d.fits_in_shared_cache() {
                small_graph_speedups.push(c.speedup);
            }
            row.push(speedup(c.speedup));
            csv_rows.push(vec![
                b.abbrev().into(),
                d.abbrev().into(),
                format!("{:.4}", c.speedup),
                c.fingers_cycles.to_string(),
                c.flexminer_cycles.to_string(),
            ]);
        }
        values.push(row);
    }
    write_csv(
        "fig10_overall",
        &[
            "pattern",
            "graph",
            "speedup",
            "fingers20_cycles",
            "flexminer40_cycles",
        ],
        &csv_rows,
    );

    let col_labels: Vec<&str> = graphs.iter().map(|d| d.abbrev()).collect();
    let row_labels: Vec<&str> = benches.iter().map(|b| b.abbrev()).collect();
    let mut out = String::from(
        "## Figure 10 — Overall speedups: 20-PE FINGERS vs 40-PE FlexMiner (iso-area)\n\n",
    );
    out.push_str(&markdown_matrix(
        "pattern \\ graph",
        &col_labels,
        &row_labels,
        &values,
    ));
    out.push_str(&format!(
        "\n- geometric mean: {:.2}× — paper reports 2.8× average\n\
         - maximum: {:.2}× — paper reports up to 8.9×\n\
         - cache-resident graphs (As, Mi) mean: {:.2}× — paper reports 4.2×, \
         roughly half their single-PE speedups (half the PEs)\n\
         - expected shapes: per-pattern trends follow Figure 9; memory-bound \
         graphs gain less than in the single-PE setting\n",
        geomean(&all),
        all.iter().cloned().fold(0.0, f64::max),
        geomean(&small_graph_speedups),
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_matrix_renders() {
        let r = super::run(true);
        assert!(r.contains("Figure 10"));
        assert!(r.contains("iso-area"));
    }
}
