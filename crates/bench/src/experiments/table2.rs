//! Table 2 + Section 6.1: PE area breakdown, power, and frequency.

use fingers_core::area::{
    chip_power_w, pe_area, pe_area_mm2_15nm, AreaBreakdown, FLEXMINER_PE_AREA_MM2_15NM,
    PE_CACHE_POWER_MW, PE_COMPUTE_POWER_MW, PE_FREQUENCY_GHZ,
};
use fingers_core::config::PeConfig;

/// Renders Table 2 (area breakdown of one FINGERS PE) plus the Section 6.1
/// power/frequency numbers.
pub fn run(_quick: bool) -> String {
    let cfg = PeConfig::default();
    let a: AreaBreakdown = pe_area(&cfg);
    let p = a.percentages();
    let mut out = String::from(
        "## Table 2 — Area breakdown of one FINGERS PE (28 nm)\n\n\
         | Components | Area (mm²) | % Area | paper (mm², %) |\n\
         |---|---|---|---|\n",
    );
    let rows = [
        ("24 Intersect Units", a.ius_mm2, p[0], "0.115, 12.3%"),
        ("12 Task Dividers", a.dividers_mm2, p[1], "0.069, 7.4%"),
        (
            "2 Stream Buffers",
            a.stream_buffers_mm2,
            p[2],
            "0.214, 22.9%",
        ),
        ("Private Cache", a.private_cache_mm2, p[3], "0.118, 12.6%"),
        ("Others", a.others_mm2, p[4], "0.418, 44.8%"),
    ];
    for (name, mm2, pct, paper) in rows {
        out.push_str(&format!(
            "| {name} | {mm2:.3} | {:.1}% | {paper} |\n",
            pct * 100.0
        ));
    }
    out.push_str(&format!(
        "| **PE Total** | **{:.3}** | 100% | 0.934, 100% |\n\n",
        a.total_mm2()
    ));
    out.push_str(&format!(
        "- Scaled to 15 nm: {:.3} mm² per PE (paper ≈ 0.26 mm²) — {:.2}× a \
         FlexMiner PE ({} mm²), i.e. less than 2×.\n",
        pe_area_mm2_15nm(&cfg),
        pe_area_mm2_15nm(&cfg) / FLEXMINER_PE_AREA_MM2_15NM,
        FLEXMINER_PE_AREA_MM2_15NM,
    ));
    out.push_str(&format!(
        "- Power: {PE_COMPUTE_POWER_MW} mW compute + {PE_CACHE_POWER_MW} mW caches per PE; \
         {:.1} W for the 20-PE chip (paper: \"just a few watts\").\n",
        chip_power_w(20)
    ));
    out.push_str(&format!(
        "- Frequency: {PE_FREQUENCY_GHZ} GHz in 28 nm (paper Section 6.1).\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_table_2_rows() {
        let r = super::run(false);
        assert!(r.contains("24 Intersect Units"));
        assert!(r.contains("PE Total"));
        assert!(r.contains("0.934"));
    }
}
