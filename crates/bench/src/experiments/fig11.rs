//! Figure 11: speedups from branch-level parallelism (pseudo-DFS on/off).

use fingers_core::config::PeConfig;
use fingers_graph::datasets::Dataset;

use crate::datasets::{load, representative_trio};
use crate::report::{markdown_matrix, speedup};
use crate::runner::{benchmarks, run_fingers_single};

/// Runs FINGERS (single PE) with and without the pseudo-DFS order on the
/// representative graph trio.
pub fn run(quick: bool) -> String {
    let benches = benchmarks(quick);
    let graphs: Vec<Dataset> = if quick {
        vec![Dataset::AstroPh]
    } else {
        representative_trio().to_vec()
    };

    let mut values = Vec::new();
    for &b in &benches {
        let mut row = Vec::new();
        for &d in &graphs {
            let g = load(d);
            let on = run_fingers_single(g, b, PeConfig::default());
            let off = run_fingers_single(
                g,
                b,
                PeConfig {
                    pseudo_dfs: false,
                    ..PeConfig::default()
                },
            );
            assert_eq!(on.embeddings, off.embeddings, "{b} {d}");
            row.push(speedup(off.cycles as f64 / on.cycles as f64));
        }
        values.push(row);
    }

    let col_labels: Vec<&str> = graphs.iter().map(|d| d.abbrev()).collect();
    let row_labels: Vec<&str> = benches.iter().map(|b| b.abbrev()).collect();
    let mut out = String::from(
        "## Figure 11 — Speedups from branch-level parallelism (pseudo-DFS)\n\n\
         FINGERS single-PE cycles with pseudo-DFS disabled divided by cycles \
         with it enabled (Mi, Pa, Or behave like As, Yo, Lj respectively).\n\n",
    );
    out.push_str(&markdown_matrix(
        "pattern \\ graph",
        &col_labels,
        &row_labels,
        &values,
    ));
    out.push_str(
        "\n- paper reports gains up to 5×, largest for tc/4cl/5cl (cliques \
         have little set-level parallelism, so branch-level is their main \
         lever)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_ablation_renders() {
        let r = super::run(true);
        assert!(r.contains("Figure 11"));
        assert!(r.contains("pseudo-DFS"));
    }
}
