//! Count-fusion evaluation: what fused, bound-pushed terminal counting buys
//! end to end (DESIGN.md § count fusion & bound pushing).
//!
//! Two sections, both beyond the paper (the paper's accelerator never
//! materializes candidate sets it only needs to count — this experiment
//! measures the software miner catching up to that):
//!
//! 1. **Equivalence sweep** — fused vs unfused counts asserted bit-identical
//!    across threads × bitmap modes on small graphs. The assertions are the
//!    part CI smoke-runs care about (`--quick`); timings are advisory.
//! 2. **Before/after speedup** — dataset × pattern cells mined
//!    single-threaded with fusion off ([`EngineConfig::without_count_fusion`])
//!    and on ([`EngineConfig::default`]), reporting wall-time speedup.
//!    Cliques gain the most: their full restriction chains make the leaf
//!    bound large, so bound pushing skips most of the final intersection on
//!    top of skipping all of its writes.
//!
//! The raw series is written to `count_fusion.json` under the usual
//! results-directory gating.

use std::time::Instant;

use fingers_graph::gen::{chung_lu_power_law, erdos_renyi, ChungLuConfig};
use fingers_graph::CsrGraph;
use fingers_mining::{count_benchmark_parallel_with, EngineConfig};
use fingers_pattern::benchmarks::Benchmark;

use crate::datasets::load;
use crate::report::{json_escape, write_json};
use crate::runner::datasets;

/// Runs both sections and writes `count_fusion.json`.
pub fn run(quick: bool) -> String {
    let checked = equivalence_sweep(quick);
    let cells = run_speedup(quick);
    write_json("count_fusion", &render_json(&cells));

    let mut out = format!(
        "## Count fusion — fused vs unfused equivalence sweep\n\n\
         {checked} (graph, benchmark, bitmap, threads) combinations asserted \
         bit-identical between `fuse_terminal_counts` on and off. Fusion is \
         a pure performance knob, like the kernel tiers before it.\n"
    );
    out.push_str(&render_speedup(&cells));
    out
}

/// The synthetic heavy-tail graph (same construction as the
/// `bitmap_kernels` experiment's `plhub`): a Chung–Lu power law whose hub
/// adjacencies make terminal set ops long enough for fusion to matter.
fn hubby_graph() -> CsrGraph {
    let mut cfg = ChungLuConfig::new(4000, 80_000, 18);
    cfg.exponent = 1.9;
    chung_lu_power_law(&cfg)
}

/// Asserts fused and unfused counts are bit-identical across a
/// threads × bitmap-mode grid on small graphs; returns how many
/// combinations were checked. This is the non-timing signal CI smoke-runs.
pub fn equivalence_sweep(quick: bool) -> usize {
    let er = erdos_renyi(300, 2_400, 11);
    let mut pl_cfg = ChungLuConfig::new(400, 3_000, 12);
    pl_cfg.exponent = 2.1;
    let pl = chung_lu_power_law(&pl_cfg);
    let benches = if quick {
        vec![Benchmark::Tc, Benchmark::Tt]
    } else {
        Benchmark::ALL.to_vec()
    };

    let mut checked = 0usize;
    for graph in [&er, &pl] {
        for &b in &benches {
            for bitmap_hubs in [0usize, 64] {
                for threads in [1usize, 2] {
                    let fused = EngineConfig {
                        bitmap_hubs,
                        ..EngineConfig::default()
                    };
                    let unfused = EngineConfig {
                        bitmap_hubs,
                        fuse_terminal_counts: false,
                        ..EngineConfig::default()
                    };
                    assert_eq!(
                        count_benchmark_parallel_with(graph, b, threads, &fused).per_pattern,
                        count_benchmark_parallel_with(graph, b, threads, &unfused).per_pattern,
                        "fusion changed counts: {b} hubs={bitmap_hubs} threads={threads}"
                    );
                    checked += 1;
                }
            }
        }
    }
    checked
}

/// One before/after cell of the speedup experiment.
#[derive(Debug, Clone)]
pub struct FusionCell {
    /// Dataset abbreviation (`plhub` is the synthetic heavy-tail graph).
    pub dataset: String,
    /// Benchmark abbreviation.
    pub benchmark: String,
    /// Hub budget both configs ran with (the toggle under test is fusion,
    /// not the bitmap tier).
    pub bitmap_hubs: usize,
    /// Wall ms with fusion off (materialize-then-count baseline).
    pub unfused_ms: f64,
    /// Wall ms with fusion on.
    pub fused_ms: f64,
    /// `unfused_ms / fused_ms`.
    pub speedup: f64,
    /// Total embeddings (asserted identical between the two configs).
    pub embeddings: u64,
}

/// The pattern grid: cliques (where bound pushing bites hardest) plus
/// subtraction-heavy patterns (where the fused kernel is an anti-subtract
/// count). Quick mode keeps one of each.
fn fusion_benchmarks(quick: bool) -> Vec<Benchmark> {
    if quick {
        vec![Benchmark::Tc, Benchmark::Tt]
    } else {
        vec![
            Benchmark::Tc,
            Benchmark::Cl4,
            Benchmark::Cl5,
            Benchmark::Tt,
            Benchmark::Cyc,
        ]
    }
}

/// Mines each (dataset, benchmark) cell single-threaded with fusion off and
/// on; asserts identical counts; records the speedup. Wall time is the best
/// of `reps` runs per config, keeping the series stable against scheduler
/// noise.
pub fn run_speedup(quick: bool) -> Vec<FusionCell> {
    let reps = if quick { 1 } else { 3 };
    let fused = EngineConfig::default();
    let unfused = EngineConfig::without_count_fusion();
    let hubby = hubby_graph();

    let mut graphs: Vec<(String, &CsrGraph)> = vec![("plhub".to_owned(), &hubby)];
    for d in datasets(quick) {
        graphs.push((d.abbrev().to_owned(), load(d)));
    }

    let mut cells = Vec::new();
    for (name, graph) in &graphs {
        for b in fusion_benchmarks(quick) {
            let (unfused_ms, base_total) = best_run(graph, b, &unfused, reps);
            let (fused_ms, fused_total) = best_run(graph, b, &fused, reps);
            assert_eq!(
                base_total, fused_total,
                "count fusion changed counts on {b}"
            );
            cells.push(FusionCell {
                dataset: name.clone(),
                benchmark: b.abbrev().to_owned(),
                bitmap_hubs: fused.bitmap_hubs,
                unfused_ms,
                fused_ms,
                speedup: unfused_ms / fused_ms.max(1e-9),
                embeddings: fused_total,
            });
        }
    }
    cells
}

/// Best-of-`reps` single-threaded wall time for one (graph, benchmark,
/// config) and the total embedding count.
fn best_run(graph: &CsrGraph, b: Benchmark, cfg: &EngineConfig, reps: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut total = 0u64;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = count_benchmark_parallel_with(graph, b, 1, cfg);
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        total = out.total();
    }
    (best, total)
}

fn render_speedup(cells: &[FusionCell]) -> String {
    let mut out = String::from(
        "\n## Count fusion — end-to-end before/after\n\n\
         Single-threaded wall time per (dataset, benchmark): terminal level \
         materialized then counted (fusion off) vs fused bound-pushed count \
         kernels (fusion on), both with the default three-tier engine. \
         Counts are asserted identical.\n\n\
         | dataset | benchmark | hubs | unfused ms | fused ms | speedup |\n\
         |---|---|---|---|---|---|\n",
    );
    for c in cells {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {:.1} | {:.2}× |\n",
            c.dataset, c.benchmark, c.bitmap_hubs, c.unfused_ms, c.fused_ms, c.speedup
        ));
    }
    let best = cells.iter().map(|c| c.speedup).fold(0.0f64, f64::max);
    out.push_str(&format!(
        "\n- best cell speedup: {best:.2}× (`plhub` is the synthetic \
         heavy-tail Chung–Lu graph; clique patterns gain most because their \
         full restriction chains give the leaf level a large lower bound to \
         push into the operands)\n"
    ));
    out
}

/// Renders the speedup series as a JSON document.
fn render_json(cells: &[FusionCell]) -> String {
    let mut out = String::from("{\n  \"speedup\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"benchmark\": \"{}\", \"threads\": 1, \
             \"bitmap_hubs\": {}, \"unfused_ms\": {:.3}, \"fused_ms\": {:.3}, \
             \"speedup\": {:.3}, \"embeddings\": {}}}{}\n",
            json_escape(&c.dataset),
            json_escape(&c.benchmark),
            c.bitmap_hubs,
            c.unfused_ms,
            c.fused_ms,
            c.speedup,
            c.embeddings,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_equivalence_sweep_passes() {
        // `equivalence_sweep` panics on any fused/unfused divergence;
        // a nonzero return means every combination was actually checked.
        assert!(equivalence_sweep(true) >= 16);
    }

    #[test]
    fn quick_speedup_cells_are_consistent() {
        let cells = run_speedup(true);
        assert!(!cells.is_empty());
        assert!(cells.iter().any(|c| c.dataset == "plhub"));
        for c in &cells {
            assert!(c.unfused_ms >= 0.0 && c.fused_ms >= 0.0);
            assert!((c.speedup - c.unfused_ms / c.fused_ms.max(1e-9)).abs() < 1e-9);
        }
    }

    #[test]
    fn json_document_is_well_formed() {
        let cells = vec![FusionCell {
            dataset: "plhub".into(),
            benchmark: "4cl".into(),
            bitmap_hubs: 1024,
            unfused_ms: 20.0,
            fused_ms: 10.0,
            speedup: 2.0,
            embeddings: 7,
        }];
        let j = render_json(&cells);
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\"speedup\": ["));
        assert!(j.contains("\"unfused_ms\": 20.000"));
        assert!(j.contains("\"fused_ms\": 10.000"));
        assert!(j.contains("\"threads\": 1"));
    }
}
