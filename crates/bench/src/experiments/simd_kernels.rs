//! SIMD kernel-tier evaluation: what the fourth (vector) tier buys over the
//! scalar merge kernels it shadows, in exactly the operand region where the
//! adaptive selector hands work to it (DESIGN.md §14).
//!
//! Two sections:
//!
//! 1. **Equivalence sweep** — every SIMD kernel form (materializing, count,
//!    bounded count, word-AND popcount) asserted bit-identical to the merge
//!    reference on generated sorted sets spanning the selector's whole
//!    region, including sub-block tails and empty overlaps. The assertions
//!    are what CI smoke-runs care about (`--quick`); timings are advisory.
//! 2. **Before/after speedup grid** — (short, long) length cells inside the
//!    merge/SIMD balanced region (`SIMD_MIN_LEN ≤ min`, ratio below the
//!    galloping crossover), each kind × form timed scalar vs SIMD over a
//!    batch of operand pairs. The worst cell is reported explicitly: tier
//!    selection is only sound as a pure performance decision if no eligible
//!    cell regresses.
//!
//! The raw series is written to `simd_kernels.json` under the usual
//! results-directory gating. On builds or machines where the vector path is
//! unavailable ([`fingers_setops::simd::available`] is false) every kernel
//! delegates to merge, so speedups read 1.0× — the JSON records the probe
//! result so such runs are not mistaken for regressions.

use std::time::Instant;

use fingers_setops::adaptive::SIMD_MIN_LEN;
use fingers_setops::{merge, simd, Elem, SetOpKind};

use crate::report::{json_escape, write_json};

/// Runs both sections and writes `simd_kernels.json`.
pub fn run(quick: bool) -> String {
    let checked = equivalence_sweep(quick);
    let cells = run_speedup(quick);
    write_json("simd_kernels", &render_json(&cells));

    let mut out = format!(
        "## SIMD kernels — scalar equivalence sweep\n\n\
         {checked} (kind, form, lengths) combinations asserted bit-identical \
         between the SIMD tier and the merge reference (vector path \
         available: {}). Tier choice stays a pure performance decision.\n",
        simd::available()
    );
    out.push_str(&render_speedup(&cells));
    out
}

/// Deterministic xorshift64* stream — the experiment must not depend on a
/// process-global RNG so cells are reproducible across runs and machines.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A strictly increasing duplicate-free list of `len` elements with average
/// gap `gap` (gap ∈ [1, 2·gap−1]), starting near `base`. Small gaps give
/// dense overlap between operands drawn from the same base — the high-hit
/// regime where the block-compare kernels do the most shuffling work.
fn sorted_set(rng: &mut Rng, len: usize, base: u32, gap: u32) -> Vec<Elem> {
    let mut out = Vec::with_capacity(len);
    let mut cur = base + (rng.next() as u32 % gap.max(1));
    for _ in 0..len {
        cur += 1 + (rng.next() as u32 % (2 * gap.max(1) - 1));
        out.push(cur);
    }
    out
}

/// Asserts every SIMD kernel form equals its merge reference across a grid
/// of lengths (including sub-block tails and the empty list), kinds, and
/// overlap densities; returns how many combinations were checked.
pub fn equivalence_sweep(quick: bool) -> usize {
    let lengths: &[usize] = if quick {
        &[0, 1, 3, 4, 7, 16, 33, 64]
    } else {
        &[0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 64, 129, 512, 1023]
    };
    let mut rng = Rng(0x5EED_CAFE);
    let mut checked = 0usize;
    for &sl in lengths {
        for &ll in lengths {
            for gap in [1u32, 4, 64] {
                let short = sorted_set(&mut rng, sl, 0, gap);
                let long = sorted_set(&mut rng, ll, 0, gap);
                for kind in [
                    SetOpKind::Intersect,
                    SetOpKind::Subtract,
                    SetOpKind::AntiSubtract,
                ] {
                    assert_eq!(
                        simd::apply(kind, &short, &long),
                        merge::apply(kind, &short, &long),
                        "{kind:?} sl={sl} ll={ll} gap={gap}"
                    );
                    assert_eq!(
                        simd::count(kind, &short, &long),
                        merge::count(kind, &short, &long),
                        "count {kind:?} sl={sl} ll={ll} gap={gap}"
                    );
                    let bound = short.first().copied().map(|b| b + gap * sl as u32 / 2);
                    assert_eq!(
                        simd::count_bounded(kind, &short, &long, bound),
                        merge::count_bounded(kind, &short, &long, bound),
                        "count_bounded {kind:?} sl={sl} ll={ll} gap={gap}"
                    );
                    checked += 3;
                }
            }
        }
    }
    // Word-AND popcount vs the software reference.
    for words in [0usize, 1, 7, 64, 1024] {
        let a: Vec<u64> = (0..words).map(|_| rng.next()).collect();
        let b: Vec<u64> = (0..words).map(|_| rng.next()).collect();
        let reference: u64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| u64::from((x & y).count_ones()))
            .sum();
        assert_eq!(simd::and_popcount(&a, &b), reference, "popcount {words}w");
        checked += 1;
    }
    checked
}

/// One scalar-vs-SIMD cell of the speedup grid.
#[derive(Debug, Clone)]
pub struct SimdCell {
    /// Set-op kind abbreviation (`int`, `sub`, `anti`) or `popcnt` for the
    /// bitmap word sweep.
    pub kind: String,
    /// Kernel form: `apply` (materializing) or `count`.
    pub form: String,
    /// Short-operand length (word count for `popcnt`).
    pub short_len: usize,
    /// Long-operand length (word count for `popcnt`).
    pub long_len: usize,
    /// Batch wall ms through the scalar merge kernels.
    pub scalar_ms: f64,
    /// Batch wall ms through the SIMD tier.
    pub simd_ms: f64,
    /// `scalar_ms / simd_ms`.
    pub speedup: f64,
}

fn kind_abbrev(kind: SetOpKind) -> &'static str {
    match kind {
        SetOpKind::Intersect => "int",
        SetOpKind::Subtract => "sub",
        SetOpKind::AntiSubtract => "anti",
    }
}

/// Length cells, all inside the region the adaptive selector actually hands
/// to the SIMD tier: `min(short, long) ≥ SIMD_MIN_LEN` and
/// `long ≤ 16·short` (below the galloping crossover).
fn length_grid(quick: bool) -> Vec<(usize, usize)> {
    if quick {
        vec![(SIMD_MIN_LEN, SIMD_MIN_LEN), (256, 256)]
    } else {
        vec![
            (SIMD_MIN_LEN, SIMD_MIN_LEN),
            (64, 64),
            (256, 256),
            (1024, 1024),
            (4096, 4096),
            (512, 4096),
        ]
    }
}

/// Times every (lengths × kind × form) cell: a batch of pre-generated
/// operand pairs is pushed through the scalar merge kernel and the SIMD
/// kernel, best-of-`reps` each, counts asserted identical. Polls the
/// checkpoint watchdog between cells like the other grids.
pub fn run_speedup(quick: bool) -> Vec<SimdCell> {
    let token = crate::checkpoint::section_token();
    let reps = if quick { 2 } else { 5 };
    let mut rng = Rng(0xD1CE_D00D);
    let mut cells = Vec::new();
    for (sl, ll) in length_grid(quick) {
        // Batch sized so every cell does comparable total element work —
        // small operands get more pairs, amortizing timer overhead.
        let pairs = (1 << 19) / (sl + ll).max(1);
        let batch: Vec<(Vec<Elem>, Vec<Elem>)> = (0..pairs.max(8))
            .map(|_| {
                (
                    sorted_set(&mut rng, sl, 0, 4),
                    sorted_set(&mut rng, ll, 0, 4),
                )
            })
            .collect();
        for kind in [
            SetOpKind::Intersect,
            SetOpKind::Subtract,
            SetOpKind::AntiSubtract,
        ] {
            if token.is_cancelled() {
                return cells;
            }
            cells.push(time_apply_cell(kind, sl, ll, &batch, reps));
            cells.push(time_count_cell(kind, sl, ll, &batch, reps));
        }
    }
    // Bitmap word-AND popcount sweep: scalar software sweep vs the
    // hardware-popcount kernel, per words-per-operand size.
    for words in [64usize, 1024] {
        if token.is_cancelled() {
            return cells;
        }
        let sweeps = (1 << 16) / words;
        let batch: Vec<(Vec<u64>, Vec<u64>)> = (0..sweeps)
            .map(|_| {
                (
                    (0..words).map(|_| rng.next()).collect(),
                    (0..words).map(|_| rng.next()).collect(),
                )
            })
            .collect();
        let scalar_ms = best_ms(reps, || {
            batch
                .iter()
                .map(|(a, b)| {
                    a.iter()
                        .zip(b)
                        .map(|(x, y)| u64::from((x & y).count_ones()))
                        .sum::<u64>()
                })
                .sum::<u64>()
        });
        let simd_ms = best_ms(reps, || {
            batch
                .iter()
                .map(|(a, b)| simd::and_popcount(a, b))
                .sum::<u64>()
        });
        cells.push(SimdCell {
            kind: "popcnt".to_owned(),
            form: "count".to_owned(),
            short_len: words,
            long_len: words,
            scalar_ms,
            simd_ms,
            speedup: scalar_ms / simd_ms.max(1e-9),
        });
    }
    cells
}

/// Best-of-`reps` wall ms of `body` (its result is black-boxed so the
/// batch is not optimized away).
fn best_ms<T>(reps: usize, mut body: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = body();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(out);
    }
    best
}

fn time_apply_cell(
    kind: SetOpKind,
    sl: usize,
    ll: usize,
    batch: &[(Vec<Elem>, Vec<Elem>)],
    reps: usize,
) -> SimdCell {
    let mut out = Vec::with_capacity(sl.max(ll));
    let mut scalar_total = 0u64;
    let scalar_ms = best_ms(reps, || {
        let mut n = 0u64;
        for (s, l) in batch {
            merge::apply_into(kind, s, l, &mut out);
            n += out.len() as u64;
        }
        scalar_total = n;
        n
    });
    let mut simd_total = 0u64;
    let simd_ms = best_ms(reps, || {
        let mut n = 0u64;
        for (s, l) in batch {
            simd::apply_into(kind, s, l, &mut out);
            n += out.len() as u64;
        }
        simd_total = n;
        n
    });
    assert_eq!(scalar_total, simd_total, "apply {kind:?} {sl}x{ll}");
    SimdCell {
        kind: kind_abbrev(kind).to_owned(),
        form: "apply".to_owned(),
        short_len: sl,
        long_len: ll,
        scalar_ms,
        simd_ms,
        speedup: scalar_ms / simd_ms.max(1e-9),
    }
}

fn time_count_cell(
    kind: SetOpKind,
    sl: usize,
    ll: usize,
    batch: &[(Vec<Elem>, Vec<Elem>)],
    reps: usize,
) -> SimdCell {
    let mut scalar_total = 0u64;
    let scalar_ms = best_ms(reps, || {
        let n: u64 = batch.iter().map(|(s, l)| merge::count(kind, s, l)).sum();
        scalar_total = n;
        n
    });
    let mut simd_total = 0u64;
    let simd_ms = best_ms(reps, || {
        let n: u64 = batch.iter().map(|(s, l)| simd::count(kind, s, l)).sum();
        simd_total = n;
        n
    });
    assert_eq!(scalar_total, simd_total, "count {kind:?} {sl}x{ll}");
    SimdCell {
        kind: kind_abbrev(kind).to_owned(),
        form: "count".to_owned(),
        short_len: sl,
        long_len: ll,
        scalar_ms,
        simd_ms,
        speedup: scalar_ms / simd_ms.max(1e-9),
    }
}

/// The grid's worst (minimum) speedup, or `None` on an empty grid.
pub fn worst_speedup(cells: &[SimdCell]) -> Option<f64> {
    cells.iter().map(|c| c.speedup).reduce(f64::min)
}

fn render_speedup(cells: &[SimdCell]) -> String {
    let mut out = String::from(
        "\n## SIMD kernels — scalar vs vector speedup grid\n\n\
         Batch wall time per (kind, form, lengths) cell inside the region \
         the adaptive selector routes to the SIMD tier; counts asserted \
         identical between the two paths.\n\n\
         | kind | form | short | long | scalar ms | simd ms | speedup |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for c in cells {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.2} | {:.2} | {:.2}× |\n",
            c.kind, c.form, c.short_len, c.long_len, c.scalar_ms, c.simd_ms, c.speedup
        ));
    }
    if let Some(worst) = worst_speedup(cells) {
        let best = cells.iter().map(|c| c.speedup).fold(0.0f64, f64::max);
        out.push_str(&format!(
            "\n- best cell {best:.2}×, worst cell {worst:.2}× (the tier only \
             claims operands with min length ≥ {SIMD_MIN_LEN} below the \
             galloping crossover, so the worst cell staying near 1.0× is the \
             selector-soundness signal)\n"
        ));
    }
    out
}

/// Renders the speedup series as a JSON document.
fn render_json(cells: &[SimdCell]) -> String {
    let mut out = format!(
        "{{\n  \"simd_available\": {},\n  \"simd_min_len\": {SIMD_MIN_LEN},\n  \"cells\": [\n",
        simd::available()
    );
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kind\": \"{}\", \"form\": \"{}\", \"short_len\": {}, \
             \"long_len\": {}, \"scalar_ms\": {:.3}, \"simd_ms\": {:.3}, \
             \"speedup\": {:.3}}}{}\n",
            json_escape(&c.kind),
            json_escape(&c.form),
            c.short_len,
            c.long_len,
            c.scalar_ms,
            c.simd_ms,
            c.speedup,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    let worst = worst_speedup(cells).unwrap_or(1.0);
    out.push_str(&format!("  ],\n  \"worst_speedup\": {worst:.3}\n}}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_sets_are_strictly_increasing() {
        let mut rng = Rng(7);
        for (len, gap) in [(0usize, 1u32), (1, 1), (17, 1), (100, 8)] {
            let s = sorted_set(&mut rng, len, 0, gap);
            assert_eq!(s.len(), len);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{s:?}");
        }
    }

    #[test]
    fn quick_equivalence_sweep_passes() {
        // `equivalence_sweep` panics on any simd/merge divergence; the
        // return value proves every combination actually ran.
        assert!(equivalence_sweep(true) > 500);
    }

    #[test]
    fn quick_speedup_cells_are_consistent() {
        let cells = run_speedup(true);
        assert!(!cells.is_empty());
        assert!(cells.iter().any(|c| c.kind == "popcnt"));
        for c in &cells {
            assert!(c.scalar_ms >= 0.0 && c.simd_ms >= 0.0);
            assert!((c.speedup - c.scalar_ms / c.simd_ms.max(1e-9)).abs() < 1e-9);
            assert!(
                c.short_len >= SIMD_MIN_LEN,
                "cell outside the SIMD region: {c:?}"
            );
        }
        assert!(worst_speedup(&cells).is_some());
    }

    #[test]
    fn json_document_is_well_formed() {
        let cells = vec![SimdCell {
            kind: "int".into(),
            form: "count".into(),
            short_len: 64,
            long_len: 64,
            scalar_ms: 2.0,
            simd_ms: 1.0,
            speedup: 2.0,
        }];
        let j = render_json(&cells);
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\"simd_available\""));
        assert!(j.contains("\"cells\": ["));
        assert!(j.contains("\"worst_speedup\": 2.000"));
    }
}
