//! Figure 13: shared-cache miss-rate curves (capacity sweep, cyc pattern).

use fingers_core::chip::simulate_fingers;
use fingers_core::config::ChipConfig;
use fingers_flexminer::{simulate_flexminer, FlexMinerChipConfig};
use fingers_graph::datasets::Dataset;
use fingers_pattern::benchmarks::Benchmark;

use crate::datasets::load;
use crate::report::{markdown_matrix, write_csv};

/// Paper-scale shared-cache capacities swept (MB).
pub const CACHE_SWEEP_MB: [f64; 4] = [2.0, 4.0, 8.0, 16.0];

/// Runs the cyc pattern on Mi/Yo/Lj for both designs across the cache
/// capacity sweep, reporting shared-cache miss rates.
pub fn run(quick: bool) -> String {
    let graphs: Vec<Dataset> = if quick {
        vec![Dataset::Mico]
    } else {
        vec![Dataset::Mico, Dataset::Youtube, Dataset::LiveJournal]
    };
    let capacities: Vec<f64> = if quick {
        vec![2.0, 16.0]
    } else {
        CACHE_SWEEP_MB.to_vec()
    };
    let bench = Benchmark::Cyc;
    let multi = bench.plan();

    let mut row_labels: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for &d in &graphs {
        let g = load(d);
        for design in ["FlexMiner", "FINGERS"] {
            let row: Vec<String> = capacities
                .iter()
                .map(|&mb| {
                    let miss = if design == "FINGERS" {
                        let cfg = ChipConfig::default().with_shared_cache_mb(mb);
                        simulate_fingers(g, &multi, &cfg).shared_cache.miss_rate()
                    } else {
                        let cfg = FlexMinerChipConfig::default().with_shared_cache_mb(mb);
                        simulate_flexminer(g, &multi, &cfg).shared_cache.miss_rate()
                    };
                    csv_rows.push(vec![
                        d.abbrev().into(),
                        design.into(),
                        mb.to_string(),
                        format!("{:.6}", miss),
                    ]);
                    format!("{:.1}%", miss * 100.0)
                })
                .collect();
            row_labels.push(format!("{}-{design}", d.abbrev()));
            rows.push(row);
        }
    }

    let col_labels: Vec<String> = capacities.iter().map(|c| format!("{c} MB")).collect();
    let col_refs: Vec<&str> = col_labels.iter().map(String::as_str).collect();
    let row_refs: Vec<&str> = row_labels.iter().map(String::as_str).collect();

    let mut out = String::from(
        "## Figure 13 — Shared-cache miss rate vs capacity (cyc pattern)\n\n\
         Capacities are paper-scale MB (scaled 8× down with the graphs, see \
         DESIGN.md). FINGERS uses 20 PEs, FlexMiner 40 (the Section 6.3 \
         configurations).\n\n",
    );
    write_csv(
        "fig13_cache_miss",
        &["graph", "design", "capacity_mb", "miss_rate"],
        &csv_rows,
    );
    out.push_str(&markdown_matrix(
        "graph-design \\ capacity",
        &col_refs,
        &row_refs,
        &rows,
    ));
    out.push_str(
        "\n- paper shapes: Mi is cache-resident (low, flat); Yo large but \
         reuse-friendly (insensitive to capacity); Lj pressures the cache, \
         with FINGERS missing less than FlexMiner (fewer PEs competing, \
         pseudo-DFS prioritizes cached work, neighbor lists streamed once \
         per task)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_sweep_renders() {
        let r = super::run(true);
        assert!(r.contains("Figure 13"));
        assert!(r.contains("Mi-FINGERS"));
    }
}
