//! Table 3: IU utilization and load balance in one PE (Mico graph).

use fingers_core::config::PeConfig;
use fingers_graph::datasets::Dataset;

use crate::datasets::load;
use crate::runner::{benchmarks, run_fingers_single};

/// Paper's Table 3 active rates per benchmark (tc…3mc), for side-by-side
/// reporting.
pub const PAPER_ACTIVE: [f64; 7] = [55.3, 80.8, 81.5, 94.7, 89.9, 88.9, 65.6];

/// Paper's Table 3 balance rates per benchmark.
pub const PAPER_BALANCE: [f64; 7] = [67.3, 66.4, 66.3, 68.2, 70.3, 71.4, 69.3];

/// Runs each benchmark on one default FINGERS PE over Mico and reports the
/// active and balance rates against the paper's.
pub fn run(quick: bool) -> String {
    let benches = benchmarks(quick);
    let g = load(Dataset::Mico);

    let mut out = String::from(
        "## Table 3 — IU utilization and load balance in one PE (Mi)\n\n\
         | metric |",
    );
    for b in &benches {
        out.push_str(&format!(" {} |", b.abbrev()));
    }
    out.push_str("\n|---|");
    for _ in &benches {
        out.push_str("---|");
    }
    out.push('\n');

    let reports: Vec<_> = benches
        .iter()
        .map(|&b| run_fingers_single(g, b, PeConfig::default()))
        .collect();

    out.push_str("| Active Rate |");
    for r in &reports {
        out.push_str(&format!(" {:.1}% |", r.active_rate() * 100.0));
    }
    out.push_str("\n| Balance Rate |");
    for r in &reports {
        out.push_str(&format!(" {:.1}% |", r.balance_rate() * 100.0));
    }
    // §11: `benches` is drawn from Benchmark::ALL, so the position lookup
    // cannot miss; a miss means the two lists diverged — a harness bug.
    #[allow(clippy::expect_used)]
    let paper_idx = |b: &fingers_pattern::benchmarks::Benchmark| {
        fingers_pattern::benchmarks::Benchmark::ALL
            .iter()
            .position(|x| x == b)
            .expect("benchmark in ALL")
    };
    out.push_str("\n| paper Active |");
    for b in &benches {
        out.push_str(&format!(" {:.1}% |", PAPER_ACTIVE[paper_idx(b)]));
    }
    out.push_str("\n| paper Balance |");
    for b in &benches {
        out.push_str(&format!(" {:.1}% |", PAPER_BALANCE[paper_idx(b)]));
    }
    out.push_str(
        "\n\n- expected shapes: utilization generally high; cliques (tc) and \
         the multi-pattern census lower than the subtraction-heavy patterns\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_table_renders() {
        let r = super::run(true);
        assert!(r.contains("Active Rate"));
        assert!(r.contains("Balance Rate"));
    }
}
