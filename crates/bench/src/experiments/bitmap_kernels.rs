//! Bitmap kernel tier evaluation: where the dense-bitmap kernels beat the
//! sorted-list kernels, and what the tier buys end to end.
//!
//! Two sections, both beyond the paper (the paper's accelerator gets its
//! set-op speed from hardware IUs; our software miner gets the analogous
//! hot-path win from the SISA-style dense-bitmap tier):
//!
//! 1. **Kernel crossover microbench** — one hub adjacency as the long
//!    operand, short operands of growing length, all three kernels timed
//!    per (op, shape). Output equivalence across the tiers is *asserted*
//!    on every shape (a non-timing check that also runs in `--quick` smoke
//!    mode and in the unit tests).
//! 2. **Before/after speedup** — dataset × clique-style-benchmark cells
//!    mined single-threaded with the merge/galloping-only baseline
//!    ([`EngineConfig::without_bitmap`]) and with the full three-tier
//!    engine ([`EngineConfig::default`]), reporting wall-time speedup.
//!
//! The raw series is written to `bitmap_kernels.json` under the usual
//! results-directory gating.

use std::time::Instant;

use fingers_graph::gen::{chung_lu_power_law, ChungLuConfig};
use fingers_graph::hubs::neighbor_bitmap;
use fingers_graph::CsrGraph;
use fingers_mining::{count_benchmark_parallel_with, EngineConfig};
use fingers_pattern::benchmarks::Benchmark;
use fingers_setops::adaptive::select_tier;
use fingers_setops::{bitmap, galloping, merge, Elem, SetOpKind};

use crate::datasets::load;
use crate::report::{json_escape, write_json};
use crate::runner::datasets;

/// Runs both sections and writes `bitmap_kernels.json`.
pub fn run(quick: bool) -> String {
    let micro = run_microbench(quick);
    let cells = run_speedup(quick);
    write_json("bitmap_kernels", &render_json(&micro, &cells));

    let mut out = render_microbench(&micro);
    out.push_str(&render_speedup(&cells));
    out
}

/// One timed shape of the crossover microbench.
#[derive(Debug, Clone)]
pub struct MicroRow {
    /// Set operation measured.
    pub op: SetOpKind,
    /// Short-operand length.
    pub short_len: usize,
    /// Long-operand (hub adjacency) length.
    pub long_len: usize,
    /// Tier [`select_tier`] picks for this shape (bitmap resident).
    pub tier: String,
    /// Mean ns per call, merge kernel.
    pub merge_ns: f64,
    /// Mean ns per call, galloping kernel.
    pub galloping_ns: f64,
    /// Mean ns per call, bitmap kernel (probe only; bitmap prebuilt).
    pub bitmap_ns: f64,
}

/// The synthetic heavy-tail graph the microbench (and one speedup cell)
/// uses: a Chung–Lu power law with a lowered exponent, so its top hub's
/// adjacency is long enough to make tier differences visible.
fn hubby_graph() -> CsrGraph {
    let mut cfg = ChungLuConfig::new(4000, 80_000, 18);
    cfg.exponent = 1.9;
    chung_lu_power_law(&cfg)
}

/// Times the three kernels on hub-probing shapes and asserts, for every
/// shape and all three ops, that they produce identical outputs. The
/// assertion is the part CI smoke-runs care about; timings are advisory.
pub fn run_microbench(quick: bool) -> Vec<MicroRow> {
    let graph = hubby_graph();
    // §11: hubby_graph() generates a fixed non-empty Chung-Lu graph; an
    // empty vertex iterator is a generator bug, not a runtime condition.
    #[allow(clippy::expect_used)]
    let hub = graph
        .vertices()
        .max_by_key(|&v| graph.degree(v))
        .expect("non-empty graph");
    let long: &[Elem] = graph.neighbors(hub);
    let bm = neighbor_bitmap(&graph, hub);
    let reps = if quick { 1 } else { 200 };

    let mut rows = Vec::new();
    let ops = [
        SetOpKind::Intersect,
        SetOpKind::Subtract,
        SetOpKind::AntiSubtract,
    ];
    for short_len in [4usize, 16, 64, 256, 1024] {
        let short = spread_sample(&graph, short_len);
        for op in ops {
            let mut m_out = Vec::new();
            let mut g_out = Vec::new();
            let mut b_out = Vec::new();
            let merge_ns = time_ns(reps, || merge::apply_into(op, &short, long, &mut m_out));
            let galloping_ns =
                time_ns(reps, || galloping::apply_into(op, &short, long, &mut g_out));
            let bitmap_ns = time_ns(reps, || bitmap::apply_into(op, &short, &bm, &mut b_out));
            assert_eq!(m_out, g_out, "galloping diverged on {op:?} s={short_len}");
            assert_eq!(m_out, b_out, "bitmap diverged on {op:?} s={short_len}");
            rows.push(MicroRow {
                op,
                short_len: short.len(),
                long_len: long.len(),
                tier: select_tier(op, short.len(), long.len(), Some(bm.word_count())).to_string(),
                merge_ns,
                galloping_ns,
                bitmap_ns,
            });
        }
    }
    rows
}

/// A sorted short operand of ~`len` vertex IDs spread across the universe
/// (mixing present and absent elements relative to any adjacency).
fn spread_sample(graph: &CsrGraph, len: usize) -> Vec<Elem> {
    let n = graph.vertex_count();
    let step = (n / len.max(1)).max(1);
    (0..n as Elem).step_by(step).take(len).collect()
}

fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_nanos() as f64 / reps.max(1) as f64
}

/// One before/after cell of the speedup experiment.
#[derive(Debug, Clone)]
pub struct SpeedupCell {
    /// Dataset abbreviation (`plhub` is the synthetic heavy-tail graph).
    pub dataset: String,
    /// Benchmark abbreviation.
    pub benchmark: String,
    /// Hub budget of the bitmap-enabled config (the baseline is always 0).
    pub bitmap_hubs: usize,
    /// Terminal-count fusion mode both configs ran under (bench hygiene:
    /// tagged so cross-PR trajectories stay comparable).
    pub count_fusion: bool,
    /// Wall ms with the merge/galloping-only baseline.
    pub baseline_ms: f64,
    /// Wall ms with the full three-tier engine.
    pub bitmap_ms: f64,
    /// `baseline_ms / bitmap_ms`.
    pub speedup: f64,
    /// Total embeddings (asserted identical between the two configs).
    pub embeddings: u64,
}

/// Clique-style benchmarks — the shapes whose inner loops are dominated by
/// candidate-set ∩ adjacency, where the bitmap tier concentrates.
fn clique_benchmarks(quick: bool) -> Vec<Benchmark> {
    if quick {
        vec![Benchmark::Tc]
    } else {
        vec![Benchmark::Tc, Benchmark::Cl4, Benchmark::Cl5]
    }
}

/// Mines each (dataset, clique benchmark) cell single-threaded with the
/// bitmap tier off and on; asserts identical counts; records the speedup.
/// Wall time is the best of `reps` runs per config, which keeps the
/// recorded series stable against scheduler noise.
pub fn run_speedup(quick: bool) -> Vec<SpeedupCell> {
    let reps = if quick { 1 } else { 3 };
    let baseline = EngineConfig::without_bitmap();
    let with_bitmap = EngineConfig::default();
    let hubby = hubby_graph();

    let mut graphs: Vec<(String, &CsrGraph)> = vec![("plhub".to_owned(), &hubby)];
    for d in datasets(quick) {
        graphs.push((d.abbrev().to_owned(), load(d)));
    }

    let mut cells = Vec::new();
    for (name, graph) in &graphs {
        for b in clique_benchmarks(quick) {
            let (baseline_ms, base_total) = best_run(graph, b, &baseline, reps);
            let (bitmap_ms, bm_total) = best_run(graph, b, &with_bitmap, reps);
            assert_eq!(base_total, bm_total, "bitmap tier changed counts on {b}");
            cells.push(SpeedupCell {
                dataset: name.clone(),
                benchmark: b.abbrev().to_owned(),
                bitmap_hubs: with_bitmap.bitmap_hubs,
                count_fusion: with_bitmap.fuse_terminal_counts,
                baseline_ms,
                bitmap_ms,
                speedup: baseline_ms / bitmap_ms.max(1e-9),
                embeddings: bm_total,
            });
        }
    }
    cells
}

/// Best-of-`reps` single-threaded wall time for one (graph, benchmark,
/// config) and the total embedding count.
fn best_run(graph: &CsrGraph, b: Benchmark, cfg: &EngineConfig, reps: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut total = 0u64;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = count_benchmark_parallel_with(graph, b, 1, cfg);
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        total = out.total();
    }
    (best, total)
}

fn render_microbench(rows: &[MicroRow]) -> String {
    let mut out = String::from(
        "## Bitmap kernel tier — crossover microbench\n\n\
         One hub adjacency as the long operand (prebuilt, cache-resident \
         bitmap), short operands spread across the vertex universe. All \
         three kernels are asserted output-identical on every row; `tier` \
         is what the adaptive dispatcher picks for that shape.\n\n\
         | op | short | long | tier | merge ns | galloping ns | bitmap ns |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {:?} | {} | {} | {} | {:.0} | {:.0} | {:.0} |\n",
            r.op, r.short_len, r.long_len, r.tier, r.merge_ns, r.galloping_ns, r.bitmap_ns
        ));
    }
    out.push_str(
        "\n- expected shape: the bitmap probe is O(short) with O(1) word \
         tests, so its advantage grows with the long/short skew; \
         anti-subtraction falls back to list kernels when the word scan \
         would stream more than the operands\n",
    );
    out
}

fn render_speedup(cells: &[SpeedupCell]) -> String {
    let mut out = String::from(
        "\n## Bitmap kernel tier — end-to-end before/after\n\n\
         Single-threaded wall time per (dataset, benchmark): \
         merge/galloping-only baseline vs the three-tier engine at its \
         default hub budget (per-worker LRU cache, no eviction churn \
         because slots = hubs). Counts are asserted identical.\n\n\
         | dataset | benchmark | hubs | baseline ms | bitmap ms | speedup |\n\
         |---|---|---|---|---|---|\n",
    );
    for c in cells {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {:.1} | {:.2}× |\n",
            c.dataset, c.benchmark, c.bitmap_hubs, c.baseline_ms, c.bitmap_ms, c.speedup
        ));
    }
    let best = cells.iter().map(|c| c.speedup).fold(0.0f64, f64::max);
    out.push_str(&format!(
        "\n- best cell speedup: {best:.2}× (`plhub` is the synthetic \
         heavy-tail Chung–Lu graph the microbench uses; hubbier graphs \
         and clique-heavier patterns gain the most)\n"
    ));
    out
}

/// Renders both series as one JSON document.
fn render_json(micro: &[MicroRow], cells: &[SpeedupCell]) -> String {
    let mut out = String::from("{\n  \"microbench\": [\n");
    for (i, r) in micro.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{:?}\", \"short_len\": {}, \"long_len\": {}, \
             \"tier\": \"{}\", \"merge_ns\": {:.1}, \"galloping_ns\": {:.1}, \
             \"bitmap_ns\": {:.1}}}{}\n",
            r.op,
            r.short_len,
            r.long_len,
            json_escape(&r.tier),
            r.merge_ns,
            r.galloping_ns,
            r.bitmap_ns,
            if i + 1 == micro.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"speedup\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"benchmark\": \"{}\", \"threads\": 1, \
             \"bitmap_hubs\": {}, \"count_fusion\": {}, \"baseline_ms\": {:.3}, \
             \"bitmap_ms\": {:.3}, \"speedup\": {:.3}, \"embeddings\": {}}}{}\n",
            json_escape(&c.dataset),
            json_escape(&c.benchmark),
            c.bitmap_hubs,
            c.count_fusion,
            c.baseline_ms,
            c.bitmap_ms,
            c.speedup,
            c.embeddings,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_asserts_equivalence_and_covers_all_ops() {
        // `run_microbench` panics if any kernel diverges; reaching the
        // assertions below means every row passed its equivalence check.
        let rows = run_microbench(true);
        assert_eq!(rows.len(), 5 * 3, "5 shapes × 3 ops");
        assert!(rows.iter().any(|r| r.tier == "bitmap"));
        for r in &rows {
            assert!(r.short_len <= r.long_len || r.short_len > 0);
            assert!(r.merge_ns >= 0.0 && r.galloping_ns >= 0.0 && r.bitmap_ns >= 0.0);
        }
    }

    #[test]
    fn quick_speedup_cells_are_consistent() {
        let cells = run_speedup(true);
        assert!(!cells.is_empty());
        assert!(cells.iter().any(|c| c.dataset == "plhub"));
        for c in &cells {
            assert!(c.baseline_ms >= 0.0 && c.bitmap_ms >= 0.0);
            assert!((c.speedup - c.baseline_ms / c.bitmap_ms.max(1e-9)).abs() < 1e-9);
        }
    }

    #[test]
    fn json_document_is_well_formed() {
        let micro = vec![MicroRow {
            op: SetOpKind::Intersect,
            short_len: 4,
            long_len: 400,
            tier: "bitmap".into(),
            merge_ns: 100.0,
            galloping_ns: 50.0,
            bitmap_ns: 10.0,
        }];
        let cells = vec![SpeedupCell {
            dataset: "plhub".into(),
            benchmark: "4cl".into(),
            bitmap_hubs: 1024,
            count_fusion: true,
            baseline_ms: 20.0,
            bitmap_ms: 10.0,
            speedup: 2.0,
            embeddings: 7,
        }];
        let j = render_json(&micro, &cells);
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\"microbench\""));
        assert!(j.contains("\"speedup\": ["));
        assert!(j.contains("\"baseline_ms\": 20.000"));
        assert!(j.contains("\"threads\": 1"));
        assert!(j.contains("\"bitmap_hubs\": 1024"));
        assert!(j.contains("\"count_fusion\": true"));
    }
}
