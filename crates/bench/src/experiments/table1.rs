//! Table 1: evaluated graph datasets (paper values vs stand-in values).

use fingers_graph::datasets::Dataset;
use fingers_graph::GraphStats;

use crate::datasets::load;
use crate::report::with_commas;

/// Renders Table 1 with the real datasets' statistics side by side with the
/// synthetic stand-ins actually mined here.
pub fn run(quick: bool) -> String {
    let mut out = String::from(
        "## Table 1 — Evaluated graph datasets\n\n\
         Real SNAP datasets are replaced by deterministic scaled stand-ins\n\
         (DESIGN.md §2); the columns preserve each graph's degree shape and\n\
         its size relative to the (equally scaled) shared cache.\n\n\
         | Dataset | paper |V| | paper |E| | paper avg/max deg | ours |V| | ours |E| | ours avg/max deg | fits 4 MB-eq cache |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    let list: Vec<Dataset> = if quick {
        vec![Dataset::AstroPh, Dataset::Mico]
    } else {
        Dataset::ALL.to_vec()
    };
    for d in list {
        let paper = d.paper_row();
        let s = GraphStats::compute(load(d));
        out.push_str(&format!(
            "| {} ({}) | {:.1} K | {:.1} K | {:.1} / {} | {} | {} | {:.1} / {} | {} |\n",
            d.name(),
            d.abbrev(),
            paper.vertices / 1e3,
            paper.edges / 1e3,
            paper.avg_degree,
            with_commas(paper.max_degree as u64),
            with_commas(s.vertices as u64),
            with_commas(s.edges as u64),
            s.avg_degree,
            with_commas(s.max_degree as u64),
            if d.fits_in_shared_cache() {
                "yes"
            } else {
                "no"
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_report_renders() {
        let r = super::run(true);
        assert!(r.contains("AstroPh"));
        assert!(r.contains("Mico"));
        assert!(r.contains("| Dataset |"));
    }
}
