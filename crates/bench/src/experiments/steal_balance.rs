//! Work-stealing load-balance evaluation on a hub-heavy power-law graph
//! (DESIGN.md §14).
//!
//! The Chung–Lu generator puts its hubs at low vertex ids, so a *static*
//! root partition (one contiguous chunk per worker, no dynamic claiming —
//! the strawman the paper's accelerator also avoids) gives worker 0 nearly
//! all the DFS work and leaves the rest idle. The experiment compares three
//! schedulers per (benchmark, threads) cell:
//!
//! - **static** — one [`MiningTask`] per worker, assigned up front;
//! - **cursor** — the shared-atomic dynamic baseline
//!   ([`EngineConfig::without_stealing`], PR-2's scheduler);
//! - **steal** — the work-stealing deques (default config).
//!
//! **Metric: critical-path ms, not contended wall ms.** Each scheduler's
//! realized task→worker assignment (from
//! [`fingers_mining::count_plan_parallel_trace`]) is replayed serially,
//! timing each worker's task list uncontended; the cell's cost is the
//! slowest worker — exactly what the wall clock shows on a machine with at
//! least `threads` idle cores. Measuring contended wall time instead would
//! let the host's core count mask the imbalance under test (on a
//! single-core CI box every schedule takes the same wall time; the hub
//! straggler is invisible). Actual steal-run wall ms is recorded as an
//! advisory column.
//!
//! Counts are asserted bit-identical to the serial miner for every
//! scheduler in every cell — scheduling is a pure performance decision —
//! and the headline number is the steal-vs-static critical-path speedup at
//! 8 threads. The raw series is written to `steal_balance.json` under the
//! usual results-directory gating.

use std::time::Instant;

use fingers_graph::gen::{chung_lu_power_law, ChungLuConfig};
use fingers_graph::CsrGraph;
use fingers_mining::{
    count_benchmark_with, count_plan_parallel_trace, CountSink, EngineConfig, MiningTask, PlanMiner,
};
use fingers_pattern::benchmarks::Benchmark;

use crate::report::{json_escape, write_json};

/// Runs the grid and writes `steal_balance.json`.
pub fn run(quick: bool) -> String {
    let cells = run_grid(quick);
    write_json("steal_balance", &render_json(&cells));
    render_grid(&cells)
}

/// The synthetic heavy-tail graph (same construction as `bitmap_kernels`
/// and `count_fusion`'s `plhub`): hubs at low ids make the static chunk
/// containing them the straggler.
fn plhub() -> CsrGraph {
    let mut cfg = ChungLuConfig::new(4000, 80_000, 18);
    cfg.exponent = 1.9;
    chung_lu_power_law(&cfg)
}

/// One (benchmark, threads) cell: the same workload under all three
/// schedulers.
#[derive(Debug, Clone)]
pub struct StealCell {
    /// Benchmark abbreviation.
    pub benchmark: String,
    /// Worker count every scheduler ran with.
    pub threads: usize,
    /// Critical-path ms of the static one-chunk-per-worker partition.
    pub static_ms: f64,
    /// Critical-path ms of the shared-cursor baseline's realized schedule.
    pub cursor_ms: f64,
    /// Critical-path ms of the work-stealing schedule.
    pub steal_ms: f64,
    /// Advisory: contended wall ms of the actual steal run (tracks
    /// `steal_ms` only when the host has `threads` idle cores).
    pub steal_wall_ms: f64,
    /// `static_ms / steal_ms` — the headline balance win.
    pub speedup_vs_static: f64,
    /// `cursor_ms / steal_ms` — stealing vs the already-dynamic baseline.
    pub speedup_vs_cursor: f64,
    /// Total embeddings (asserted identical across all schedulers and the
    /// serial miner).
    pub embeddings: u64,
}

/// Serially mines each worker's task list of `schedule` with a fresh miner
/// and returns the slowest worker's wall ms (the schedule's critical path)
/// plus the total count. Uncontended by construction: one worker's tasks
/// run at a time, so the measurement is pure work, not host core count.
fn replay_critical_ms(
    graph: &CsrGraph,
    bench: Benchmark,
    schedules: &[Vec<Vec<MiningTask>>],
    config: &EngineConfig,
) -> (f64, u64) {
    let multi = bench.plan();
    assert_eq!(
        schedules.len(),
        multi.plans().len(),
        "one schedule per plan"
    );
    let hubs = config.hub_set(graph);
    let workers = schedules.iter().map(Vec::len).max().unwrap_or(0);
    let mut per_worker_ms = vec![0.0f64; workers];
    let mut total = 0u64;
    for (plan, trace) in multi.plans().iter().zip(schedules) {
        for (worker, tasks) in trace.iter().enumerate() {
            let mut miner = PlanMiner::with_hubs(graph, plan, hubs.clone(), config);
            let mut sink = CountSink::default();
            let start = Instant::now();
            for task in tasks {
                miner.run(task.clone(), &mut sink);
            }
            per_worker_ms[worker] += start.elapsed().as_secs_f64() * 1e3;
            total += sink.count;
        }
    }
    (per_worker_ms.iter().copied().fold(0.0, f64::max), total)
}

/// The static schedule: exactly one contiguous root chunk per worker.
fn static_schedule(vertex_count: usize, threads: usize) -> Vec<Vec<MiningTask>> {
    MiningTask::partition(vertex_count, threads.max(1))
        .into_iter()
        .map(|t| vec![t])
        .collect()
}

/// The benchmark set: triangle counting in quick mode, plus the 4-clique
/// (deeper trees amplify per-root skew) in full mode.
fn balance_benchmarks(quick: bool) -> Vec<Benchmark> {
    if quick {
        vec![Benchmark::Tc]
    } else {
        vec![Benchmark::Tc, Benchmark::Cl4]
    }
}

/// Runs the benchmark × thread-count grid on the hub graph; asserts every
/// scheduler's count equals the serial miner's. Polls the checkpoint
/// watchdog between cells like the other grids.
pub fn run_grid(quick: bool) -> Vec<StealCell> {
    let token = crate::checkpoint::section_token();
    let reps = if quick { 1 } else { 3 };
    let graph = plhub();
    let steal_cfg = EngineConfig::default();
    let cursor_cfg = EngineConfig::without_stealing();
    let thread_counts: &[usize] = if quick { &[1, 8] } else { &[1, 2, 4, 8] };

    let mut cells = Vec::new();
    for b in balance_benchmarks(quick) {
        let serial = count_benchmark_with(&graph, b, &steal_cfg).total();
        for &threads in thread_counts {
            if token.is_cancelled() {
                return cells;
            }
            // Realized schedules (and an advisory contended wall time for
            // the steal run); the traced runs' own counts are asserted
            // against the serial miner as well.
            let static_trace: Vec<Vec<Vec<MiningTask>>> = b
                .plan()
                .plans()
                .iter()
                .map(|_| static_schedule(graph.vertex_count(), threads))
                .collect();
            let wall_start = Instant::now();
            let mut traced_steal_count = 0u64;
            let steal_trace: Vec<Vec<Vec<MiningTask>>> = b
                .plan()
                .plans()
                .iter()
                .map(|plan| {
                    let (count, trace) =
                        count_plan_parallel_trace(&graph, plan, threads, &steal_cfg);
                    traced_steal_count += count;
                    trace
                })
                .collect();
            let steal_wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(traced_steal_count, serial, "traced steal run diverged");
            let mut traced_cursor_count = 0u64;
            let cursor_trace: Vec<Vec<Vec<MiningTask>>> = b
                .plan()
                .plans()
                .iter()
                .map(|plan| {
                    let (count, trace) =
                        count_plan_parallel_trace(&graph, plan, threads, &cursor_cfg);
                    traced_cursor_count += count;
                    trace
                })
                .collect();
            assert_eq!(traced_cursor_count, serial, "traced cursor run diverged");

            let (mut static_ms, mut cursor_ms, mut steal_ms) =
                (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            let (mut static_total, mut cursor_total, mut steal_total) = (0u64, 0u64, 0u64);
            for _ in 0..reps {
                let (ms, n) = replay_critical_ms(&graph, b, &static_trace, &cursor_cfg);
                static_ms = static_ms.min(ms);
                static_total = n;
                let (ms, n) = replay_critical_ms(&graph, b, &cursor_trace, &cursor_cfg);
                cursor_ms = cursor_ms.min(ms);
                cursor_total = n;
                let (ms, n) = replay_critical_ms(&graph, b, &steal_trace, &steal_cfg);
                steal_ms = steal_ms.min(ms);
                steal_total = n;
            }
            assert_eq!(static_total, serial, "static diverged: {b} t={threads}");
            assert_eq!(cursor_total, serial, "cursor diverged: {b} t={threads}");
            assert_eq!(steal_total, serial, "steal diverged: {b} t={threads}");
            cells.push(StealCell {
                benchmark: b.abbrev().to_owned(),
                threads,
                static_ms,
                cursor_ms,
                steal_ms,
                steal_wall_ms,
                speedup_vs_static: static_ms / steal_ms.max(1e-9),
                speedup_vs_cursor: cursor_ms / steal_ms.max(1e-9),
                embeddings: serial,
            });
        }
    }
    cells
}

/// The minimum steal-vs-static speedup among 8-thread cells (the
/// acceptance headline), or `None` when no 8-thread cell exists.
pub fn worst_8t_vs_static(cells: &[StealCell]) -> Option<f64> {
    cells
        .iter()
        .filter(|c| c.threads == 8)
        .map(|c| c.speedup_vs_static)
        .reduce(f64::min)
}

fn render_grid(cells: &[StealCell]) -> String {
    let mut out = String::from(
        "## Work stealing — load balance on the power-law hub graph\n\n\
         Critical-path time (slowest worker's serially replayed task list) \
         of the realized schedule under a static one-chunk-per-worker \
         partition, the shared-cursor dynamic baseline, and the \
         work-stealing deques; counts asserted bit-identical to the serial \
         miner in every cell. Critical path is what the wall clock shows \
         with enough idle cores — contended wall time would hide the \
         imbalance on small hosts.\n\n\
         | benchmark | threads | static ms | cursor ms | steal ms | \
         vs static | vs cursor |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for c in cells {
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.1} | {:.1} | {:.2}× | {:.2}× |\n",
            c.benchmark,
            c.threads,
            c.static_ms,
            c.cursor_ms,
            c.steal_ms,
            c.speedup_vs_static,
            c.speedup_vs_cursor
        ));
    }
    if let Some(worst) = worst_8t_vs_static(cells) {
        out.push_str(&format!(
            "\n- worst 8-thread steal-vs-static speedup: {worst:.2}× \
             (the hub chunk serializes the static schedule; stealing sheds \
             its queued tail to idle workers)\n"
        ));
    }
    out
}

/// Renders the grid as a JSON document.
fn render_json(cells: &[StealCell]) -> String {
    let mut out = String::from("{\n  \"metric\": \"critical_path_ms\",\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"plhub\", \"benchmark\": \"{}\", \
             \"threads\": {}, \"static_ms\": {:.3}, \"cursor_ms\": {:.3}, \
             \"steal_ms\": {:.3}, \"steal_wall_ms\": {:.3}, \
             \"speedup_vs_static\": {:.3}, \"speedup_vs_cursor\": {:.3}, \
             \"embeddings\": {}}}{}\n",
            json_escape(&c.benchmark),
            c.threads,
            c.static_ms,
            c.cursor_ms,
            c.steal_ms,
            c.steal_wall_ms,
            c.speedup_vs_static,
            c.speedup_vs_cursor,
            c.embeddings,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    let worst = worst_8t_vs_static(cells).unwrap_or(0.0);
    out.push_str(&format!("  ],\n  \"worst_8t_vs_static\": {worst:.3}\n}}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingers_graph::gen::erdos_renyi;

    #[test]
    fn static_schedule_partitions_roots() {
        for (n, threads) in [(97usize, 8usize), (16, 16), (5, 8)] {
            let sched = static_schedule(n, threads);
            let mut roots: Vec<u32> = sched.iter().flatten().flat_map(MiningTask::roots).collect();
            roots.sort_unstable();
            let everything: Vec<u32> = (0..n as u32).collect();
            assert_eq!(roots, everything, "n={n} threads={threads}");
        }
    }

    #[test]
    fn replay_matches_serial_count() {
        let g = erdos_renyi(80, 400, 9);
        let cfg = EngineConfig::default();
        let serial = count_benchmark_with(&g, Benchmark::Tc, &cfg).total();
        for threads in [1usize, 2, 8] {
            let schedules: Vec<Vec<Vec<MiningTask>>> = Benchmark::Tc
                .plan()
                .plans()
                .iter()
                .map(|_| static_schedule(g.vertex_count(), threads))
                .collect();
            let (ms, total) = replay_critical_ms(&g, Benchmark::Tc, &schedules, &cfg);
            assert_eq!(total, serial, "threads={threads}");
            assert!(ms >= 0.0);
        }
    }

    #[test]
    fn quick_grid_cells_are_consistent() {
        let cells = run_grid(true);
        assert!(!cells.is_empty());
        assert!(cells.iter().any(|c| c.threads == 8));
        for c in &cells {
            assert!(c.static_ms >= 0.0 && c.cursor_ms >= 0.0 && c.steal_ms >= 0.0);
            assert!((c.speedup_vs_static - c.static_ms / c.steal_ms.max(1e-9)).abs() < 1e-9);
            assert!((c.speedup_vs_cursor - c.cursor_ms / c.steal_ms.max(1e-9)).abs() < 1e-9);
        }
        assert!(worst_8t_vs_static(&cells).is_some());
    }

    #[test]
    fn json_document_is_well_formed() {
        let cells = vec![StealCell {
            benchmark: "tc".into(),
            threads: 8,
            static_ms: 40.0,
            cursor_ms: 12.0,
            steal_ms: 10.0,
            steal_wall_ms: 11.0,
            speedup_vs_static: 4.0,
            speedup_vs_cursor: 1.2,
            embeddings: 99,
        }];
        let j = render_json(&cells);
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\"metric\": \"critical_path_ms\""));
        assert!(j.contains("\"cells\": ["));
        assert!(j.contains("\"worst_8t_vs_static\": 4.000"));
        assert!(j.contains("\"speedup_vs_cursor\": 1.200"));
    }
}
