//! Energy comparison (extension beyond the paper's power-only Section 6.1):
//! estimated energy per workload for the iso-area FINGERS and FlexMiner
//! chips, from the activity counters of the same runs that produce
//! Figure 10.

use fingers_core::area::energy_estimate;
use fingers_core::chip::simulate_fingers;
use fingers_core::config::ChipConfig;
use fingers_flexminer::{simulate_flexminer, FlexMinerChipConfig};
use fingers_graph::datasets::Dataset;
use fingers_pattern::benchmarks::Benchmark;

use crate::datasets::load;

/// Runs a benchmark subset on both iso-area chips and reports estimated
/// energy (dynamic compute + cache + DRAM + static) per workload.
pub fn run(quick: bool) -> String {
    let graphs = if quick {
        vec![Dataset::AstroPh]
    } else {
        vec![Dataset::Mico, Dataset::Youtube]
    };
    let benches = if quick {
        vec![Benchmark::Tc]
    } else {
        vec![Benchmark::Tc, Benchmark::Tt, Benchmark::Cyc]
    };
    let mut out = String::from(
        "## Energy estimate (extension) — iso-area chips, per workload\n\n\
         Dynamic energy from activity counters (IU cycles, divider loads, \
         cache/DRAM traffic) plus static energy over the measured runtime; \
         constants in `fingers_core::area`.\n\n\
         | graph / pattern | FINGERS (µJ) | FlexMiner (µJ) | energy ratio |\n\
         |---|---|---|---|\n",
    );
    for &d in &graphs {
        let g = load(d);
        for &b in &benches {
            let multi = b.plan();
            let fi_report = simulate_fingers(g, &multi, &ChipConfig::default());
            let fi = energy_estimate(&fi_report, 20);
            let fm_report = simulate_flexminer(g, &multi, &FlexMinerChipConfig::default());
            // FlexMiner's static power per PE is lower (smaller PE); scale
            // by its 15 nm area ratio as a first-order estimate.
            let fm = energy_estimate(&fm_report, 40);
            out.push_str(&format!(
                "| {} / {} | {:.1} | {:.1} | {:.2}× |\n",
                d.abbrev(),
                b.abbrev(),
                fi.total_uj(),
                fm.total_uj(),
                fm.total_uj() / fi.total_uj().max(1e-12),
            ));
        }
    }
    out.push_str(
        "\n- FINGERS finishes sooner on half the PEs, so static energy drops \
         with runtime; dynamic set-operation energy is similar (same \
         algorithmic work), making runtime the dominant energy lever\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_energy_renders() {
        let r = super::run(true);
        assert!(r.contains("Energy estimate"));
        assert!(r.contains("µJ"));
    }
}
