//! Figure 12: PE scalability in number of IUs (iso-area), on Youtube.

use fingers_core::config::PeConfig;
use fingers_graph::datasets::Dataset;
use fingers_pattern::benchmarks::Benchmark;

use crate::datasets::load;
use crate::report::{markdown_matrix, write_csv};
use crate::runner::run_fingers_single;

/// IU counts swept by the paper's Figure 12.
pub const IU_SWEEP: [usize; 7] = [1, 2, 4, 8, 16, 24, 48];

/// Runs the iso-area IU sweep (`#IUs × s_l = 384`) for 4cl, cyc, tt, plus
/// the unlimited-area tt series, on the Youtube stand-in.
pub fn run(quick: bool) -> String {
    let dataset = if quick {
        Dataset::AstroPh
    } else {
        Dataset::Youtube
    };
    let g = load(dataset);
    let ius: Vec<usize> = if quick {
        vec![1, 8, 24]
    } else {
        IU_SWEEP.to_vec()
    };
    let benches = [Benchmark::Cl4, Benchmark::Cyc, Benchmark::Tt];

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row_labels: Vec<String> = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    for &b in &benches {
        // Both series share the 1-IU iso-area baseline so the curves are
        // directly comparable.
        let base = run_fingers_single(g, b, PeConfig::iso_area_ius(1)).cycles;
        let row = ius
            .iter()
            .map(|&n| {
                let r = run_fingers_single(g, b, PeConfig::iso_area_ius(n));
                csv_rows.push(vec![
                    b.abbrev().into(),
                    n.to_string(),
                    r.cycles.to_string(),
                    format!("{:.4}", base as f64 / r.cycles as f64),
                ]);
                format!("{:.2}×", base as f64 / r.cycles as f64)
            })
            .collect();
        row_labels.push(b.abbrev().to_string());
        rows.push(row);
    }
    // tt with unlimited area: IUs grow, segment length stays 16 — same
    // baseline as the iso-area tt series.
    {
        let base = run_fingers_single(g, Benchmark::Tt, PeConfig::iso_area_ius(1)).cycles;
        let row = ius
            .iter()
            .map(|&n| {
                let r = run_fingers_single(g, Benchmark::Tt, PeConfig::unlimited_area_ius(n));
                csv_rows.push(vec![
                    "tt-unlimited".into(),
                    n.to_string(),
                    r.cycles.to_string(),
                    format!("{:.4}", base as f64 / r.cycles as f64),
                ]);
                format!("{:.2}×", base as f64 / r.cycles as f64)
            })
            .collect();
        row_labels.push("tt-unlimited".to_string());
        rows.push(row);
    }
    write_csv(
        "fig12_iu_scaling",
        &["series", "ius", "cycles", "speedup"],
        &csv_rows,
    );

    let col_labels: Vec<String> = ius.iter().map(|n| format!("{n} IUs")).collect();
    let col_refs: Vec<&str> = col_labels.iter().map(String::as_str).collect();
    let row_refs: Vec<&str> = row_labels.iter().map(String::as_str).collect();

    let mut out = format!(
        "## Figure 12 — PE scalability vs number of IUs ({} graph)\n\n\
         Iso-area scaling: `#IUs × s_l = 24 × 16` (more IUs ⇒ shorter \
         segments); speedups are relative to the 1-IU configuration.\n\n",
        dataset.abbrev()
    );
    out.push_str(&markdown_matrix(
        "series \\ #IUs",
        &col_refs,
        &row_refs,
        &rows,
    ));
    out.push_str(
        "\n- paper shapes: tt and cyc scale well to 16–24 IUs then drop at 48 \
         (segments too short); 4cl scales poorly (needs branch-level \
         parallelism instead); tt-unlimited keeps improving with area\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_sweep_renders() {
        let r = super::run(true);
        assert!(r.contains("Figure 12"));
        assert!(r.contains("tt-unlimited"));
    }
}
