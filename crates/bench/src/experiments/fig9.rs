//! Figure 9: single-PE speedups of FINGERS over FlexMiner
//! (7 patterns × 6 graphs).

use crate::datasets::load;
use crate::report::{geomean, markdown_matrix, speedup, write_csv};
use crate::runner::{benchmarks, compare_single_pe, datasets};

/// Runs the full single-PE speedup matrix and renders it with the paper's
/// headline aggregates for comparison.
pub fn run(quick: bool) -> String {
    let benches = benchmarks(quick);
    let graphs = datasets(quick);

    let mut values = Vec::new();
    let mut all = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for &b in &benches {
        let mut row = Vec::new();
        for &d in &graphs {
            let c = compare_single_pe(load(d), b);
            all.push(c.speedup);
            row.push(speedup(c.speedup));
            csv_rows.push(vec![
                b.abbrev().into(),
                d.abbrev().into(),
                format!("{:.4}", c.speedup),
                c.fingers_cycles.to_string(),
                c.flexminer_cycles.to_string(),
            ]);
        }
        values.push(row);
    }
    write_csv(
        "fig9_single_pe",
        &[
            "pattern",
            "graph",
            "speedup",
            "fingers_cycles",
            "flexminer_cycles",
        ],
        &csv_rows,
    );

    let col_labels: Vec<&str> = graphs.iter().map(|d| d.abbrev()).collect();
    let row_labels: Vec<&str> = benches.iter().map(|b| b.abbrev()).collect();
    let mut out = String::from("## Figure 9 — Single-PE speedups of FINGERS over FlexMiner\n\n");
    out.push_str(&markdown_matrix(
        "pattern \\ graph",
        &col_labels,
        &row_labels,
        &values,
    ));
    out.push_str(&format!(
        "\n- geometric mean: {:.2}× — paper reports 6.2× average\n\
         - maximum: {:.2}× — paper reports up to 13.2×\n\
         - expected shapes: tt/cyc (subtraction-heavy, large sets) above \
         tc/4cl/5cl (no set-level parallelism); dia below tt/cyc; every cell > 1×\n",
        geomean(&all),
        all.iter().cloned().fold(0.0, f64::max),
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_matrix_renders_and_wins() {
        let r = super::run(true);
        assert!(r.contains("Figure 9"));
        assert!(r.contains("tc"));
        // Every quick cell shows a ×.
        assert!(r.matches('×').count() >= 4);
    }
}
