//! Parallelism profile: quantifies the realized degree of each fine-grained
//! parallelism level per (pattern, graph), supporting the paper's final
//! contribution claim that "different patterns and different graphs exhibit
//! drastically different degrees of each fine-grained parallelism"
//! (Sections 1 and 6.2).

use fingers_core::config::PeConfig;

use crate::datasets::load;
use crate::runner::{benchmarks, datasets, run_fingers_single};

/// Runs every benchmark × dataset cell on one FINGERS PE and reports the
/// realized branch- (tasks per pseudo-DFS group), set- (scheduled ops per
/// task, after dedup), and segment-level (IU workloads per op) parallelism.
pub fn run(quick: bool) -> String {
    let benches = benchmarks(quick);
    let graphs = datasets(quick);

    let mut out = String::from(
        "## Parallelism profile — realized degree of each fine-grained level\n\n\
         Values are `branch / set / segment`: mean tasks per pseudo-DFS \
         group, mean set ops per task (identical computations deduplicated, \
         which is why cliques sit near 1), and mean IU workloads per set \
         operation.\n\n| pattern \\ graph |",
    );
    for d in &graphs {
        out.push_str(&format!(" {} |", d.abbrev()));
    }
    out.push_str("\n|---|");
    for _ in &graphs {
        out.push_str("---|");
    }
    out.push('\n');
    for &b in &benches {
        out.push_str(&format!("| {} |", b.abbrev()));
        for &d in &graphs {
            let r = run_fingers_single(load(d), b, PeConfig::default());
            let pe = &r.pes[0];
            out.push_str(&format!(
                " {:.1} / {:.1} / {:.1} |",
                pe.avg_group_size(),
                pe.avg_ops_per_task(),
                pe.avg_workloads_per_op()
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "\n- expected shapes: cliques ≈ 1 set op per task (no set-level \
         parallelism — Section 6.2); subtraction-heavy patterns (tt, cyc) \
         carry more ops and more segments; high-degree graphs (Or) have \
         the most segment-level parallelism; branch-level degree rises \
         where candidate sets are small\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_profile_renders() {
        let r = super::run(true);
        assert!(r.contains("Parallelism profile"));
        assert!(r.contains(" / "));
    }
}
