//! Parallelism profile: quantifies the realized degree of each fine-grained
//! parallelism level per (pattern, graph), supporting the paper's final
//! contribution claim that "different patterns and different graphs exhibit
//! drastically different degrees of each fine-grained parallelism"
//! (Sections 1 and 6.2).
//!
//! Also measures the *coarse-grained* software analogue: wall-clock speedup
//! of the task-parallel reference miner as the worker-thread count grows
//! (the software counterpart of the accelerator's PE scaling), dumping the
//! raw series as JSON when `$FINGERS_RESULTS_DIR` exists.

use fingers_core::config::PeConfig;
use fingers_mining::EngineConfig;

use crate::datasets::load;
use crate::report::{json_escape, write_json};
use crate::runner::{benchmarks, datasets, run_fingers_single, run_software_grid, SoftwareCell};

/// Runs every benchmark × dataset cell on one FINGERS PE and reports the
/// realized branch- (tasks per pseudo-DFS group), set- (scheduled ops per
/// task, after dedup), and segment-level (IU workloads per op) parallelism.
pub fn run(quick: bool) -> String {
    let benches = benchmarks(quick);
    let graphs = datasets(quick);

    let mut out = String::from(
        "## Parallelism profile — realized degree of each fine-grained level\n\n\
         Values are `branch / set / segment`: mean tasks per pseudo-DFS \
         group, mean set ops per task (identical computations deduplicated, \
         which is why cliques sit near 1), and mean IU workloads per set \
         operation.\n\n| pattern \\ graph |",
    );
    for d in &graphs {
        out.push_str(&format!(" {} |", d.abbrev()));
    }
    out.push_str("\n|---|");
    for _ in &graphs {
        out.push_str("---|");
    }
    out.push('\n');
    for &b in &benches {
        out.push_str(&format!("| {} |", b.abbrev()));
        for &d in &graphs {
            let r = run_fingers_single(load(d), b, PeConfig::default());
            let pe = &r.pes[0];
            out.push_str(&format!(
                " {:.1} / {:.1} / {:.1} |",
                pe.avg_group_size(),
                pe.avg_ops_per_task(),
                pe.avg_workloads_per_op()
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "\n- expected shapes: cliques ≈ 1 set op per task (no set-level \
         parallelism — Section 6.2); subtraction-heavy patterns (tt, cyc) \
         carry more ops and more segments; high-degree graphs (Or) have \
         the most segment-level parallelism; branch-level degree rises \
         where candidate sets are small\n",
    );
    out.push_str(&software_scaling_section(quick));
    out
}

/// Thread counts swept by the software-scaling measurement.
pub const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

/// Bitmap-tier modes swept alongside the thread counts: off vs default-on.
fn bitmap_modes() -> [EngineConfig; 2] {
    [EngineConfig::without_bitmap(), EngineConfig::default()]
}

/// Measures the task-parallel software miner's wall-clock speedup over its
/// own single-thread run for each (dataset, benchmark, bitmap-mode) cell,
/// renders a markdown table, and writes the raw series to
/// `parallelism_threads.json` (under the usual results-directory gating).
/// Each JSON cell records its `bitmap_hubs` toggle, so thread-scaling can
/// be analyzed with the bitmap tier on and off separately.
fn software_scaling_section(quick: bool) -> String {
    let cells = run_software_grid(quick, &THREAD_SWEEP, &bitmap_modes());
    write_json("parallelism_threads", &render_json(&cells));

    let mut out = String::from(
        "\n## Software miner thread scaling — root-partitioned tasks\n\n\
         Wall-clock speedup of `count_plan_parallel` over its 1-thread run \
         (identical counts at every thread count and bitmap mode, by \
         construction). `bitmap=off` is the merge/galloping engine; \
         `bitmap=on` adds the dense hub-bitmap tier.\n\n\
         | dataset / benchmark / bitmap |",
    );
    for t in THREAD_SWEEP {
        out.push_str(&format!(" {t} thread{} |", if t == 1 { "" } else { "s" }));
    }
    out.push_str("\n|---|");
    for _ in THREAD_SWEEP {
        out.push_str("---|");
    }
    out.push('\n');
    // Grid order is dataset-major, then benchmark, then bitmap mode, then
    // threads, so each consecutive THREAD_SWEEP-sized chunk is one
    // (dataset, benchmark, bitmap) row.
    for row in cells.chunks(THREAD_SWEEP.len()) {
        let base_ms = row[0].wall_ms.max(1e-9);
        out.push_str(&format!(
            "| {} / {} / {} |",
            row[0].dataset,
            row[0].benchmark,
            if row[0].bitmap_hubs == 0 { "off" } else { "on" }
        ));
        for c in row {
            out.push_str(&format!(
                " {:.2}× ({:.1} ms) |",
                base_ms / c.wall_ms.max(1e-9),
                c.wall_ms
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "\n- speedups track the machine's core count: on a single-core host \
         every column stays ≈ 1× (the engine adds no contention, so it \
         does not *slow down* either); the per-thread counts are asserted \
         identical by `tests/determinism.rs`, with the bitmap tier both on \
         and off\n",
    );
    out
}

/// Renders the grid as a JSON array of cell objects.
fn render_json(cells: &[SoftwareCell]) -> String {
    let mut out = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"dataset\": \"{}\", \"benchmark\": \"{}\", \"threads\": {}, \
             \"bitmap_hubs\": {}, \"count_fusion\": {}, \"simd\": {}, \
             \"work_stealing\": {}, \"embeddings\": {}, \"wall_ms\": {:.3}}}{}\n",
            json_escape(&c.dataset),
            json_escape(&c.benchmark),
            c.threads,
            c.bitmap_hubs,
            c.count_fusion,
            c.simd,
            c.work_stealing,
            c.embeddings,
            c.wall_ms,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_renders() {
        let r = run(true);
        assert!(r.contains("Parallelism profile"));
        assert!(r.contains(" / "));
        assert!(r.contains("thread scaling"));
        assert!(r.contains("1 thread |"));
    }

    #[test]
    fn json_series_is_well_formed() {
        let cells = vec![
            SoftwareCell {
                dataset: "As".into(),
                benchmark: "tc".into(),
                threads: 1,
                bitmap_hubs: 0,
                count_fusion: true,
                simd: true,
                work_stealing: true,
                embeddings: 42,
                wall_ms: 1.5,
            },
            SoftwareCell {
                dataset: "As".into(),
                benchmark: "tc".into(),
                threads: 2,
                bitmap_hubs: 64,
                count_fusion: false,
                simd: false,
                work_stealing: false,
                embeddings: 42,
                wall_ms: 0.9,
            },
        ];
        let j = render_json(&cells);
        assert!(j.starts_with("[\n"));
        assert!(j.trim_end().ends_with(']'));
        assert_eq!(j.matches("\"threads\"").count(), 2);
        assert!(j.contains("\"bitmap_hubs\": 0"));
        assert!(j.contains("\"bitmap_hubs\": 64"));
        assert!(j.contains("\"count_fusion\": true"));
        assert!(j.contains("\"count_fusion\": false"));
        assert!(j.contains("\"simd\": true"));
        assert!(j.contains("\"work_stealing\": false"));
        assert!(j.contains("\"embeddings\": 42"));
        // Exactly one separating comma between the two objects.
        assert_eq!(j.matches("},").count(), 1);
    }
}
