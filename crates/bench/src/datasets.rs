//! Memoized dataset loading for the harness.

use fingers_graph::datasets::Dataset;
use fingers_graph::CsrGraph;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

static CACHE: OnceLock<Mutex<HashMap<Dataset, &'static CsrGraph>>> = OnceLock::new();

/// Loads (and memoizes for the process lifetime) a dataset stand-in.
///
/// Experiments run many configurations over the same graphs; generating
/// each stand-in once keeps the harness deterministic *and* fast.
pub fn load(dataset: Dataset) -> &'static CsrGraph {
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // §11: the critical section only inserts into a HashMap; a poisoned
    // lock means a generator panicked mid-insert, and the harness cannot
    // trust any dataset after that — abort is correct.
    #[allow(clippy::expect_used)] // §11: justified above
    let mut map = cache.lock().expect("dataset cache poisoned");
    map.entry(dataset)
        .or_insert_with(|| Box::leak(Box::new(dataset.load())))
}

/// The evaluation's "representative trio" used by Figures 11 and 13: one
/// cache-resident graph, one low-degree large graph, one high-degree large
/// graph ("Mi, Pa, Or are similar to As, Yo, Lj, respectively").
pub fn representative_trio() -> [Dataset; 3] {
    [Dataset::AstroPh, Dataset::Youtube, Dataset::LiveJournal]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_memoizes() {
        let a = load(Dataset::AstroPh) as *const CsrGraph;
        let b = load(Dataset::AstroPh) as *const CsrGraph;
        assert_eq!(a, b);
    }

    #[test]
    fn trio_members_are_distinct() {
        let t = representative_trio();
        assert_ne!(t[0], t[1]);
        assert_ne!(t[1], t[2]);
    }
}
