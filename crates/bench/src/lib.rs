//! Evaluation harness reproducing every table and figure of the FINGERS
//! paper (Section 6).
//!
//! Each experiment lives in [`experiments`] as a function returning a
//! rendered report (the same rows/series the paper presents, with our
//! measured values); the `src/bin/*` binaries are thin wrappers, one per
//! table/figure:
//!
//! | Binary | Paper element |
//! |--------|---------------|
//! | `table1_datasets` | Table 1 (dataset statistics) |
//! | `table2_area` | Table 2 + Section 6.1 (area, power, frequency) |
//! | `fig9_single_pe` | Figure 9 (single-PE speedups) |
//! | `fig10_overall` | Figure 10 (20-PE FINGERS vs 40-PE FlexMiner) |
//! | `fig11_branch` | Figure 11 (pseudo-DFS / branch-level ablation) |
//! | `fig12_iu_scaling` | Figure 12 (IU-count scalability, iso-area) |
//! | `fig13_cache_miss` | Figure 13 (shared-cache miss curves) |
//! | `table3_utilization` | Table 3 (IU active/balance rates) |
//! | `ablations` | Extra sweeps beyond the paper (DESIGN.md §8) |
//! | `run_all` | Everything above, writing `EXPERIMENTS.md`-ready output |
//!
//! Pass `--quick` to any binary to run a reduced matrix (small graphs /
//! fewer cells) — used by CI-style smoke runs and the Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod datasets;
pub mod experiments;
pub mod report;
pub mod runner;

/// Returns true when `--quick` was passed to the current binary.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Returns true when `--resume` was passed to the current binary or
/// `FINGERS_RESUME=1` is set.
pub fn resume_mode() -> bool {
    std::env::args().any(|a| a == "--resume")
        || std::env::var("FINGERS_RESUME").is_ok_and(|v| v == "1")
}
