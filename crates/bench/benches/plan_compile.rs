//! Criterion benches for the plan compiler: automorphism enumeration,
//! symmetry breaking, and full compilation per benchmark pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fingers_pattern::benchmarks::Benchmark;
use fingers_pattern::{
    automorphisms, symmetry_breaking_restrictions, ExecutionPlan, Induced, Pattern,
};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan-compile");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for bench in Benchmark::ALL {
        group.bench_with_input(
            BenchmarkId::new("full", bench.abbrev()),
            &bench,
            |b, &bench| b.iter(|| bench.plan()),
        );
    }
    for k in [5usize, 7, 8] {
        let p = Pattern::clique(k);
        group.bench_with_input(BenchmarkId::new("automorphisms-clique", k), &p, |b, p| {
            b.iter(|| automorphisms(p))
        });
        group.bench_with_input(BenchmarkId::new("symmetry-clique", k), &p, |b, p| {
            b.iter(|| symmetry_breaking_restrictions(p))
        });
    }
    let house = Pattern::from_edges_named(
        5,
        &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)],
        "house",
    );
    group.bench_function("compile-house-both-semantics", |b| {
        b.iter(|| {
            (
                ExecutionPlan::compile(&house, Induced::Vertex),
                ExecutionPlan::compile(&house, Induced::Edge),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
