//! Criterion benches exercising small-scale versions of every accelerator
//! experiment (Figures 9–13, Table 3), so `cargo bench` touches the entire
//! harness end to end. The full-scale regeneration lives in the
//! `fingers-bench` binaries (`run_all` etc.).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fingers_core::chip::simulate_fingers;
use fingers_core::config::{ChipConfig, PeConfig};
use fingers_flexminer::{simulate_flexminer, FlexMinerChipConfig};
use fingers_graph::gen::{chung_lu_power_law, ChungLuConfig};
use fingers_graph::CsrGraph;
use fingers_pattern::benchmarks::Benchmark;

fn small_graph() -> CsrGraph {
    chung_lu_power_law(&ChungLuConfig::new(600, 4_000, 7))
}

/// Figure 9 cells: single-PE FINGERS vs FlexMiner.
fn bench_fig9(c: &mut Criterion) {
    let g = small_graph();
    let mut group = c.benchmark_group("fig9-single-pe");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for bench in [Benchmark::Tc, Benchmark::Tt, Benchmark::Cyc] {
        let multi = bench.plan();
        group.bench_with_input(
            BenchmarkId::new("fingers", bench.abbrev()),
            &multi,
            |b, multi| b.iter(|| simulate_fingers(&g, multi, &ChipConfig::single_pe())),
        );
        group.bench_with_input(
            BenchmarkId::new("flexminer", bench.abbrev()),
            &multi,
            |b, multi| b.iter(|| simulate_flexminer(&g, multi, &FlexMinerChipConfig::single_pe())),
        );
    }
    group.finish();
}

/// Figure 10 cells: the iso-area multi-PE chips.
fn bench_fig10(c: &mut Criterion) {
    let g = small_graph();
    let multi = Benchmark::Tt.plan();
    let mut group = c.benchmark_group("fig10-iso-area");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("fingers-20pe", |b| {
        b.iter(|| simulate_fingers(&g, &multi, &ChipConfig::default()))
    });
    group.bench_function("flexminer-40pe", |b| {
        b.iter(|| simulate_flexminer(&g, &multi, &FlexMinerChipConfig::default()))
    });
    group.finish();
}

/// Figure 11 cells: pseudo-DFS on vs off.
fn bench_fig11(c: &mut Criterion) {
    let g = small_graph();
    let multi = Benchmark::Cl4.plan();
    let mut group = c.benchmark_group("fig11-pseudo-dfs");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for (name, pseudo) in [("on", true), ("off", false)] {
        group.bench_function(name, |b| {
            let mut cfg = ChipConfig::single_pe();
            cfg.pe = PeConfig {
                pseudo_dfs: pseudo,
                ..PeConfig::default()
            };
            b.iter(|| simulate_fingers(&g, &multi, &cfg))
        });
    }
    group.finish();
}

/// Figure 12 cells: iso-area IU sweep.
fn bench_fig12(c: &mut Criterion) {
    let g = small_graph();
    let multi = Benchmark::Tt.plan();
    let mut group = c.benchmark_group("fig12-iu-sweep");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for ius in [4usize, 24, 48] {
        group.bench_with_input(BenchmarkId::new("iso-area", ius), &ius, |b, &ius| {
            let mut cfg = ChipConfig::single_pe();
            cfg.pe = PeConfig::iso_area_ius(ius);
            b.iter(|| simulate_fingers(&g, &multi, &cfg))
        });
    }
    group.finish();
}

/// Figure 13 cells: shared-cache capacity sweep (miss-rate instrumentation
/// included in the simulation).
fn bench_fig13(c: &mut Criterion) {
    let g = small_graph();
    let multi = Benchmark::Cyc.plan();
    let mut group = c.benchmark_group("fig13-cache-sweep");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for mb in [2u32, 16] {
        group.bench_with_input(BenchmarkId::new("fingers", mb), &mb, |b, &mb| {
            let cfg = ChipConfig::single_pe().with_shared_cache_mb(mb as f64);
            b.iter(|| simulate_fingers(&g, &multi, &cfg))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13
);
criterion_main!(benches);
