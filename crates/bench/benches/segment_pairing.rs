//! Criterion benches for the task-divider machinery: head-list generation
//! and segment pairing / load balancing (paper Section 4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::collections::BTreeSet;

use fingers_setops::pairing::pair;
use fingers_setops::segment::Segments;
use fingers_setops::{Elem, SetOpKind, LONG_SEGMENT_LEN, SHORT_SEGMENT_LEN};

fn sorted_set(len: usize, max: u32, seed: u64) -> Vec<Elem> {
    use rand::Rng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut s = BTreeSet::new();
    while s.len() < len {
        s.insert(rng.gen_range(0..max));
    }
    s.into_iter().collect()
}

fn bench_pairing(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairing");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(30);
    for &long_len in &[240usize, 2400, 24_000] {
        let long = sorted_set(long_len, long_len as u32 * 4, 1);
        let short = sorted_set(long_len / 10, long_len as u32 * 4, 2);
        group.bench_with_input(
            BenchmarkId::new("head-lists", long_len),
            &(&short, &long),
            |b, (s, l)| {
                b.iter(|| {
                    let ls = Segments::new(l, LONG_SEGMENT_LEN);
                    let ss = Segments::new(s, SHORT_SEGMENT_LEN);
                    (ls.head_list(), ss.head_list())
                })
            },
        );
        let long_segs = Segments::new(&long, LONG_SEGMENT_LEN);
        let short_segs = Segments::new(&short, SHORT_SEGMENT_LEN);
        let long_heads = long_segs.head_list();
        let short_heads = short_segs.head_list();
        let short_lasts: Vec<Elem> = (0..short_segs.count())
            .map(|i| short_segs.last_of(i))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("pair+balance", long_len),
            &(&long_heads, &short_heads, &short_lasts),
            |b, (lh, sh, sl)| b.iter(|| pair(lh, sh, sl, SetOpKind::Intersect, 2)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pairing);
criterion_main!(benches);
