//! Criterion benches for the software reference miner (the CPU baseline in
//! spirit of AutoMine/GraphZero).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fingers_graph::gen::{chung_lu_power_law, erdos_renyi, ChungLuConfig};
use fingers_mining::count_benchmark;
use fingers_pattern::benchmarks::Benchmark;

fn bench_miner(c: &mut Criterion) {
    let mut group = c.benchmark_group("miner");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let uniform = erdos_renyi(2_000, 16_000, 1);
    let powerlaw = chung_lu_power_law(&ChungLuConfig::new(2_000, 10_000, 2));
    for bench in Benchmark::ALL {
        group.bench_with_input(
            BenchmarkId::new("uniform", bench.abbrev()),
            &bench,
            |b, &bench| b.iter(|| count_benchmark(&uniform, bench)),
        );
        group.bench_with_input(
            BenchmarkId::new("power-law", bench.abbrev()),
            &bench,
            |b, &bench| b.iter(|| count_benchmark(&powerlaw, bench)),
        );
    }
    group.finish();
}

/// The pattern-aware vs pattern-oblivious paradigm gap (Section 2.2):
/// same counts, very different work.
fn bench_paradigms(c: &mut Criterion) {
    use fingers_mining::count_plan;
    use fingers_mining::oblivious::count_embeddings_oblivious;
    use fingers_pattern::{ExecutionPlan, Induced, Pattern};

    let g = erdos_renyi(400, 1600, 4);
    let mut group = c.benchmark_group("paradigm-gap");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for p in [Pattern::triangle(), Pattern::tailed_triangle()] {
        let plan = ExecutionPlan::compile(&p, Induced::Vertex);
        group.bench_with_input(
            BenchmarkId::new("pattern-aware", p.name()),
            &plan,
            |b, plan| b.iter(|| count_plan(&g, plan)),
        );
        group.bench_with_input(
            BenchmarkId::new("pattern-oblivious", p.name()),
            &p,
            |b, p| b.iter(|| count_embeddings_oblivious(&g, p)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_miner, bench_paradigms);
criterion_main!(benches);
