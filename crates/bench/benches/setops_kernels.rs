//! Criterion benches for the set-operation kernels: whole-list merges vs
//! the full segmented pipeline (the per-op machinery behind every table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::collections::BTreeSet;

use fingers_setops::{merge, segmented, Elem, SegmentedConfig, SetOpKind};

fn sorted_set(len: usize, max: u32, seed: u64) -> Vec<Elem> {
    use rand::Rng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut s = BTreeSet::new();
    while s.len() < len {
        s.insert(rng.gen_range(0..max));
    }
    s.into_iter().collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("setops");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for &(short_len, long_len) in &[(24usize, 240usize), (96, 960), (480, 4800)] {
        let short = sorted_set(short_len, long_len as u32 * 4, 1);
        let long = sorted_set(long_len, long_len as u32 * 4, 2);
        let cfg = SegmentedConfig::default();
        for kind in SetOpKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("merge-{kind}"), format!("{short_len}x{long_len}")),
                &(&short, &long),
                |b, (s, l)| b.iter(|| merge::apply(kind, s, l)),
            );
            group.bench_with_input(
                BenchmarkId::new(
                    format!("segmented-{kind}"),
                    format!("{short_len}x{long_len}"),
                ),
                &(&short, &long),
                |b, (s, l)| b.iter(|| segmented::execute(kind, s, l, &cfg)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
