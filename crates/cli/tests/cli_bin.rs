//! End-to-end tests of the `fingers-mine` binary itself.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fingers-mine"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn mines_a_generated_graph() {
    let (ok, stdout, _) = run(&[
        "--graph",
        "gen:er:80:240:7",
        "--pattern",
        "tc",
        "--engine",
        "fingers",
    ]);
    assert!(ok);
    assert!(stdout.contains("engine: FINGERS"));
    assert!(stdout.contains("embeddings"));
    assert!(stdout.contains("simulated cycles"));
}

#[test]
fn mines_an_edge_list_file() {
    let path = std::env::temp_dir().join("fingers_cli_test_graph.txt");
    std::fs::write(&path, "# K4\n0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n").expect("write graph");
    let (ok, stdout, _) = run(&[
        "--graph",
        path.to_str().expect("utf-8 path"),
        "--pattern",
        "tc",
        "--pattern",
        "4cl",
    ]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("3-clique: 4 embeddings"));
    assert!(stdout.contains("4-clique: 1 embeddings"));
}

#[test]
fn bad_arguments_fail_with_usage() {
    let (ok, _, stderr) = run(&["--pattern", "tc"]);
    assert!(!ok);
    assert!(stderr.contains("--graph is required"));
    assert!(stderr.contains("usage: fingers-mine"));
}

#[test]
fn missing_file_reports_error() {
    let (ok, _, stderr) = run(&["--graph", "/no/such/file.txt", "--pattern", "tc"]);
    assert!(!ok);
    assert!(stderr.contains("error:"));
}
