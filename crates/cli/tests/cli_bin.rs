//! End-to-end tests of the `fingers-mine` binary itself, including the
//! per-failure-mode exit codes and the `--sanitize`/`--strict` ingestion
//! flags.

use std::process::Command;

fn run(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fingers-mine"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("fingers-cli-bin-{name}-{}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp edge list");
    path
}

#[test]
fn mines_a_generated_graph() {
    let (code, stdout, _) = run(&[
        "--graph",
        "gen:er:80:240:7",
        "--pattern",
        "tc",
        "--engine",
        "fingers",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("engine: FINGERS"));
    assert!(stdout.contains("embeddings"));
    assert!(stdout.contains("simulated cycles"));
}

#[test]
fn mines_an_edge_list_file() {
    let path = write_temp("k4", "# K4\n0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n");
    let (code, stdout, _) = run(&[
        "--graph",
        path.to_str().expect("utf-8 path"),
        "--pattern",
        "tc",
        "--pattern",
        "4cl",
    ]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(0));
    assert!(stdout.contains("3-clique: 4 embeddings"));
    assert!(stdout.contains("4-clique: 1 embeddings"));
}

#[test]
fn bad_arguments_exit_2_with_usage() {
    let (code, _, stderr) = run(&["--pattern", "tc"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--graph is required"));
    assert!(stderr.contains("usage: fingers-mine"));
}

#[test]
fn missing_file_exits_3() {
    let (code, _, stderr) = run(&["--graph", "/no/such/file.txt", "--pattern", "tc"]);
    assert_eq!(code, Some(3));
    assert!(stderr.contains("error: cannot load graph"));
}

#[test]
fn malformed_file_exits_3_with_line_number() {
    let path = write_temp("malformed", "0 1\n1 notanumber\n");
    let (code, _, stderr) = run(&["--graph", path.to_str().unwrap(), "--pattern", "tc"]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(3));
    assert!(stderr.contains("line 2"), "stderr: {stderr}");
}

#[test]
fn sanitize_prints_repair_report_and_exits_0() {
    let path = write_temp("sanitize", "0 1\n1 2\n0 2\n2 2\n1 0\n");
    let (code, stdout, _) = run(&[
        "--graph",
        path.to_str().unwrap(),
        "--pattern",
        "tc",
        "--sanitize",
    ]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(0));
    assert!(stdout.contains("sanitize: kept"), "stdout: {stdout}");
    assert!(
        stdout.contains("3-clique: 1 embeddings"),
        "stdout: {stdout}"
    );
}

#[test]
fn strict_refuses_dirty_input_with_exit_4() {
    let path = write_temp("strict", "0 1\n1 1\n1 2\n");
    let (code, _, stderr) = run(&[
        "--graph",
        path.to_str().unwrap(),
        "--pattern",
        "tc",
        "--strict",
    ]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(4));
    assert!(stderr.contains("--strict refused dirty input"), "{stderr}");
}

#[test]
fn verify_plan_clean_exits_0() {
    let (code, stdout, _) = run(&["verify-plan", "tc"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("sound"), "stdout: {stdout}");
    assert!(stdout.contains("plan for"), "stdout: {stdout}");
}

#[test]
fn verify_plan_mutated_exits_7() {
    let (code, _, stderr) = run(&["verify-plan", "tt", "--mutate", "drop-init"]);
    assert_eq!(code, Some(7));
    assert!(stderr.contains("missing-materialization"), "{stderr}");
}

#[test]
fn verify_plan_dropped_restriction_exits_7() {
    let (code, _, stderr) = run(&["verify-plan", "tc", "--mutate", "drop-restriction"]);
    assert_eq!(code, Some(7));
    assert!(stderr.contains("unbroken-automorphism"), "{stderr}");
}

#[test]
fn verify_plan_unknown_pattern_exits_2() {
    let (code, _, stderr) = run(&["verify-plan", "zzz"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage: fingers-mine"), "{stderr}");
}

#[test]
fn verify_plan_inapplicable_mutation_exits_6() {
    let (code, _, stderr) = run(&["verify-plan", "tc", "--mutate", "drop-subtract"]);
    assert_eq!(code, Some(6));
    assert!(stderr.contains("drop-subtract"), "{stderr}");
}

#[test]
fn unsupported_combination_exits_6() {
    let (code, _, stderr) = run(&[
        "--graph",
        "gen:er:20:40:1",
        "--pattern",
        "tc",
        "--engine",
        "oblivious",
        "--edge-induced",
    ]);
    assert_eq!(code, Some(6));
    assert!(stderr.contains("vertex-induced"), "{stderr}");
}
