//! `fingers-mine`: command-line graph miner over the FINGERS reproduction.
//!
//! Exit codes (see [`fingers_cli::CliError::exit_code`]): 0 success,
//! 2 usage error, 3 graph load failure, 4 dirty input refused by
//! `--strict`, 5 mining worker panic, 6 unsupported flag combination,
//! 7 plan failed static verification (`verify-plan`).

use std::process::ExitCode;

use fingers_cli::{run, run_verify_plan, CliError, Command};

fn main() -> ExitCode {
    let command = match Command::parse(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(CliError::from(e).exit_code());
        }
    };
    match command {
        Command::Mine(options) => match run(&options) {
            Ok(outcome) => {
                if let Some(report) = &outcome.sanitize {
                    println!("{}", report.summary());
                }
                println!("engine: {}", outcome.engine);
                for (pattern, count) in options.patterns.iter().zip(&outcome.counts) {
                    println!("{pattern}: {count} embeddings");
                }
                if let Some(cycles) = outcome.cycles {
                    println!("simulated cycles: {cycles}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(e.exit_code())
            }
        },
        Command::VerifyPlan(options) => match run_verify_plan(&options) {
            Ok(outcome) => {
                print!("{}", outcome.plan_text);
                if let Some(name) = outcome.mutated {
                    println!("applied mutation: {name}");
                }
                println!("{}", outcome.report);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(e.exit_code())
            }
        },
    }
}
