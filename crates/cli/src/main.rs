//! `fingers-mine`: command-line graph miner over the FINGERS reproduction.
//!
//! Exit codes (see [`fingers_cli::CliError::exit_code`]): 0 success,
//! 2 usage error or bad request, 3 graph load failure or unknown graph,
//! 4 dirty input refused by `--strict`, 5 mining worker panic,
//! 6 unsupported flag combination, 7 plan failed static verification,
//! 8 daemon overloaded, 9 query cancelled or past deadline, 10 daemon
//! unreachable.

use std::process::ExitCode;
use std::time::Instant;

use fingers_cli::{json_report, run, run_client, run_serve, run_verify_plan, CliError, Command};

fn main() -> ExitCode {
    let command = match Command::parse(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(CliError::from(e).exit_code());
        }
    };
    match command {
        Command::Mine(options) => {
            let start = Instant::now();
            match run(&options) {
                Ok(outcome) => {
                    if options.json {
                        println!(
                            "{}",
                            json_report(&options, &outcome, start.elapsed().as_secs_f64() * 1e3)
                        );
                        return ExitCode::SUCCESS;
                    }
                    if let Some(report) = &outcome.sanitize {
                        println!("{}", report.summary());
                    }
                    println!("engine: {}", outcome.engine);
                    for (pattern, count) in options.patterns.iter().zip(&outcome.counts) {
                        println!("{pattern}: {count} embeddings");
                    }
                    if let Some(cycles) = outcome.cycles {
                        println!("simulated cycles: {cycles}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(e.exit_code())
                }
            }
        }
        Command::VerifyPlan(options) => match run_verify_plan(&options) {
            Ok(outcome) => {
                print!("{}", outcome.plan_text);
                if let Some(name) = outcome.mutated {
                    println!("applied mutation: {name}");
                }
                println!("{}", outcome.report);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(e.exit_code())
            }
        },
        Command::Serve(options) => match run_serve(&options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(e.exit_code())
            }
        },
        Command::Client(options) => match run_client(&options) {
            Ok((line, code)) => {
                println!("{line}");
                ExitCode::from(code)
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(e.exit_code())
            }
        },
    }
}
