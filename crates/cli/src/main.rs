//! `fingers-mine`: command-line graph miner over the FINGERS reproduction.

use std::process::ExitCode;

use fingers_cli::{run, Options};

fn main() -> ExitCode {
    let options = match Options::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(outcome) => {
            println!("engine: {}", outcome.engine);
            for (pattern, count) in options.patterns.iter().zip(&outcome.counts) {
                println!("{pattern}: {count} embeddings");
            }
            if let Some(cycles) = outcome.cycles {
                println!("simulated cycles: {cycles}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
