//! Library backing the `fingers-mine` command-line miner.
//!
//! Everything is testable as a library: argument parsing
//! ([`Options::parse`]), graph-source resolution ([`GraphSource`]), and the
//! mining run itself ([`run`]) — `main` is a thin wrapper.
//!
//! ```text
//! fingers-mine --graph gen:er:1000:5000:7 --pattern tt --engine fingers --pes 4
//! fingers-mine --graph dataset:Mi --pattern 0-1,1-2,0-2 --engine flexminer
//! fingers-mine --graph edges.txt --pattern 4cl --engine software --edge-induced
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use fingers_core::chip::simulate_fingers;
use fingers_core::config::{ChipConfig, PeConfig};
use fingers_flexminer::{simulate_flexminer, FlexMinerChipConfig};
use fingers_graph::datasets::Dataset;
use fingers_graph::sanitize::SanitizeOptions;
use fingers_graph::{reorder, CsrGraph, SanitizeReport};
use fingers_mining::{oblivious, try_count_multi_parallel_with, EngineConfig, EngineError};
use fingers_pattern::{parse_pattern, ExecutionPlan, Induced, MultiPlan, Pattern};
use fingers_verify::{PlanMutation, VerifyReport};

/// Mining engine selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Plan-driven software DFS (the reference miner).
    #[default]
    Software,
    /// The FINGERS accelerator simulation.
    Fingers,
    /// The FlexMiner baseline accelerator simulation.
    Flexminer,
    /// Pattern-oblivious enumeration (ESU + isomorphism checks).
    Oblivious,
}

/// Where the input graph comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSource {
    /// A whitespace edge-list file path.
    File(String),
    /// One of the Table 1 stand-ins, by abbreviation (`dataset:Mi`).
    Dataset(Dataset),
    /// `gen:er:<n>:<m>:<seed>` — Erdős–Rényi.
    ErdosRenyi {
        /// Vertices.
        n: usize,
        /// Edges.
        m: usize,
        /// Seed.
        seed: u64,
    },
    /// `gen:pl:<n>:<m>:<seed>` — Chung–Lu power law.
    PowerLaw {
        /// Vertices.
        n: usize,
        /// Edges.
        m: usize,
        /// Seed.
        seed: u64,
    },
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// The input graph.
    pub graph: GraphSource,
    /// Patterns to mine (multi-pattern when more than one).
    pub patterns: Vec<Pattern>,
    /// Engine.
    pub engine: Engine,
    /// PE count for accelerator engines.
    pub pes: usize,
    /// IU count per FINGERS PE.
    pub ius: usize,
    /// Edge-induced instead of vertex-induced semantics.
    pub edge_induced: bool,
    /// Relabel the graph by descending degree before mining.
    pub reorder_degree: bool,
    /// Use the cost-model order optimizer instead of the greedy order.
    pub optimize_order: bool,
    /// Worker threads for the software and oblivious engines.
    pub threads: usize,
    /// Hub budget for the software engine's dense-bitmap kernel tier
    /// (0 disables the tier).
    pub bitmap_hubs: usize,
    /// Fuse terminal-counting plan levels into count kernels (default on;
    /// `--no-count-fusion` reinstates the materializing baseline).
    pub count_fusion: bool,
    /// Let the adaptive dispatch pick the SIMD block-compare kernels
    /// (default on; `--no-simd` reinstates the scalar tiers).
    pub simd: bool,
    /// Work-stealing task scheduling for parallel mining (default on;
    /// `--no-steal` reinstates the shared-cursor baseline).
    pub work_stealing: bool,
    /// Scratch-memory budget for the run, in bytes; exceeding it aborts
    /// with [`CliError::MemBudget`] (exit 11) and discards every partial
    /// count, same contract as cancellation.
    pub query_mem_budget: Option<u64>,
    /// Repair dirty edge-list inputs (self loops, duplicates, unsorted or
    /// reversed edges, trailing tokens) and report what was repaired.
    pub sanitize: bool,
    /// Refuse inputs that would need any repair (exit code 4).
    pub strict: bool,
    /// Emit the machine-readable count report (the daemon's response
    /// schema) on stdout instead of the human-readable lines.
    pub json: bool,
}

/// Error for invalid command lines.
#[derive(Debug)]
pub struct UsageError(String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n\n{}", self.0, USAGE)
    }
}

impl Error for UsageError {}

/// A CLI failure, mapped to a distinct nonzero process exit code so
/// scripts can tell the failure modes apart (see [`CliError::exit_code`]).
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Invalid command line (exit 2).
    Usage(UsageError),
    /// The input graph could not be opened, parsed, or built (exit 3).
    GraphLoad(String),
    /// `--strict` refused an input that needed repairs (exit 4).
    DirtyInput(SanitizeReport),
    /// A mining worker panicked; the run was discarded (exit 5).
    Engine(EngineError),
    /// The requested flag combination is not supported (exit 6).
    Unsupported(String),
    /// `verify-plan` found the plan unsound (exit 7).
    InvalidPlan(VerifyReport),
    /// The daemon's admission control rejected the query (exit 8).
    Overloaded(String),
    /// The query was cancelled or exceeded its deadline (exit 9).
    Cancelled(String),
    /// The daemon could not be reached, or the connection broke (exit 10).
    Transport(String),
    /// The query blew its scratch-memory budget; the run was discarded
    /// all-or-nothing (exit 11).
    MemBudget(EngineError),
}

impl CliError {
    /// The process exit code for this failure: 2 usage, 3 graph load,
    /// 4 dirty input refused, 5 engine panic, 6 unsupported combination,
    /// 7 plan failed static verification, 8 daemon overloaded, 9 query
    /// cancelled or past deadline, 10 daemon unreachable, 11 memory
    /// budget exceeded.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::GraphLoad(_) => 3,
            CliError::DirtyInput(_) => 4,
            CliError::Engine(_) => 5,
            CliError::Unsupported(_) => 6,
            CliError::InvalidPlan(_) => 7,
            CliError::Overloaded(_) => 8,
            CliError::Cancelled(_) => 9,
            CliError::Transport(_) => 10,
            CliError::MemBudget(_) => 11,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(e) => write!(f, "{e}"),
            CliError::GraphLoad(msg) => write!(f, "cannot load graph: {msg}"),
            CliError::DirtyInput(report) => {
                write!(f, "--strict refused dirty input: {}", report.summary())
            }
            CliError::Engine(e) => write!(f, "{e}"),
            CliError::Unsupported(msg) => write!(f, "{msg}"),
            CliError::InvalidPlan(report) => write!(f, "{report}"),
            CliError::Overloaded(msg) => write!(f, "{msg}"),
            CliError::Cancelled(msg) => write!(f, "{msg}"),
            CliError::Transport(msg) => write!(f, "{msg}"),
            CliError::MemBudget(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Usage(e) => Some(e),
            CliError::Engine(e) | CliError::MemBudget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UsageError> for CliError {
    fn from(e: UsageError) -> Self {
        CliError::Usage(e)
    }
}

/// The `--help` text.
pub const USAGE: &str = "\
usage: fingers-mine --graph <src> --pattern <spec> [--pattern <spec>…] [options]
       fingers-mine verify-plan <spec> [--edge-induced] [--optimize-order]
                    [--mutate <name>]
       fingers-mine serve --socket <path> --load <name>=<src> [--load …]
                    [--workers <n>] [--queue-depth <n>] [--max-threads <n>]
                    [--default-timeout-ms <n>] [--bitmap-hubs <k>] [--no-bitmap]
                    [--no-simd] [--no-steal] [--mem-budget <bytes>]
                    [--query-mem-budget <bytes>]
       fingers-mine client --socket <path> [--retries <n>]
                    [--retry-base-ms <n>] [--retry-seed <n>] <request-json-line>

graph sources:
  <path>                whitespace edge-list file (SNAP format)
  dataset:<As|Mi|Yo|Pa|Lj|Or>   Table 1 stand-in
  gen:er:<n>:<m>:<seed>         Erdős–Rényi
  gen:pl:<n>:<m>:<seed>         Chung–Lu power law

patterns: names (tc, 4cl, 5cl, tt, cyc, dia, wedge, house, bull, gem,
  butterfly, k-clique, k-path, k-star) or edge lists like 0-1,1-2,0-2

options:
  --engine <software|fingers|flexminer|oblivious>   (default software)
  --pes <n>            PEs for accelerator engines (default 1)
  --ius <n>            IUs per FINGERS PE (default 24)
  --threads <n>        worker threads for software/oblivious engines
                       (default: available hardware parallelism)
  --bitmap-hubs <k>    densify the k highest-degree adjacencies for the
                       software engine's bitmap kernel tier (default 1024)
  --no-bitmap          disable the bitmap tier (same as --bitmap-hubs 0);
                       counts are identical either way
  --no-count-fusion    materialize terminal candidate sets instead of
                       fused counting; counts are identical either way
  --no-simd            keep set operations on the scalar kernel tiers
                       (the SIMD tier also auto-disables on CPUs without
                       it); counts are identical either way
  --no-steal           claim parallel tasks from a shared cursor instead
                       of work-stealing deques; counts are identical
                       either way
  --query-mem-budget <bytes>  abort the run (exit 11) if its scratch
                       memory exceeds this many bytes; the partial count
                       is discarded all-or-nothing, like a cancellation
  --edge-induced       edge-induced semantics (default vertex-induced)
  --reorder-degree     relabel graph by descending degree first
  --optimize-order     search all connected matching orders by cost model
  --sanitize           repair dirty edge-list files (drop self loops,
                       duplicates, out-of-range IDs; tolerate trailing
                       tokens) and print a repair report
  --strict             refuse edge-list files that would need any repair
  --json               print one machine-readable report line (the same
                       schema the daemon's count responses use) instead
                       of the human-readable output
  --help               print this text

verify-plan: compile <spec>, run the static plan verifier, and print the
  plan with its diagnostics. --mutate <name> applies a named corruption
  from the fingers-verify mutation corpus first (to see the verifier
  catch it); pass --mutate list to list the names.

serve: run the mining daemon on a Unix socket. Each --load registers a
  graph (same <src> grammar as --graph) under a name clients query by;
  graphs are loaded once and shared across all queries. --workers sizes
  the query pool, --queue-depth bounds admitted-but-waiting queries
  (a full queue rejects with an overloaded response), --max-threads caps
  any single query's thread budget, and --default-timeout-ms applies a
  deadline to queries that do not carry their own. --mem-budget caps the
  daemon's global scratch gauge (crossing 70/85/95 % of it walks the
  degradation ladder: shrink caches, clamp threads, shed queued work)
  and --query-mem-budget caps any single query's scratch bytes
  (exceeding it fails that query typed, exit 11 at the client). SIGINT
  and SIGTERM shut the daemon down cleanly: connections are closed, the
  pool drained, and the socket file removed.

client: send one newline-delimited JSON request to a running daemon and
  print the one response line. The exit code reflects the response:
  ok 0, and typed failures as listed below. Request ops: count,
  motif-census, verify-plan, stats, ping, cancel, shutdown.
  --retries retries overloaded responses under deterministic seeded
  exponential backoff (--retry-base-ms, --retry-seed), honoring the
  daemon's retry_after_ms hint when a shed attaches one.

exit codes: 0 success, 2 usage error / bad request, 3 graph load failure
  or unknown graph, 4 dirty input refused by --strict, 5 mining worker
  panic, 6 unsupported flag combination, 7 plan failed static
  verification, 8 daemon overloaded, 9 query cancelled or past deadline,
  10 daemon unreachable, 11 query memory budget exceeded";

impl Options {
    /// Parses a command line (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`UsageError`] on unknown flags, missing values, malformed
    /// sources/patterns, or missing required arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, UsageError> {
        let mut graph = None;
        let mut patterns = Vec::new();
        let mut engine = Engine::Software;
        let mut pes = 1usize;
        let mut ius = 24usize;
        let mut edge_induced = false;
        let mut reorder_degree = false;
        let mut optimize_order = false;
        let mut threads = default_threads();
        let mut bitmap_hubs = fingers_mining::config::DEFAULT_BITMAP_HUBS;
        let mut count_fusion = true;
        let mut simd = true;
        let mut work_stealing = true;
        let mut query_mem_budget = None;
        let mut sanitize = false;
        let mut strict = false;
        let mut json = false;

        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value_for = |name: &str| {
                it.next()
                    .ok_or_else(|| UsageError(format!("{name} requires a value")))
            };
            match arg.as_str() {
                "--graph" => graph = Some(parse_graph_source(&value_for("--graph")?)?),
                "--pattern" => {
                    let spec = value_for("--pattern")?;
                    let p = parse_pattern(&spec)
                        .map_err(|e| UsageError(format!("--pattern {spec:?}: {e}")))?;
                    patterns.push(p);
                }
                "--engine" => {
                    engine = match value_for("--engine")?.as_str() {
                        "software" => Engine::Software,
                        "fingers" => Engine::Fingers,
                        "flexminer" => Engine::Flexminer,
                        "oblivious" => Engine::Oblivious,
                        other => return Err(UsageError(format!("unknown engine {other:?}"))),
                    }
                }
                "--pes" => {
                    pes = value_for("--pes")?
                        .parse()
                        .map_err(|_| UsageError("--pes must be a positive integer".into()))?
                }
                "--ius" => {
                    ius = value_for("--ius")?
                        .parse()
                        .map_err(|_| UsageError("--ius must be a positive integer".into()))?
                }
                "--threads" => {
                    threads = value_for("--threads")?
                        .parse()
                        .map_err(|_| UsageError("--threads must be a positive integer".into()))?
                }
                "--bitmap-hubs" => {
                    bitmap_hubs = value_for("--bitmap-hubs")?
                        .parse()
                        .map_err(|_| UsageError("--bitmap-hubs must be an integer".into()))?
                }
                "--no-bitmap" => bitmap_hubs = 0,
                "--no-count-fusion" => count_fusion = false,
                "--no-simd" => simd = false,
                "--no-steal" => work_stealing = false,
                "--query-mem-budget" => {
                    query_mem_budget = Some(
                        value_for("--query-mem-budget")?
                            .parse::<u64>()
                            .map_err(|_| {
                                UsageError("--query-mem-budget must be an integer".into())
                            })?,
                    )
                }
                "--sanitize" => sanitize = true,
                "--strict" => strict = true,
                "--json" => json = true,
                "--edge-induced" => edge_induced = true,
                "--reorder-degree" => reorder_degree = true,
                "--optimize-order" => optimize_order = true,
                "--help" | "-h" => return Err(UsageError("help requested".into())),
                other => return Err(UsageError(format!("unknown argument {other:?}"))),
            }
        }
        let graph = graph.ok_or_else(|| UsageError("--graph is required".into()))?;
        if patterns.is_empty() {
            return Err(UsageError("at least one --pattern is required".into()));
        }
        if pes == 0 || ius == 0 {
            return Err(UsageError("--pes and --ius must be positive".into()));
        }
        if threads == 0 {
            return Err(UsageError("--threads must be positive".into()));
        }
        if sanitize && strict {
            return Err(UsageError(
                "--sanitize and --strict are mutually exclusive".into(),
            ));
        }
        Ok(Options {
            graph,
            patterns,
            engine,
            pes,
            ius,
            edge_induced,
            reorder_degree,
            optimize_order,
            threads,
            bitmap_hubs,
            count_fusion,
            simd,
            work_stealing,
            query_mem_budget,
            sanitize,
            strict,
            json,
        })
    }
}

/// Options for the `verify-plan` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyPlanOptions {
    /// The pattern whose compiled plan is verified.
    pub pattern: Pattern,
    /// Edge-induced instead of vertex-induced semantics.
    pub edge_induced: bool,
    /// Compile with the cost-model order optimizer (representative graph
    /// parameters) instead of the greedy connected order.
    pub optimize_order: bool,
    /// Apply this named corruption from the mutation corpus before
    /// verifying, to demonstrate the failure path.
    pub mutate: Option<PlanMutation>,
}

/// Options for the `serve` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Unix-socket path to bind.
    pub socket: String,
    /// `(name, spec)` pairs from repeated `--load name=spec` flags.
    pub graphs: Vec<(String, String)>,
    /// Worker pool size (`None` = scheduler default).
    pub workers: Option<usize>,
    /// Admission queue depth (`None` = scheduler default).
    pub queue_depth: Option<usize>,
    /// Per-query thread-budget cap (`None` = scheduler default).
    pub max_threads: Option<usize>,
    /// Deadline for queries without their own, in milliseconds.
    pub default_timeout_ms: Option<u64>,
    /// Hub budget for the bitmap kernel tier (0 disables it).
    pub bitmap_hubs: usize,
    /// SIMD kernel tier for query execution (`--no-simd` disables).
    pub simd: bool,
    /// Work-stealing task scheduling inside each query's thread budget
    /// (`--no-steal` disables).
    pub work_stealing: bool,
    /// Global scratch-memory budget, in bytes: the degradation ladder's
    /// pressure thresholds are percentages of this (`None` = ungoverned).
    pub mem_budget: Option<u64>,
    /// Per-query scratch-memory budget, in bytes; a query exceeding it
    /// fails typed with a `mem-budget` response (client exit 11).
    pub query_mem_budget: Option<u64>,
}

/// Options for the `client` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOptions {
    /// Unix-socket path of the daemon.
    pub socket: String,
    /// The raw request line to send (one JSON object).
    pub request: String,
    /// Retries for `overloaded` responses (0 = fail fast).
    pub retries: u32,
    /// Base delay of the exponential backoff schedule, in milliseconds.
    pub retry_base_ms: u64,
    /// Seed of the backoff jitter stream (same seed → same delays).
    pub retry_seed: u64,
}

/// A parsed command line: a mining run, a plan verification, the service
/// daemon, or a one-shot service client.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// The default mining command (`--graph … --pattern …`).
    Mine(Options),
    /// `verify-plan <spec> [--edge-induced] [--optimize-order] [--mutate <name>]`.
    VerifyPlan(VerifyPlanOptions),
    /// `serve --socket <path> --load <name>=<src> …`.
    Serve(ServeOptions),
    /// `client --socket <path> <request-json-line>`.
    Client(ClientOptions),
}

impl Command {
    /// Parses a command line (without the program name): a leading
    /// `verify-plan`, `serve`, or `client` selects that subcommand,
    /// anything else is the mining command.
    ///
    /// # Errors
    ///
    /// Returns [`UsageError`] under the same conditions as
    /// [`Options::parse`], plus subcommand-specific ones (missing or
    /// repeated pattern spec, unknown mutation name, missing socket,
    /// malformed `--load`).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Command, UsageError> {
        let mut it = args.into_iter().peekable();
        match it.peek().map(String::as_str) {
            Some("serve") => {
                it.next();
                return Ok(Command::Serve(parse_serve(it)?));
            }
            Some("client") => {
                it.next();
                return Ok(Command::Client(parse_client(it)?));
            }
            Some("verify-plan") => {}
            _ => return Ok(Command::Mine(Options::parse(it)?)),
        }
        it.next();

        let mut spec: Option<String> = None;
        let mut edge_induced = false;
        let mut optimize_order = false;
        let mut mutate = None;
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--edge-induced" => edge_induced = true,
                "--optimize-order" => optimize_order = true,
                "--mutate" => {
                    let name = it
                        .next()
                        .ok_or_else(|| UsageError("--mutate requires a value".into()))?;
                    if name == "list" {
                        let names: Vec<&str> = PlanMutation::ALL.iter().map(|m| m.name()).collect();
                        return Err(UsageError(format!(
                            "available mutations: {}",
                            names.join(", ")
                        )));
                    }
                    mutate = Some(PlanMutation::from_name(&name).ok_or_else(|| {
                        UsageError(format!("unknown mutation {name:?} (try --mutate list)"))
                    })?);
                }
                "--help" | "-h" => return Err(UsageError("help requested".into())),
                other if other.starts_with('-') => {
                    return Err(UsageError(format!("unknown argument {other:?}")))
                }
                _ if spec.is_none() => spec = Some(arg),
                other => {
                    return Err(UsageError(format!(
                        "verify-plan takes one pattern spec, got extra {other:?}"
                    )))
                }
            }
        }
        let spec = spec.ok_or_else(|| UsageError("verify-plan requires a pattern spec".into()))?;
        let pattern =
            parse_pattern(&spec).map_err(|e| UsageError(format!("verify-plan {spec:?}: {e}")))?;
        Ok(Command::VerifyPlan(VerifyPlanOptions {
            pattern,
            edge_induced,
            optimize_order,
            mutate,
        }))
    }
}

fn parse_serve<I: Iterator<Item = String>>(mut it: I) -> Result<ServeOptions, UsageError> {
    let mut socket = None;
    let mut graphs = Vec::new();
    let mut workers = None;
    let mut queue_depth = None;
    let mut max_threads = None;
    let mut default_timeout_ms = None;
    let mut bitmap_hubs = fingers_mining::config::DEFAULT_BITMAP_HUBS;
    let mut simd = true;
    let mut work_stealing = true;
    let mut mem_budget = None;
    let mut query_mem_budget = None;
    while let Some(arg) = it.next() {
        let mut value_for = |name: &str| {
            it.next()
                .ok_or_else(|| UsageError(format!("{name} requires a value")))
        };
        let parse_pos = |s: String, name: &str| {
            s.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| UsageError(format!("{name} must be a positive integer")))
        };
        match arg.as_str() {
            "--socket" => socket = Some(value_for("--socket")?),
            "--load" => {
                let pair = value_for("--load")?;
                let (name, spec) = pair.split_once('=').ok_or_else(|| {
                    UsageError(format!("--load must be <name>=<src>, got {pair:?}"))
                })?;
                if name.is_empty() || spec.is_empty() {
                    return Err(UsageError(format!(
                        "--load needs a nonempty name and source in {pair:?}"
                    )));
                }
                graphs.push((name.to_owned(), spec.to_owned()));
            }
            "--workers" => workers = Some(parse_pos(value_for("--workers")?, "--workers")?),
            "--queue-depth" => {
                queue_depth = Some(parse_pos(value_for("--queue-depth")?, "--queue-depth")?)
            }
            "--max-threads" => {
                max_threads = Some(parse_pos(value_for("--max-threads")?, "--max-threads")?)
            }
            "--default-timeout-ms" => {
                default_timeout_ms = Some(
                    value_for("--default-timeout-ms")?
                        .parse::<u64>()
                        .map_err(|_| {
                            UsageError("--default-timeout-ms must be an integer".into())
                        })?,
                )
            }
            "--bitmap-hubs" => {
                bitmap_hubs = value_for("--bitmap-hubs")?
                    .parse()
                    .map_err(|_| UsageError("--bitmap-hubs must be an integer".into()))?
            }
            "--no-bitmap" => bitmap_hubs = 0,
            "--no-simd" => simd = false,
            "--no-steal" => work_stealing = false,
            "--mem-budget" => {
                mem_budget = Some(
                    value_for("--mem-budget")?
                        .parse::<u64>()
                        .map_err(|_| UsageError("--mem-budget must be an integer".into()))?,
                )
            }
            "--query-mem-budget" => {
                query_mem_budget = Some(
                    value_for("--query-mem-budget")?
                        .parse::<u64>()
                        .map_err(|_| UsageError("--query-mem-budget must be an integer".into()))?,
                )
            }
            "--help" | "-h" => return Err(UsageError("help requested".into())),
            other => return Err(UsageError(format!("unknown serve argument {other:?}"))),
        }
    }
    let socket = socket.ok_or_else(|| UsageError("serve requires --socket".into()))?;
    if graphs.is_empty() {
        return Err(UsageError(
            "serve requires at least one --load <name>=<src>".into(),
        ));
    }
    Ok(ServeOptions {
        socket,
        graphs,
        workers,
        queue_depth,
        max_threads,
        default_timeout_ms,
        bitmap_hubs,
        simd,
        work_stealing,
        mem_budget,
        query_mem_budget,
    })
}

fn parse_client<I: Iterator<Item = String>>(mut it: I) -> Result<ClientOptions, UsageError> {
    let mut socket = None;
    let mut request = None;
    let mut retries = 0u32;
    let mut retry_base_ms = fingers_server::RetryPolicy::default().base_ms;
    let mut retry_seed = 0u64;
    while let Some(arg) = it.next() {
        let mut value_for = |name: &str| {
            it.next()
                .ok_or_else(|| UsageError(format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--socket" => socket = Some(value_for("--socket")?),
            "--retries" => {
                retries = value_for("--retries")?
                    .parse()
                    .map_err(|_| UsageError("--retries must be an integer".into()))?
            }
            "--retry-base-ms" => {
                retry_base_ms = value_for("--retry-base-ms")?
                    .parse()
                    .map_err(|_| UsageError("--retry-base-ms must be an integer".into()))?
            }
            "--retry-seed" => {
                retry_seed = value_for("--retry-seed")?
                    .parse()
                    .map_err(|_| UsageError("--retry-seed must be an integer".into()))?
            }
            "--help" | "-h" => return Err(UsageError("help requested".into())),
            other if other.starts_with("--") => {
                return Err(UsageError(format!("unknown client argument {other:?}")))
            }
            _ if request.is_none() => request = Some(arg),
            other => {
                return Err(UsageError(format!(
                    "client takes one request line, got extra {other:?}"
                )))
            }
        }
    }
    Ok(ClientOptions {
        socket: socket.ok_or_else(|| UsageError("client requires --socket".into()))?,
        request: request.ok_or_else(|| UsageError("client requires a request JSON line".into()))?,
        retries,
        retry_base_ms,
        retry_seed,
    })
}

/// Starts the mining daemon and blocks until a `shutdown` request, a
/// SIGINT/SIGTERM, or a failure. Prints one `listening on <socket>` line
/// once ready, so scripts can wait for it. A termination signal takes the
/// same orderly path as a protocol `shutdown`: tracked connections are
/// force-closed, the pool drained, and the socket file removed.
///
/// # Errors
///
/// [`CliError::GraphLoad`] when a `--load` spec fails to load, or
/// [`CliError::Transport`] when the socket cannot be bound.
pub fn run_serve(options: &ServeOptions) -> Result<(), CliError> {
    let defaults = fingers_server::SchedulerConfig::default();
    let sched = fingers_server::SchedulerConfig {
        workers: options.workers.unwrap_or(defaults.workers),
        queue_depth: options.queue_depth.unwrap_or(defaults.queue_depth),
        max_threads_per_query: options
            .max_threads
            .unwrap_or(defaults.max_threads_per_query),
        default_timeout: options
            .default_timeout_ms
            .map(std::time::Duration::from_millis),
        mem_budget: options.mem_budget,
        ..defaults
    };
    let engine = EngineConfig {
        bitmap_hubs: options.bitmap_hubs,
        simd: options.simd,
        work_stealing: options.work_stealing,
        query_mem_budget: options.query_mem_budget,
        ..EngineConfig::default()
    };
    let daemon = fingers_server::Daemon::start(fingers_server::DaemonConfig {
        socket: options.socket.clone().into(),
        graphs: options.graphs.clone(),
        engine,
        sched,
    })
    .map_err(|e| {
        if e.starts_with("cannot bind") || e.starts_with("cannot replace") {
            CliError::Transport(e)
        } else {
            CliError::GraphLoad(e)
        }
    })?;
    println!("listening on {}", daemon.socket().display());

    // Latch SIGINT/SIGTERM and poll the flag from a watcher thread: the
    // handler itself may only flip an atomic, so the orderly shutdown
    // (close connections, join pool, unlink socket) runs out here.
    let termination = fingers_server::signals::install_termination_flag();
    let handle = daemon.shutdown_handle();
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let watcher = {
        let done = std::sync::Arc::clone(&done);
        std::thread::spawn(move || {
            // ord: seqcst(one-shot watchdog handshake off the hot path)
            while !done.load(std::sync::atomic::Ordering::SeqCst) {
                // ord: seqcst(one-shot watchdog handshake off the hot path)
                if termination.load(std::sync::atomic::Ordering::SeqCst) {
                    handle.shutdown();
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        })
    };
    daemon.wait();
    // ord: seqcst(one-shot watchdog handshake off the hot path)
    done.store(true, std::sync::atomic::Ordering::SeqCst);
    watcher.join().ok();
    Ok(())
}

/// Sends one request line to a running daemon; returns the response line
/// and the exit code it maps to (0 ok, 2–11 typed failures — the same
/// codes the one-shot commands use). With `--retries`, `overloaded`
/// responses are retried under deterministic seeded exponential backoff,
/// honoring the daemon's `retry_after_ms` hint.
///
/// # Errors
///
/// [`CliError::Transport`] (exit 10) when the daemon cannot be reached
/// or the connection breaks mid-request.
pub fn run_client(options: &ClientOptions) -> Result<(String, u8), CliError> {
    let policy = fingers_server::RetryPolicy {
        retries: options.retries,
        base_ms: options.retry_base_ms,
        seed: options.retry_seed,
    };
    let line = fingers_server::Client::connect(std::path::Path::new(&options.socket))
        .and_then(|mut c| c.request_with_backoff(&options.request, &policy))
        .map_err(CliError::Transport)?;
    let code = match fingers_server::Json::parse(&line) {
        Ok(v) => fingers_server::proto::exit_code_for_response(&v),
        Err(_) => 10,
    };
    Ok((line, code))
}

/// Result of a `verify-plan` run: the (possibly mutated) plan rendered
/// for humans and the verifier's report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyPlanOutcome {
    /// `Display` rendering of the verified plan.
    pub plan_text: String,
    /// The verifier's report (sound, or only warnings).
    pub report: VerifyReport,
    /// Name of the applied mutation, when one was requested.
    pub mutated: Option<&'static str>,
}

/// Compiles the pattern, optionally applies a corpus mutation, and runs
/// the static plan verifier.
///
/// # Errors
///
/// [`CliError::InvalidPlan`] (exit 7) when verification finds an
/// error-severity diagnostic; [`CliError::Unsupported`] (exit 6) when the
/// requested mutation has no site in this plan.
pub fn run_verify_plan(options: &VerifyPlanOptions) -> Result<VerifyPlanOutcome, CliError> {
    let induced = if options.edge_induced {
        Induced::Edge
    } else {
        Induced::Vertex
    };
    let plan = if options.optimize_order {
        // Representative mid-size graph parameters; the order only shifts
        // which sound plan we verify, never its soundness.
        ExecutionPlan::compile_optimized(&options.pattern, induced, 100_000.0, 5e-4)
    } else {
        ExecutionPlan::compile(&options.pattern, induced)
    };
    let (plan, mutated) = match options.mutate {
        None => (plan, None),
        Some(m) => match m.apply(&plan) {
            Some(p) => (p, Some(m.name())),
            None => {
                return Err(CliError::Unsupported(format!(
                    "mutation {} has no site in the {} plan",
                    m.name(),
                    options.pattern
                )))
            }
        },
    };
    let report = fingers_verify::verify(&plan);
    let plan_text = plan.to_string();
    if report.is_sound() {
        Ok(VerifyPlanOutcome {
            plan_text,
            report,
            mutated,
        })
    } else {
        Err(CliError::InvalidPlan(report))
    }
}

/// The `--threads` default: the machine's available hardware parallelism,
/// or 1 when that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn parse_graph_source(spec: &str) -> Result<GraphSource, UsageError> {
    if let Some(abbrev) = spec.strip_prefix("dataset:") {
        let dataset = Dataset::ALL
            .into_iter()
            .find(|d| {
                d.abbrev().eq_ignore_ascii_case(abbrev) || d.name().eq_ignore_ascii_case(abbrev)
            })
            .ok_or_else(|| UsageError(format!("unknown dataset {abbrev:?}")))?;
        return Ok(GraphSource::Dataset(dataset));
    }
    if let Some(rest) = spec.strip_prefix("gen:") {
        let parts: Vec<&str> = rest.split(':').collect();
        if parts.len() != 4 {
            return Err(UsageError(format!(
                "generator spec {spec:?} must be gen:<er|pl>:<n>:<m>:<seed>"
            )));
        }
        let parse_num = |s: &str, what: &str| {
            s.parse::<u64>()
                .map_err(|_| UsageError(format!("bad {what} in {spec:?}")))
        };
        let n = parse_num(parts[1], "vertex count")? as usize;
        let m = parse_num(parts[2], "edge count")? as usize;
        let seed = parse_num(parts[3], "seed")?;
        return match parts[0] {
            "er" => Ok(GraphSource::ErdosRenyi { n, m, seed }),
            "pl" => Ok(GraphSource::PowerLaw { n, m, seed }),
            other => Err(UsageError(format!("unknown generator {other:?}"))),
        };
    }
    Ok(GraphSource::File(spec.to_owned()))
}

impl GraphSource {
    /// Loads/generates the graph.
    ///
    /// # Errors
    ///
    /// I/O and parse errors for file sources.
    pub fn load(&self) -> Result<CsrGraph, Box<dyn Error>> {
        Ok(match self {
            GraphSource::File(path) => {
                let file = std::fs::File::open(path)?;
                fingers_graph::io::read_edge_list(std::io::BufReader::new(file))?
            }
            GraphSource::Dataset(d) => d.load(),
            GraphSource::ErdosRenyi { n, m, seed } => {
                fingers_graph::gen::erdos_renyi(*n, *m, *seed)
            }
            GraphSource::PowerLaw { n, m, seed } => fingers_graph::gen::chung_lu_power_law(
                &fingers_graph::gen::ChungLuConfig::new(*n, *m, *seed),
            ),
        })
    }
}

/// Result of one mining run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Per-pattern embedding counts.
    pub counts: Vec<u64>,
    /// Simulated cycles (accelerator engines only).
    pub cycles: Option<u64>,
    /// Human-readable engine description.
    pub engine: String,
    /// Ingestion repair report (`--sanitize`/`--strict` with a file source).
    pub sanitize: Option<SanitizeReport>,
}

/// Renders a finished run as the machine-readable report line `--json`
/// prints — the *same* schema ([`fingers_server::CountReport`]) the
/// daemon's count responses carry, so scripts can treat one-shot runs and
/// service queries interchangeably.
pub fn json_report(options: &Options, outcome: &RunOutcome, wall_ms: f64) -> String {
    fingers_server::CountReport {
        patterns: options.patterns.iter().map(Pattern::to_string).collect(),
        counts: outcome.counts.clone(),
        total: outcome.counts.iter().sum(),
        engine: outcome.engine.clone(),
        wall_ms,
    }
    .render()
}

/// Loads the graph honoring `--sanitize`/`--strict`.
///
/// Only file sources can be dirty; datasets and generators are clean by
/// construction, so they never produce a report.
fn load_graph(options: &Options) -> Result<(CsrGraph, Option<SanitizeReport>), CliError> {
    match &options.graph {
        GraphSource::File(path) if options.sanitize || options.strict => {
            let file = std::fs::File::open(path)
                .map_err(|e| CliError::GraphLoad(format!("{path}: {e}")))?;
            let (graph, report) = fingers_graph::io::read_edge_list_sanitized(
                std::io::BufReader::new(file),
                &SanitizeOptions::default(),
            )
            .map_err(|e| CliError::GraphLoad(format!("{path}: {e}")))?;
            if options.strict && !report.is_clean() {
                return Err(CliError::DirtyInput(report));
            }
            Ok((graph, Some(report)))
        }
        source => source
            .load()
            .map(|g| (g, None))
            .map_err(|e| CliError::GraphLoad(e.to_string())),
    }
}

/// Executes the configured mining run.
///
/// # Errors
///
/// Returns a [`CliError`] carrying a distinct exit code per failure mode:
/// graph loading/parsing, a `--strict` refusal, a worker panic in the
/// software engine, or an unsupported flag combination.
pub fn run(options: &Options) -> Result<RunOutcome, CliError> {
    let (mut graph, sanitize_report) = load_graph(options)?;
    if options.reorder_degree {
        graph = reorder::by_degree_descending(&graph).graph;
    }
    let induced = if options.edge_induced {
        Induced::Edge
    } else {
        Induced::Vertex
    };

    let multi = if options.optimize_order {
        let n = graph.vertex_count() as f64;
        let density = (graph.avg_degree() / (n - 1.0).max(1.0)).clamp(1e-9, 1.0 - 1e-9);
        let plans: Vec<_> = options
            .patterns
            .iter()
            .map(|p| fingers_pattern::ExecutionPlan::compile_optimized(p, induced, n, density))
            .collect();
        MultiPlan::from_plans("cli", plans)
    } else {
        MultiPlan::new("cli", &options.patterns, induced)
    };

    Ok(match options.engine {
        Engine::Software => {
            let config = EngineConfig {
                bitmap_hubs: options.bitmap_hubs,
                fuse_terminal_counts: options.count_fusion,
                simd: options.simd,
                work_stealing: options.work_stealing,
                query_mem_budget: options.query_mem_budget,
                ..EngineConfig::default()
            };
            let out = try_count_multi_parallel_with(&graph, &multi, options.threads, &config)
                .map_err(|e| {
                    if e.mem_budget().is_some() {
                        CliError::MemBudget(e)
                    } else {
                        CliError::Engine(e)
                    }
                })?;
            let tier = if config.bitmap_enabled() {
                format!("bitmap hubs {}", config.bitmap_hubs)
            } else {
                "bitmap off".to_owned()
            };
            let fusion = if config.fuse_terminal_counts {
                ""
            } else {
                ", count fusion off"
            };
            let simd = if config.simd { "" } else { ", simd off" };
            let steal = if config.work_stealing {
                ""
            } else {
                ", stealing off"
            };
            RunOutcome {
                counts: out.per_pattern,
                cycles: None,
                engine: format!(
                    "software (plan-driven DFS, {} thread{}, {tier}{fusion}{simd}{steal})",
                    options.threads,
                    if options.threads == 1 { "" } else { "s" }
                ),
                sanitize: sanitize_report,
            }
        }
        Engine::Oblivious => {
            if induced == Induced::Edge {
                return Err(CliError::Unsupported(
                    "the oblivious engine supports vertex-induced mining only".into(),
                ));
            }
            let counts = options
                .patterns
                .iter()
                .map(|p| oblivious::count_embeddings_oblivious_parallel(&graph, p, options.threads))
                .collect();
            RunOutcome {
                counts,
                cycles: None,
                engine: format!(
                    "pattern-oblivious (ESU + isomorphism checks, {} thread{})",
                    options.threads,
                    if options.threads == 1 { "" } else { "s" }
                ),
                sanitize: sanitize_report,
            }
        }
        Engine::Fingers => {
            let cfg = ChipConfig {
                num_pes: options.pes,
                pe: PeConfig {
                    num_ius: options.ius,
                    ..PeConfig::default()
                },
                ..ChipConfig::default()
            };
            let r = simulate_fingers(&graph, &multi, &cfg);
            RunOutcome {
                counts: r.embeddings,
                cycles: Some(r.cycles),
                engine: format!("FINGERS ({} PE × {} IU)", options.pes, options.ius),
                sanitize: sanitize_report,
            }
        }
        Engine::Flexminer => {
            let cfg = FlexMinerChipConfig {
                num_pes: options.pes,
                ..FlexMinerChipConfig::default()
            };
            let r = simulate_flexminer(&graph, &multi, &cfg);
            RunOutcome {
                counts: r.embeddings,
                cycles: Some(r.cycles),
                engine: format!("FlexMiner ({} PE)", options.pes),
                sanitize: sanitize_report,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let o = Options::parse(args(
            "--graph gen:er:100:300:7 --pattern tc --pattern cyc --engine fingers --pes 4 --ius 16 --edge-induced",
        ))
        .expect("valid");
        assert_eq!(
            o.graph,
            GraphSource::ErdosRenyi {
                n: 100,
                m: 300,
                seed: 7
            }
        );
        assert_eq!(o.patterns.len(), 2);
        assert_eq!(o.engine, Engine::Fingers);
        assert_eq!(o.pes, 4);
        assert_eq!(o.ius, 16);
        assert!(o.edge_induced);
    }

    #[test]
    fn dataset_and_file_sources() {
        let o = Options::parse(args("--graph dataset:Mi --pattern tc")).expect("valid");
        assert_eq!(o.graph, GraphSource::Dataset(Dataset::Mico));
        let o = Options::parse(args("--graph edges.txt --pattern tc")).expect("valid");
        assert_eq!(o.graph, GraphSource::File("edges.txt".into()));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Options::parse(args("--pattern tc")).is_err()); // no graph
        assert!(Options::parse(args("--graph gen:er:10:5:1")).is_err()); // no pattern
        assert!(Options::parse(args("--graph gen:er:10:5 --pattern tc")).is_err());
        assert!(Options::parse(args("--graph g --pattern zzz")).is_err());
        assert!(Options::parse(args("--graph g --pattern tc --engine gpu")).is_err());
        assert!(Options::parse(args("--graph g --pattern tc --bogus")).is_err());
        assert!(Options::parse(args("--graph g --pattern tc --pes 0")).is_err());
        assert!(Options::parse(args("--graph g --pattern tc --threads 0")).is_err());
        assert!(Options::parse(args("--graph g --pattern tc --threads x")).is_err());
    }

    #[test]
    fn threads_flag_parses_and_defaults() {
        let o = Options::parse(args("--graph g --pattern tc --threads 3")).expect("valid");
        assert_eq!(o.threads, 3);
        let o = Options::parse(args("--graph g --pattern tc")).expect("valid");
        assert_eq!(o.threads, default_threads());
        assert!(o.threads >= 1);
    }

    #[test]
    fn thread_count_does_not_change_counts() {
        let base = "--graph gen:er:50:160:9 --pattern tc --pattern cyc";
        let one = run(&Options::parse(args(&format!("{base} --threads 1"))).unwrap()).unwrap();
        let four = run(&Options::parse(args(&format!("{base} --threads 4"))).unwrap()).unwrap();
        assert_eq!(one.counts, four.counts);
        assert!(four.engine.contains("4 threads"));
    }

    #[test]
    fn bitmap_flags_parse_and_default() {
        let o = Options::parse(args("--graph g --pattern tc")).expect("valid");
        assert_eq!(o.bitmap_hubs, fingers_mining::config::DEFAULT_BITMAP_HUBS);
        let o = Options::parse(args("--graph g --pattern tc --bitmap-hubs 7")).expect("valid");
        assert_eq!(o.bitmap_hubs, 7);
        let o = Options::parse(args("--graph g --pattern tc --no-bitmap")).expect("valid");
        assert_eq!(o.bitmap_hubs, 0);
        assert!(Options::parse(args("--graph g --pattern tc --bitmap-hubs x")).is_err());
        assert!(Options::parse(args("--graph g --pattern tc --bitmap-hubs")).is_err());
    }

    #[test]
    fn bitmap_toggle_does_not_change_counts() {
        let base = "--graph gen:pl:120:700:4 --pattern tc --pattern 4cl --threads 2";
        let on = run(&Options::parse(args(base)).unwrap()).unwrap();
        let off = run(&Options::parse(args(&format!("{base} --no-bitmap"))).unwrap()).unwrap();
        assert_eq!(on.counts, off.counts);
        assert!(on.engine.contains("bitmap hubs 1024"), "{}", on.engine);
        assert!(off.engine.contains("bitmap off"), "{}", off.engine);
    }

    #[test]
    fn count_fusion_flag_parses_and_defaults_on() {
        let o = Options::parse(args("--graph g --pattern tc")).expect("valid");
        assert!(o.count_fusion);
        let o = Options::parse(args("--graph g --pattern tc --no-count-fusion")).expect("valid");
        assert!(!o.count_fusion);
    }

    #[test]
    fn count_fusion_toggle_does_not_change_counts() {
        let base = "--graph gen:pl:120:700:4 --pattern tc --pattern 4cl --threads 2";
        let fused = run(&Options::parse(args(base)).unwrap()).unwrap();
        let unfused =
            run(&Options::parse(args(&format!("{base} --no-count-fusion"))).unwrap()).unwrap();
        assert_eq!(fused.counts, unfused.counts);
        assert!(
            !fused.engine.contains("count fusion off"),
            "{}",
            fused.engine
        );
        assert!(
            unfused.engine.contains("count fusion off"),
            "{}",
            unfused.engine
        );
    }

    #[test]
    fn simd_and_steal_flags_parse_and_default_on() {
        let o = Options::parse(args("--graph g --pattern tc")).expect("valid");
        assert!(o.simd && o.work_stealing);
        let o = Options::parse(args("--graph g --pattern tc --no-simd")).expect("valid");
        assert!(!o.simd && o.work_stealing);
        let o = Options::parse(args("--graph g --pattern tc --no-steal")).expect("valid");
        assert!(o.simd && !o.work_stealing);
    }

    #[test]
    fn simd_toggle_does_not_change_counts() {
        let base = "--graph gen:pl:120:700:4 --pattern tc --pattern 4cl --threads 2";
        let on = run(&Options::parse(args(base)).unwrap()).unwrap();
        let off = run(&Options::parse(args(&format!("{base} --no-simd"))).unwrap()).unwrap();
        assert_eq!(on.counts, off.counts);
        assert!(!on.engine.contains("simd off"), "{}", on.engine);
        assert!(off.engine.contains("simd off"), "{}", off.engine);
    }

    #[test]
    fn steal_toggle_does_not_change_counts() {
        let base = "--graph gen:pl:120:700:4 --pattern tc --pattern 4cl --threads 4";
        let on = run(&Options::parse(args(base)).unwrap()).unwrap();
        let off = run(&Options::parse(args(&format!("{base} --no-steal"))).unwrap()).unwrap();
        assert_eq!(on.counts, off.counts);
        assert!(!on.engine.contains("stealing off"), "{}", on.engine);
        assert!(off.engine.contains("stealing off"), "{}", off.engine);
    }

    #[test]
    fn usage_error_displays_usage() {
        let e = Options::parse(args("--help")).unwrap_err();
        assert!(e.to_string().contains("usage: fingers-mine"));
    }

    #[test]
    fn sanitize_and_strict_flags_parse() {
        let o = Options::parse(args("--graph g --pattern tc")).expect("valid");
        assert!(!o.sanitize && !o.strict);
        let o = Options::parse(args("--graph g --pattern tc --sanitize")).expect("valid");
        assert!(o.sanitize && !o.strict);
        let o = Options::parse(args("--graph g --pattern tc --strict")).expect("valid");
        assert!(!o.sanitize && o.strict);
        assert!(Options::parse(args("--graph g --pattern tc --sanitize --strict")).is_err());
    }

    #[test]
    fn exit_codes_are_distinct_per_error_path() {
        let usage = CliError::from(UsageError("x".into()));
        let load = CliError::GraphLoad("x".into());
        let dirty = CliError::DirtyInput(SanitizeReport::default());
        let unsupported = CliError::Unsupported("x".into());
        let codes = [
            usage.exit_code(),
            load.exit_code(),
            dirty.exit_code(),
            unsupported.exit_code(),
        ];
        assert_eq!(codes, [2, 3, 4, 6]);
        for code in codes {
            assert_ne!(code, 0);
        }
    }

    fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("fingers-cli-{name}-{}", std::process::id()));
        std::fs::write(&path, contents).expect("write temp edge list");
        path
    }

    #[test]
    fn missing_file_is_a_graph_load_error() {
        let o = Options::parse(args("--graph /no/such/file --pattern tc")).unwrap();
        let e = run(&o).unwrap_err();
        assert!(matches!(e, CliError::GraphLoad(_)), "{e:?}");
        assert_eq!(e.exit_code(), 3);
    }

    #[test]
    fn sanitize_repairs_and_reports() {
        // Triangle with a self loop, a duplicate, and a trailing token.
        let path = write_temp("dirty", "0 1\n1 2\n0 2\n2 2\n1 0\n0 1 99\n");
        let spec = format!("--graph {} --pattern tc --sanitize", path.display());
        let out = run(&Options::parse(args(&spec)).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(out.counts, vec![1]);
        let report = out.sanitize.expect("sanitize report");
        assert!(!report.is_clean());
        assert_eq!(report.self_loops_dropped, 1);
        assert!(report.duplicates_dropped >= 1);
        assert_eq!(report.trailing_token_lines, 1);
    }

    #[test]
    fn strict_refuses_dirty_and_accepts_clean() {
        let dirty = write_temp("strict-dirty", "0 1\n1 1\n1 2\n");
        let spec = format!("--graph {} --pattern tc --strict", dirty.display());
        let e = run(&Options::parse(args(&spec)).unwrap()).unwrap_err();
        std::fs::remove_file(&dirty).ok();
        assert!(matches!(e, CliError::DirtyInput(_)), "{e:?}");
        assert_eq!(e.exit_code(), 4);

        let clean = write_temp("strict-clean", "0 1\n0 2\n1 2\n");
        let spec = format!("--graph {} --pattern tc --strict", clean.display());
        let out = run(&Options::parse(args(&spec)).unwrap()).unwrap();
        std::fs::remove_file(&clean).ok();
        assert_eq!(out.counts, vec![1]);
        assert!(out.sanitize.expect("report").is_clean());
    }

    #[test]
    fn oblivious_edge_induced_is_unsupported() {
        let o = Options::parse(args(
            "--graph gen:er:20:40:1 --pattern tc --engine oblivious --edge-induced",
        ))
        .unwrap();
        let e = run(&o).unwrap_err();
        assert!(matches!(e, CliError::Unsupported(_)), "{e:?}");
        assert_eq!(e.exit_code(), 6);
    }

    #[test]
    fn run_software_engine() {
        let o = Options::parse(args("--graph gen:er:60:180:3 --pattern tc --pattern wedge"))
            .expect("valid");
        let out = run(&o).expect("runs");
        assert_eq!(out.counts.len(), 2);
        assert!(out.cycles.is_none());
    }

    #[test]
    fn engines_agree_on_counts() {
        let base = "--graph gen:er:50:150:5 --pattern tt";
        let sw = run(&Options::parse(args(base)).unwrap()).unwrap();
        let fi = run(&Options::parse(args(&format!("{base} --engine fingers"))).unwrap()).unwrap();
        let fm =
            run(&Options::parse(args(&format!("{base} --engine flexminer"))).unwrap()).unwrap();
        let ob =
            run(&Options::parse(args(&format!("{base} --engine oblivious"))).unwrap()).unwrap();
        assert_eq!(sw.counts, fi.counts);
        assert_eq!(sw.counts, fm.counts);
        assert_eq!(sw.counts, ob.counts);
        assert!(fi.cycles.is_some() && fm.cycles.is_some());
    }

    #[test]
    fn command_parse_dispatches() {
        let c = Command::parse(args("--graph g --pattern tc")).expect("mine");
        assert!(matches!(c, Command::Mine(_)));
        let c = Command::parse(args("verify-plan tt --edge-induced")).expect("verify");
        let Command::VerifyPlan(o) = c else {
            panic!("expected verify-plan")
        };
        assert_eq!(o.pattern, Pattern::tailed_triangle());
        assert!(o.edge_induced);
        assert!(o.mutate.is_none());
        let c = Command::parse(args("verify-plan cyc --mutate drop-restriction")).expect("mutate");
        let Command::VerifyPlan(o) = c else {
            panic!("expected verify-plan")
        };
        assert_eq!(o.mutate, Some(PlanMutation::DropRestriction));
    }

    #[test]
    fn command_parse_rejects_bad_verify_plan_lines() {
        assert!(Command::parse(args("verify-plan")).is_err()); // no spec
        assert!(Command::parse(args("verify-plan zzz")).is_err()); // bad spec
        assert!(Command::parse(args("verify-plan tc tt")).is_err()); // two specs
        assert!(Command::parse(args("verify-plan tc --mutate nope")).is_err());
        assert!(Command::parse(args("verify-plan tc --bogus")).is_err());
        // `--mutate list` surfaces the corpus names as a usage error.
        let e = Command::parse(args("verify-plan tc --mutate list")).unwrap_err();
        assert!(e.to_string().contains("drop-restriction"), "{e}");
    }

    #[test]
    fn verify_plan_clean_and_mutated() {
        for spec in ["tc", "tt", "cyc", "dia", "house"] {
            for extra in ["", " --edge-induced", " --optimize-order"] {
                let Command::VerifyPlan(o) =
                    Command::parse(args(&format!("verify-plan {spec}{extra}"))).unwrap()
                else {
                    panic!("expected verify-plan")
                };
                let out = run_verify_plan(&o).unwrap_or_else(|e| panic!("{spec}{extra}: {e}"));
                assert!(out.report.is_sound());
                assert!(out.plan_text.contains("level 0"));
            }
        }
        let Command::VerifyPlan(o) =
            Command::parse(args("verify-plan tt --mutate drop-init")).unwrap()
        else {
            panic!("expected verify-plan")
        };
        let e = run_verify_plan(&o).unwrap_err();
        assert!(matches!(e, CliError::InvalidPlan(_)), "{e:?}");
        assert_eq!(e.exit_code(), 7);
    }

    #[test]
    fn inapplicable_mutation_is_unsupported() {
        // Cliques have no subtractions to drop.
        let Command::VerifyPlan(o) =
            Command::parse(args("verify-plan tc --mutate drop-subtract")).unwrap()
        else {
            panic!("expected verify-plan")
        };
        let e = run_verify_plan(&o).unwrap_err();
        assert!(matches!(e, CliError::Unsupported(_)), "{e:?}");
        assert_eq!(e.exit_code(), 6);
    }

    #[test]
    fn serve_and_client_command_lines_parse() {
        let c = Command::parse(args(
            "serve --socket /tmp/s.sock --load g=gen:er:10:20:1 --load h=dataset:Mi --workers 2 --queue-depth 4 --max-threads 3 --default-timeout-ms 500 --mem-budget 1048576 --query-mem-budget 65536",
        ))
        .expect("serve");
        let Command::Serve(o) = c else {
            panic!("expected serve")
        };
        assert_eq!(o.socket, "/tmp/s.sock");
        assert_eq!(o.graphs.len(), 2);
        assert_eq!(o.graphs[0], ("g".into(), "gen:er:10:20:1".into()));
        assert_eq!(o.workers, Some(2));
        assert_eq!(o.queue_depth, Some(4));
        assert_eq!(o.max_threads, Some(3));
        assert_eq!(o.default_timeout_ms, Some(500));
        assert_eq!(o.mem_budget, Some(1 << 20));
        assert_eq!(o.query_mem_budget, Some(64 << 10));

        let c =
            Command::parse(args("client --socket /tmp/s.sock {\"op\":\"stats\"}")).expect("client");
        let Command::Client(o) = c else {
            panic!("expected client")
        };
        assert_eq!(o.socket, "/tmp/s.sock");
        assert_eq!(o.request, "{\"op\":\"stats\"}");
        assert_eq!((o.retries, o.retry_seed), (0, 0));

        let c = Command::parse(args(
            "client --socket /tmp/s.sock --retries 3 --retry-base-ms 10 --retry-seed 7 {\"op\":\"ping\"}",
        ))
        .expect("client with backoff");
        let Command::Client(o) = c else {
            panic!("expected client")
        };
        assert_eq!(o.retries, 3);
        assert_eq!(o.retry_base_ms, 10);
        assert_eq!(o.retry_seed, 7);

        assert!(Command::parse(args("serve --socket /tmp/s.sock")).is_err()); // no --load
        assert!(Command::parse(args("serve --load g=x")).is_err()); // no socket
        assert!(Command::parse(args("serve --socket s --load gx")).is_err()); // no '='
        assert!(Command::parse(args("serve --socket s --load g=x --workers 0")).is_err());
        assert!(Command::parse(args("serve --socket s --load g=x --mem-budget x")).is_err());
        assert!(Command::parse(args("client --socket s")).is_err()); // no request
        assert!(Command::parse(args("client x")).is_err()); // no socket
        assert!(Command::parse(args("client --socket s --retries x r")).is_err());
    }

    #[test]
    fn json_flag_emits_the_shared_count_report_schema() {
        let o = Options::parse(args("--graph gen:er:60:180:3 --pattern tc --json")).unwrap();
        assert!(o.json);
        let out = run(&o).unwrap();
        let line = json_report(&o, &out, 1.25);
        let v = fingers_server::Json::parse(&line).expect("valid json");
        use fingers_server::Json;
        for key in ["patterns", "counts", "total", "engine", "wall_ms"] {
            assert!(v.get(key).is_some(), "missing {key} in {line}");
        }
        assert_eq!(
            v.get("total").and_then(Json::as_u64),
            Some(out.counts.iter().sum::<u64>())
        );
        assert_eq!(
            fingers_server::proto::exit_code_for_response(&v),
            10,
            "a bare report has no status"
        );
    }

    #[test]
    fn new_error_variants_have_distinct_exit_codes() {
        assert_eq!(CliError::Overloaded("x".into()).exit_code(), 8);
        assert_eq!(CliError::Cancelled("x".into()).exit_code(), 9);
        assert_eq!(CliError::Transport("x".into()).exit_code(), 10);
        let budget = CliError::MemBudget(EngineError::MemBudgetExceeded {
            used_bytes: 10,
            budget_bytes: 5,
        });
        assert_eq!(budget.exit_code(), 11);
    }

    #[test]
    fn query_mem_budget_flag_parses_and_aborts_typed() {
        let o = Options::parse(args("--graph g --pattern tc")).expect("valid");
        assert_eq!(o.query_mem_budget, None);
        let o =
            Options::parse(args("--graph g --pattern tc --query-mem-budget 4096")).expect("valid");
        assert_eq!(o.query_mem_budget, Some(4096));
        assert!(Options::parse(args("--graph g --pattern tc --query-mem-budget x")).is_err());

        // A 1-byte budget cannot fit any miner's scratch: the run must
        // abort typed with exit 11, never report a partial count.
        let o = Options::parse(args(
            "--graph gen:pl:120:700:4 --pattern 4cl --threads 2 --query-mem-budget 1",
        ))
        .unwrap();
        let e = run(&o).unwrap_err();
        assert!(matches!(e, CliError::MemBudget(_)), "{e:?}");
        assert_eq!(e.exit_code(), 11);

        // A generous budget changes nothing about the counts.
        let base = "--graph gen:pl:120:700:4 --pattern 4cl --threads 2";
        let plain = run(&Options::parse(args(base)).unwrap()).unwrap();
        let governed = run(&Options::parse(args(&format!(
            "{base} --query-mem-budget {}",
            64u64 << 20
        )))
        .unwrap())
        .unwrap();
        assert_eq!(plain.counts, governed.counts);
    }

    #[test]
    fn client_round_trips_against_an_in_process_daemon() {
        let socket =
            std::env::temp_dir().join(format!("fingers-cli-daemon-{}.sock", std::process::id()));
        let daemon = fingers_server::Daemon::start(fingers_server::DaemonConfig {
            socket: socket.clone(),
            graphs: vec![("g".into(), "gen:er:100:400:3".into())],
            engine: EngineConfig::default(),
            sched: fingers_server::SchedulerConfig::default(),
        })
        .expect("daemon");
        let client = |request: &str| {
            run_client(&ClientOptions {
                socket: socket.display().to_string(),
                request: request.to_owned(),
                retries: 0,
                retry_base_ms: 25,
                retry_seed: 0,
            })
            .expect("transport ok")
        };
        let (line, code) = client(r#"{"op":"count","graph":"g","patterns":["tc"]}"#);
        assert_eq!(code, 0, "{line}");
        let (line, code) = client(r#"{"op":"verify-plan","pattern":"tt","mutate":"drop-init"}"#);
        assert_eq!(code, 7, "{line}");
        let (line, code) = client(r#"{"op":"count","graph":"nope","patterns":["tc"]}"#);
        assert_eq!(code, 3, "{line}");
        daemon.shutdown();
        daemon.wait();
        // With the daemon gone, the client reports a transport failure.
        let err = run_client(&ClientOptions {
            socket: socket.display().to_string(),
            request: r#"{"op":"stats"}"#.to_owned(),
            retries: 0,
            retry_base_ms: 25,
            retry_seed: 0,
        })
        .expect_err("no daemon");
        assert_eq!(err.exit_code(), 10);
    }

    #[test]
    fn optimize_order_and_reorder_preserve_counts() {
        let base = "--graph gen:pl:80:300:2 --pattern cyc";
        let plain = run(&Options::parse(args(base)).unwrap()).unwrap();
        let opt = run(&Options::parse(args(&format!("{base} --optimize-order"))).unwrap()).unwrap();
        let reord =
            run(&Options::parse(args(&format!("{base} --reorder-degree"))).unwrap()).unwrap();
        assert_eq!(plain.counts, opt.counts);
        assert_eq!(plain.counts, reord.counts);
    }
}
