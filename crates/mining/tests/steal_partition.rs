//! Property test: work-stealing claims always partition the seeded roots.
//!
//! The bounded model checker (`tests/model_check.rs`) exhausts *every*
//! interleaving of a tiny deque; this test is its complement — real OS
//! threads, adversarial task *shapes*: empty pools, a single lone root,
//! hub-heavy skews where one task dwarfs the rest (forcing the
//! `split_off_half` steal arm), and uniform partitions. Whatever the
//! shape and thread timing, the union of all claimed tasks must cover
//! every root exactly once — no root lost to a steal, none double-mined
//! by a split.

use fingers_mining::parallel::StealPool;
use fingers_mining::MiningTask;
use proptest::prelude::*;
use std::sync::Arc;

/// Adversarial task shapes over `[0, n)`, chosen by `kind`.
fn shape_tasks(kind: u8, n: u32) -> Vec<MiningTask> {
    match kind % 4 {
        // Uniform near-equal partition, more tasks than workers.
        0 => MiningTask::partition(n as usize, 7),
        // Single task holding the whole range: every other worker must
        // go through the steal-and-split path.
        1 if n > 0 => vec![MiningTask { start: 0, end: n }],
        // Hub-heavy: one dominant task plus unit-size crumbs.
        2 if n >= 4 => {
            let hub_end = n - (n / 4);
            let mut tasks = vec![MiningTask {
                start: 0,
                end: hub_end,
            }];
            tasks.extend((hub_end..n).map(|r| MiningTask {
                start: r,
                end: r + 1,
            }));
            tasks
        }
        // Degenerate: empty pool regardless of n.
        _ => MiningTask::partition(n as usize, 3),
    }
}

/// Drains a shared pool from `workers` OS threads and returns every claimed
/// root. Splitting each claimed task once more mid-drain (when `resplit`)
/// stresses the claim/split arithmetic a second way: a worker re-splitting
/// its own claim must still mine both halves exactly once.
fn drain_with_threads(tasks: &[MiningTask], workers: usize, resplit: bool) -> Vec<u32> {
    let pool = Arc::new(StealPool::new(tasks, workers));
    let handles: Vec<_> = (0..workers)
        .map(|me| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut mined = Vec::new();
                while let Some(mut t) = pool.claim(me) {
                    if resplit {
                        if let Some(upper) = t.split_off_half() {
                            mined.extend(upper.roots());
                        }
                    }
                    mined.extend(t.roots());
                }
                mined
            })
        })
        .collect();
    let mut mined: Vec<u32> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("worker panicked"))
        .collect();
    mined.sort_unstable();
    mined
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn claims_partition_roots_for_adversarial_shapes(
        kind in 0u8..4,
        n in 0u32..96,
        workers in 2usize..=4,
        resplit_bit in 0u8..2,
    ) {
        let tasks = shape_tasks(kind, n);
        let expected: Vec<u32> = tasks.iter().flat_map(MiningTask::roots).collect();
        let mut expected_sorted = expected;
        expected_sorted.sort_unstable();
        let mined = drain_with_threads(&tasks, workers, resplit_bit == 1);
        prop_assert_eq!(mined, expected_sorted);
    }

    #[test]
    fn split_off_half_partitions_any_task(start in 0u32..1000, len in 0u32..1000) {
        let mut t = MiningTask { start, end: start + len };
        let before: Vec<u32> = t.roots().collect();
        match t.split_off_half() {
            Some(upper) => {
                let mut after: Vec<u32> = t.roots().chain(upper.roots()).collect();
                after.sort_unstable();
                prop_assert_eq!(after, before);
                prop_assert!(!t.is_empty() && !upper.is_empty());
                prop_assert_eq!(t.end, upper.start, "halves stay contiguous");
            }
            None => prop_assert!(before.len() < 2, "only sub-2-root tasks refuse to split"),
        }
    }
}

#[test]
fn empty_pool_yields_nothing() {
    assert!(drain_with_threads(&[], 3, false).is_empty());
}

#[test]
fn single_root_is_claimed_exactly_once() {
    let tasks = vec![MiningTask { start: 0, end: 1 }];
    assert_eq!(drain_with_threads(&tasks, 4, false), vec![0]);
}
