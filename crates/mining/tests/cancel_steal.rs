//! Property test: cancellation racing the work-stealing scheduler never
//! corrupts a count.
//!
//! A token can fire at any moment relative to a worker's claim cycle —
//! including between popping a task from its own deque and splitting a
//! stolen range — so the property is phrased over *outcomes*: whatever
//! the interleaving, a run either completes with the exact serial count
//! (no root partition lost, none counted twice) or reports a typed
//! cancellation with no count at all. There is no third outcome.
//!
//! Swept across {1, 2, 4, 8} threads × simd on/off × stealing on/off,
//! with the cancel delay fuzzed so the token lands in every phase of the
//! run: before the first claim, mid-storm, and after the last task.

use std::sync::OnceLock;
use std::time::Duration;

use fingers_graph::CsrGraph;
use fingers_mining::{
    count_plan_parallel_with, try_count_plan_parallel_shared, CancelToken, EngineConfig,
};
use fingers_pattern::{parse_pattern, ExecutionPlan, Induced};
use proptest::prelude::*;

fn graph() -> &'static CsrGraph {
    static GRAPH: OnceLock<CsrGraph> = OnceLock::new();
    GRAPH.get_or_init(|| {
        fingers_graph::gen::chung_lu_power_law(&fingers_graph::gen::ChungLuConfig::new(
            600, 5400, 9,
        ))
    })
}

fn plan() -> &'static ExecutionPlan {
    static PLAN: OnceLock<ExecutionPlan> = OnceLock::new();
    PLAN.get_or_init(|| {
        ExecutionPlan::compile(
            &parse_pattern("4cl").expect("pattern parses"),
            Induced::Vertex,
        )
    })
}

fn serial_count(config: &EngineConfig) -> u64 {
    count_plan_parallel_with(graph(), plan(), 1, config)
}

fn config_for(simd: bool, stealing: bool) -> EngineConfig {
    EngineConfig {
        simd,
        work_stealing: stealing,
        ..EngineConfig::default()
    }
}

/// The core property: fire the token `delay_us` into the run and assert
/// the all-or-nothing contract.
fn run_race(threads: usize, simd: bool, stealing: bool, delay_us: u64) {
    let config = config_for(simd, stealing);
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(delay_us));
            token.cancel();
        })
    };
    let result = try_count_plan_parallel_shared(graph(), plan(), threads, &config, None, &token);
    canceller.join().expect("canceller thread");
    match result {
        Ok(count) => assert_eq!(
            count,
            serial_count(&config),
            "a completed run must count every root partition exactly once \
             (threads={threads}, simd={simd}, stealing={stealing}, delay={delay_us}us)"
        ),
        Err(e) => assert!(
            e.cancel_kind().is_some(),
            "the only legal failure is a typed cancellation, got {e:?} \
             (threads={threads}, simd={simd}, stealing={stealing}, delay={delay_us}us)"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cancelling mid-steal never double-counts or leaks a partition.
    #[test]
    fn cancel_racing_the_scheduler_is_all_or_nothing(
        threads in (0usize..4).prop_map(|i| [1usize, 2, 4, 8][i]),
        simd in (0u32..2).prop_map(|b| b == 1),
        stealing in (0u32..2).prop_map(|b| b == 1),
        delay_us in 0u64..4000,
    ) {
        run_race(threads, simd, stealing, delay_us);
    }
}

#[test]
fn pre_cancelled_token_aborts_every_configuration() {
    for threads in [1usize, 2, 4, 8] {
        for simd in [false, true] {
            for stealing in [false, true] {
                let config = config_for(simd, stealing);
                let token = CancelToken::new();
                token.cancel();
                let err =
                    try_count_plan_parallel_shared(graph(), plan(), threads, &config, None, &token)
                        .expect_err("pre-cancelled run cannot complete");
                assert!(err.cancel_kind().is_some(), "{err:?}");
            }
        }
    }
}

#[test]
fn uncancelled_token_matches_serial_everywhere() {
    for threads in [1usize, 2, 4, 8] {
        for simd in [false, true] {
            for stealing in [false, true] {
                let config = config_for(simd, stealing);
                let count = try_count_plan_parallel_shared(
                    graph(),
                    plan(),
                    threads,
                    &config,
                    None,
                    &CancelToken::new(),
                )
                .expect("uncancelled run completes");
                assert_eq!(count, serial_count(&config));
            }
        }
    }
}
