//! Bounded model-check gate for the mining crate's concurrency protocols.
//!
//! Runs only with `--features model-check` (the `[[test]]` target declares
//! `required-features`). Each test asserts the explorer *exhausted* the
//! bounded interleaving space — a timeout-truncated exploration fails, so a
//! state-space blowup cannot silently weaken the gate.

use fingers_conc::model::CheckOptions;
use fingers_mining::model;
use std::time::Duration;

/// ≥2 threads and a ≥4 preemption bound, per the acceptance criteria.
/// 20 s is a hard per-harness ceiling; in practice each exhausts in
/// milliseconds (release) and the reports prove it via `complete`.
fn opts() -> CheckOptions {
    CheckOptions {
        max_preemptions: 4,
        max_duration: Duration::from_secs(20),
        ..CheckOptions::default()
    }
}

#[test]
fn deque_partition_holds_under_all_bounded_schedules() {
    let report = model::deque_partition_check(opts());
    report.assert_clean();
    assert!(report.executions > 1, "exploration must branch");
    assert!(report.max_threads >= 3, "main + two workers");
}

#[test]
fn deque_split_steal_holds_under_all_bounded_schedules() {
    let report = model::deque_split_check(opts());
    report.assert_clean();
    assert!(report.executions > 1, "exploration must branch");
}

#[test]
fn seeded_peek_pop_race_is_caught() {
    let report = model::deque_racy_check(opts());
    report.assert_caught();
    let v = &report.violations[0];
    assert!(
        v.message.contains("partition"),
        "the partition assertion must be the one that fires: {}",
        v.message
    );
    assert!(!v.schedule.is_empty(), "violation carries its schedule");
}

#[test]
fn cancel_is_all_or_nothing_under_all_bounded_schedules() {
    let report = model::cancel_all_or_nothing_check(opts());
    report.assert_clean();
    assert!(report.max_threads >= 3, "main + worker + canceller");
}

#[test]
fn gauge_drains_to_baseline_under_all_bounded_schedules() {
    let report = model::gauge_drain_check(opts());
    report.assert_clean();
    assert!(report.executions > 1, "exploration must branch");
}
