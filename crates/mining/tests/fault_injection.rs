//! Fault-injection suite: drives the engine through the seeded chaos
//! plan and proves every injected fault surfaces typed — never a crash,
//! never a partial count — and that a run after `chaos::clear()` is
//! bit-identical to a run that never saw chaos.
//!
//! ci.sh runs this suite twice: with default features and with
//! `--no-default-features` (scalar set-op kernels), proving the fallback
//! path degrades identically under the same fault streams.
//!
//! The chaos plan is process-global, so every test runs under one lock
//! and restores the uninstalled state before releasing it.

use std::sync::Mutex;

use fingers_graph::CsrGraph;
use fingers_mining::chaos::{self, ChaosPlan, ChaosSite};
use fingers_mining::{
    count_plan_parallel_with, try_count_plan_parallel_with, CancelToken, EngineConfig, EngineError,
};
use fingers_pattern::{parse_pattern, ExecutionPlan, Induced};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with `plan` installed, clearing chaos afterwards even when an
/// assertion inside `f` panics.
fn with_chaos<R>(plan: ChaosPlan, f: impl FnOnce() -> R) -> R {
    let _guard = CHAOS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    struct Clear;
    impl Drop for Clear {
        fn drop(&mut self) {
            chaos::clear();
        }
    }
    let _clear = Clear;
    chaos::install(plan);
    f()
}

fn graph() -> CsrGraph {
    fingers_graph::gen::chung_lu_power_law(&fingers_graph::gen::ChungLuConfig::new(400, 3200, 5))
}

fn plan(pattern: &str) -> ExecutionPlan {
    ExecutionPlan::compile(
        &parse_pattern(pattern).expect("pattern parses"),
        Induced::Vertex,
    )
}

#[test]
fn injected_worker_panics_fail_typed_and_name_partitions() {
    let g = graph();
    let p = plan("tc");
    let err = with_chaos(
        ChaosPlan {
            worker_panic_per_mille: 1000,
            max_per_site: 2,
            ..ChaosPlan::quiet(7)
        },
        || {
            try_count_plan_parallel_with(&g, &p, 2, &EngineConfig::default())
                .expect_err("a 1000-permille worker-panic site must fail the run")
        },
    );
    let EngineError::WorkerPanic { failures } = err else {
        panic!("expected WorkerPanic, got {err:?}");
    };
    assert_eq!(failures.len(), 2, "the per-site cap bounds the failures");
    for f in &failures {
        assert!(
            chaos::is_chaos_panic(&f.message),
            "injected panic must carry the chaos marker: {}",
            f.message
        );
    }
    let starts: Vec<_> = failures.iter().map(|f| f.task.start).collect();
    let mut sorted = starts.clone();
    sorted.sort_unstable();
    assert_eq!(starts, sorted, "failures are reported in root order");
}

#[test]
fn injected_alloc_failures_are_typed_and_recovery_is_bit_identical() {
    let g = graph();
    let p = plan("4cl");
    let config = EngineConfig::default();
    let baseline = count_plan_parallel_with(&g, &p, 1, &config);
    let err = with_chaos(
        ChaosPlan {
            alloc_per_mille: 1000,
            max_per_site: 1,
            ..ChaosPlan::quiet(11)
        },
        || {
            let err = try_count_plan_parallel_with(&g, &p, 1, &config)
                .expect_err("an injected allocation failure must fail the run");
            assert_eq!(chaos::injected(ChaosSite::Alloc), 1, "cap admits one");
            err
        },
    );
    assert!(
        matches!(err, EngineError::WorkerPanic { .. }),
        "a simulated allocation failure surfaces as an isolated worker panic: {err:?}"
    );
    let recovered =
        try_count_plan_parallel_with(&g, &p, 1, &config).expect("chaos-free run succeeds");
    assert_eq!(recovered, baseline, "recovery run is bit-identical");
}

#[test]
fn serial_fault_schedule_is_identical_across_kernel_tiers() {
    // One draw per claimed task, serial claim order: the same seed must
    // fail the same root partitions whether the set-op tier is SIMD or
    // scalar — the degradation-parity claim ci.sh re-checks with
    // `--no-default-features`.
    let g = graph();
    let p = plan("tc");
    let chaos_plan = ChaosPlan {
        worker_panic_per_mille: 120,
        ..ChaosPlan::quiet(23)
    };
    let failed_roots = |config: &EngineConfig| {
        with_chaos(chaos_plan, || {
            match try_count_plan_parallel_with(&g, &p, 1, config) {
                Err(EngineError::WorkerPanic { failures }) => {
                    failures.iter().map(|f| f.task.start).collect::<Vec<_>>()
                }
                other => panic!("expected WorkerPanic, got {other:?}"),
            }
        })
    };
    assert_eq!(
        failed_roots(&EngineConfig::default()),
        failed_roots(&EngineConfig::without_simd()),
        "scalar fallback must degrade identically"
    );
}

#[test]
fn chaos_survives_alongside_cancellation_and_budget_contracts() {
    // Chaos does not weaken the other typed-abort contracts: with a plan
    // installed, a pre-cancelled token still wins and a 1-byte budget
    // still aborts typed, and neither leaks an injected panic.
    let g = graph();
    let p = plan("tc");
    with_chaos(ChaosPlan::quiet(3), || {
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let err = fingers_mining::try_count_plan_parallel_shared(
            &g,
            &p,
            2,
            &EngineConfig::default(),
            None,
            &cancelled,
        )
        .expect_err("pre-cancelled token aborts");
        assert!(err.cancel_kind().is_some(), "{err:?}");

        let budget = EngineConfig::with_query_mem_budget(1);
        let err =
            try_count_plan_parallel_with(&g, &p, 2, &budget).expect_err("1-byte budget aborts");
        assert!(err.mem_budget().is_some(), "{err:?}");
    });
}

#[test]
fn uninstalled_chaos_runs_are_untouched() {
    let _guard = CHAOS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    assert!(!chaos::active());
    let g = graph();
    let p = plan("tc");
    let config = EngineConfig::default();
    let count = try_count_plan_parallel_with(&g, &p, 4, &config).expect("chaos-free run succeeds");
    assert_eq!(count, count_plan_parallel_with(&g, &p, 1, &config));
}
