//! Units of mining work: contiguous runs of level-0 roots.
//!
//! Plan-driven DFS trees rooted at different level-0 vertices are fully
//! independent — no shared state, no cross-tree pruning. That makes "a
//! range of roots" the natural task granule for parallel mining (the same
//! decomposition the paper's accelerator uses to feed its PEs): partition
//! the vertex range into more tasks than workers and let workers claim them
//! dynamically, so a task containing a hub vertex does not serialize the
//! whole run.

use fingers_graph::{CsrGraph, VertexId};

/// A contiguous half-open range `[start, end)` of level-0 root vertices.
///
/// Executing a task means running the full plan DFS for every root in the
/// range. Tasks never overlap, so any partition of `[0, |V|)` into tasks
/// covers each embedding exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiningTask {
    /// First root vertex (inclusive).
    pub start: VertexId,
    /// One past the last root vertex.
    pub end: VertexId,
}

impl MiningTask {
    /// The task covering every vertex of `graph` — sequential mining is
    /// "run this one task".
    pub fn all(graph: &CsrGraph) -> Self {
        Self {
            start: 0,
            end: graph.vertex_count() as VertexId,
        }
    }

    /// The roots in this task, in ascending order.
    pub fn roots(&self) -> impl Iterator<Item = VertexId> {
        self.start..self.end
    }

    /// Number of roots in the task.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the task contains no roots.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Splits the task in half at root granularity, keeping the lower half
    /// in `self` and returning the upper half. Returns `None` (leaving
    /// `self` untouched) when the task has fewer than two roots. The two
    /// halves partition the original range, so mining both reports exactly
    /// the original embeddings — the work-stealing scheduler uses this to
    /// turn a lone oversized task into two stealable chunks.
    pub fn split_off_half(&mut self) -> Option<MiningTask> {
        if self.len() < 2 {
            return None;
        }
        let mid = self.start + (self.end - self.start) / 2;
        let upper = MiningTask {
            start: mid,
            end: self.end,
        };
        self.end = mid;
        Some(upper)
    }

    /// Splits `[0, vertex_count)` into at most `chunks` contiguous tasks of
    /// near-equal size (sizes differ by at most one). Returns fewer tasks
    /// when there are fewer vertices than requested chunks; covers every
    /// vertex exactly once.
    pub fn partition(vertex_count: usize, chunks: usize) -> Vec<MiningTask> {
        let chunks = chunks.max(1).min(vertex_count.max(1));
        if vertex_count == 0 {
            return Vec::new();
        }
        let base = vertex_count / chunks;
        let extra = vertex_count % chunks;
        let mut tasks = Vec::with_capacity(chunks);
        let mut start = 0usize;
        for i in 0..chunks {
            let len = base + usize::from(i < extra);
            tasks.push(MiningTask {
                start: start as VertexId,
                end: (start + len) as VertexId,
            });
            start += len;
        }
        tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_every_root_once() {
        for (n, chunks) in [(10, 3), (7, 7), (5, 16), (1, 4), (100, 8)] {
            let tasks = MiningTask::partition(n, chunks);
            let mut covered = Vec::new();
            for t in &tasks {
                assert!(!t.is_empty(), "no empty tasks for n={n}, chunks={chunks}");
                covered.extend(t.roots());
            }
            let expected: Vec<VertexId> = (0..n as VertexId).collect();
            assert_eq!(covered, expected, "n={n}, chunks={chunks}");
            // Near-equal sizes: max − min ≤ 1.
            let sizes: Vec<usize> = tasks.iter().map(MiningTask::len).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "unbalanced sizes {sizes:?}");
        }
    }

    #[test]
    fn partition_of_empty_graph_is_empty() {
        assert!(MiningTask::partition(0, 4).is_empty());
    }

    #[test]
    fn split_off_half_partitions_the_range() {
        let mut t = MiningTask { start: 10, end: 21 };
        let upper = t.split_off_half().expect("11 roots are splittable");
        assert_eq!(t, MiningTask { start: 10, end: 15 });
        assert_eq!(upper, MiningTask { start: 15, end: 21 });
        let roots: Vec<_> = t.roots().chain(upper.roots()).collect();
        assert_eq!(roots, (10..21).collect::<Vec<_>>());
    }

    #[test]
    fn split_off_half_refuses_tiny_tasks() {
        for (start, end) in [(3, 3), (3, 4)] {
            let mut t = MiningTask { start, end };
            assert!(t.split_off_half().is_none());
            assert_eq!(t, MiningTask { start, end }, "refusal must not mutate");
        }
    }
}
