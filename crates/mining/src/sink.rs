//! Embedding sinks: what the mining engine does with each match.
//!
//! The seed executor threaded a `FnMut(&[VertexId])` closure through the
//! DFS, which forced every consumer — counting included — to materialize
//! each embedding. [`Sink`] generalizes that: listing sinks still see every
//! embedding, while counting sinks override [`Sink::leaf_run`] to consume a
//! whole leaf-level candidate run in `O(k log n)` instead of `O(n)`,
//! without the engine ever branching on the consumer type.

use fingers_graph::VertexId;

/// Consumer of the embeddings produced by the plan interpreter.
///
/// The engine calls [`embedding`](Self::embedding) once per match with all
/// `k` mapped vertices in level order, except at complete leaf runs where
/// it calls [`leaf_run`](Self::leaf_run) once with the remaining candidate
/// slice (the default implementation materializes each embedding, so
/// implementors only override it as an optimization — never for
/// correctness).
pub trait Sink {
    /// `true` when this sink only ever needs embedding *counts*, never the
    /// mapped vertices. The engine uses this (together with
    /// `EngineConfig::fuse_terminal_counts`) to route terminal plan levels
    /// through fused count kernels that skip materializing the leaf
    /// candidate set entirely; reported totals are bit-identical either
    /// way. The default `false` keeps listing sinks on the materializing
    /// path byte for byte.
    const COUNTS_ONLY: bool = false;

    /// One complete embedding; `mapped[i]` is the vertex matched to pattern
    /// vertex `u_i`.
    fn embedding(&mut self, mapped: &[VertexId]);

    /// A fused leaf report: `n` embeddings completed whose leaf vertices
    /// were counted by a kernel without ever being materialized. Only
    /// called when [`COUNTS_ONLY`](Self::COUNTS_ONLY) is `true`, so the
    /// default ignores the report (a listing sink never receives one).
    fn leaf_count(&mut self, n: u64) {
        let _ = n;
    }

    /// A complete leaf-level run: every element of `candidates` (a sorted
    /// set, possibly still containing vertices already in `prefix`) that is
    /// not in `prefix` extends `prefix` to one embedding.
    ///
    /// The default filters and reports each embedding through
    /// [`embedding`](Self::embedding); counting sinks override this to add
    /// `|candidates| − |candidates ∩ prefix|` directly.
    fn leaf_run(&mut self, prefix: &mut Vec<VertexId>, candidates: &[VertexId]) {
        for &c in candidates {
            if prefix.contains(&c) {
                continue; // embeddings map distinct vertices
            }
            prefix.push(c);
            self.embedding(prefix);
            prefix.pop();
        }
    }

    /// Heap bytes this sink currently retains, for the memory governor's
    /// root-boundary footprint poll. Counting sinks retain nothing (the
    /// default); accumulating sinks like [`ListSink`] report their buffer
    /// capacity so a runaway listing query trips its byte budget instead
    /// of OOM-ing the process.
    fn heap_bytes(&self) -> u64 {
        0
    }
}

/// Counts embeddings without materializing them.
///
/// Its [`Sink::leaf_run`] override is the engine's main algorithmic win
/// over the seed executor: a leaf run of `n` candidates costs `k` binary
/// searches instead of `n` scans.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountSink {
    /// Embeddings seen so far.
    pub count: u64,
}

impl Sink for CountSink {
    const COUNTS_ONLY: bool = true;

    fn embedding(&mut self, _mapped: &[VertexId]) {
        self.count += 1;
    }

    fn leaf_count(&mut self, n: u64) {
        self.count += n;
    }

    fn leaf_run(&mut self, prefix: &mut Vec<VertexId>, candidates: &[VertexId]) {
        // `candidates` is a sorted set and `prefix` holds distinct vertices,
        // so each binary search hit is a distinct duplicate to exclude.
        let dup = prefix
            .iter()
            .filter(|p| candidates.binary_search(p).is_ok())
            .count();
        self.count += (candidates.len() - dup) as u64;
    }
}

/// Adapts a `FnMut(&[VertexId])` closure into a [`Sink`], preserving the
/// seed executor's listing behavior (every embedding materialized, in DFS
/// order).
#[derive(Debug)]
pub struct FnSink<F> {
    f: F,
}

impl<F: FnMut(&[VertexId])> FnSink<F> {
    /// Wraps `f` so the engine invokes it once per embedding.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F: FnMut(&[VertexId])> Sink for FnSink<F> {
    fn embedding(&mut self, mapped: &[VertexId]) {
        (self.f)(mapped);
    }
}

/// Collects every embedding into a flat vertex buffer (`k` entries per
/// match, DFS order), reporting its retained capacity to the memory
/// governor. The listing counterpart of [`CountSink`]: the one sink whose
/// footprint grows with the *result*, not the plan, which is exactly what
/// a per-query byte budget exists to bound.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ListSink {
    /// Concatenated embeddings, `k` vertices each, in DFS order.
    pub flat: Vec<VertexId>,
    /// Vertices per embedding (0 until the first match arrives).
    pub arity: usize,
}

impl ListSink {
    /// Embeddings collected so far.
    pub fn len(&self) -> usize {
        self.flat.len().checked_div(self.arity).unwrap_or(0)
    }

    /// Whether no embedding has been collected.
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }
}

impl Sink for ListSink {
    fn embedding(&mut self, mapped: &[VertexId]) {
        self.arity = mapped.len();
        // lint: allow-alloc(listing inherently accumulates its result; the
        // memory governor bounds it via heap_bytes)
        self.flat.extend_from_slice(mapped);
    }

    fn heap_bytes(&self) -> u64 {
        (self.flat.capacity() * std::mem::size_of::<VertexId>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sink_leaf_run_excludes_prefix_vertices() {
        let mut sink = CountSink::default();
        let mut prefix = vec![3, 7];
        sink.leaf_run(&mut prefix, &[1, 3, 5, 7, 9]);
        assert_eq!(sink.count, 3);
        assert_eq!(prefix, vec![3, 7], "prefix must be restored");
    }

    #[test]
    fn default_leaf_run_matches_count_override() {
        let mut counting = CountSink::default();
        let mut listed = Vec::new();
        let mut listing = FnSink::new(|e: &[VertexId]| listed.push(e.to_vec()));
        let candidates = [0, 2, 4, 6, 8];
        let mut prefix = vec![4, 1];
        counting.leaf_run(&mut prefix.clone(), &candidates);
        listing.leaf_run(&mut prefix, &candidates);
        assert_eq!(counting.count as usize, listed.len());
        for e in &listed {
            assert_eq!(&e[..2], &[4, 1]);
        }
    }
}
