//! Software reference miner for the FINGERS reproduction.
//!
//! Executes compiled pattern-aware execution plans on CSR graphs by plain
//! depth-first search, exactly as the paper's Figure 2 loop nest does. This
//! is (a) the functional oracle every accelerator model is validated
//! against, and (b) the CPU baseline in spirit of AutoMine/GraphZero.
//!
//! The crate also contains a brute-force enumerator ([`brute`]) used to
//! validate the *compiler* itself (vertex orders, schedules, and symmetry
//! breaking) on small graphs.
//!
//! # Example
//!
//! ```
//! use fingers_graph::GraphBuilder;
//! use fingers_mining::count_benchmark;
//! use fingers_pattern::benchmarks::Benchmark;
//!
//! // K4 contains exactly 4 triangles and 1 four-clique.
//! let g = GraphBuilder::new()
//!     .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
//!     .build();
//! assert_eq!(count_benchmark(&g, Benchmark::Tc).total(), 4);
//! assert_eq!(count_benchmark(&g, Benchmark::Cl4).total(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
mod executor;
pub mod oblivious;

pub use executor::{count_benchmark, count_multi, count_plan, list_plan, MineOutcome};
