//! Software reference miner for the FINGERS reproduction.
//!
//! Executes compiled pattern-aware execution plans on CSR graphs by plain
//! depth-first search, exactly as the paper's Figure 2 loop nest does. This
//! is (a) the functional oracle every accelerator model is validated
//! against, and (b) the CPU baseline in spirit of AutoMine/GraphZero.
//!
//! The execution layer is task-based:
//!
//! - [`task::MiningTask`] — a contiguous run of level-0 roots, the unit of
//!   (parallel) work;
//! - [`scratch::ScratchArena`] — per-worker recycled candidate-set buffers,
//!   so steady-state mining performs no per-embedding heap allocation;
//! - [`scratch::BitmapCache`] — per-worker LRU of dense hub-adjacency
//!   bitmaps backing the third kernel tier, with the same bounded-allocation
//!   discipline ([`config::EngineConfig`] sizes both the hub set and the
//!   cache);
//! - [`sink::Sink`] — pluggable match consumers (counting, listing,
//!   statistics) over one shared interpreter;
//! - [`PlanMiner`] — the interpreter tying the three together;
//! - [`parallel`] — root-partitioned multi-threaded counting whose results
//!   are bit-identical to the sequential engine; the `try_count_*` variants
//!   isolate worker panics per task and surface them as typed
//!   [`EngineError`]s carrying the failed root partitions.
//!
//! The crate also contains a brute-force enumerator ([`brute`]) used to
//! validate the *compiler* itself (vertex orders, schedules, and symmetry
//! breaking) on small graphs; both it and the pattern-oblivious ESU oracle
//! ([`oblivious`]) get the same root-partitioned parallel treatment.
//!
//! # Example
//!
//! ```
//! use fingers_graph::GraphBuilder;
//! use fingers_mining::count_benchmark;
//! use fingers_pattern::benchmarks::Benchmark;
//!
//! // K4 contains exactly 4 triangles and 1 four-clique.
//! let g = GraphBuilder::new()
//!     .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
//!     .build();
//! assert_eq!(count_benchmark(&g, Benchmark::Tc).total(), 4);
//! assert_eq!(count_benchmark(&g, Benchmark::Cl4).total(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod cancel;
pub mod chaos;
pub mod config;
pub mod error;
mod executor;
pub mod gauge;
#[cfg(feature = "model-check")]
pub mod model;
pub mod oblivious;
pub mod parallel;
pub mod scratch;
pub mod sink;
pub mod task;

pub use cancel::{CancelKind, CancelToken};
pub use chaos::{ChaosPlan, ChaosSite};
pub use config::EngineConfig;
pub use error::{EngineError, PartitionFailure};
pub use executor::{
    count_benchmark, count_benchmark_with, count_multi, count_multi_with, count_plan,
    count_plan_with, list_plan, MineOutcome, PlanMiner, RunHalt,
};
pub use gauge::{GaugeScope, MemGauge};
pub use parallel::{
    count_benchmark_parallel, count_benchmark_parallel_with, count_multi_parallel,
    count_multi_parallel_with, count_plan_parallel, count_plan_parallel_trace,
    count_plan_parallel_with, try_count_benchmark_parallel, try_count_benchmark_parallel_with,
    try_count_multi_parallel, try_count_multi_parallel_with, try_count_plan_parallel,
    try_count_plan_parallel_governed, try_count_plan_parallel_shared, try_count_plan_parallel_with,
    try_sum_over_root_tasks, try_sum_over_root_tasks_cancellable,
};
pub use scratch::{BitmapCache, ScratchArena};
pub use sink::{CountSink, FnSink, ListSink, Sink};
pub use task::MiningTask;
