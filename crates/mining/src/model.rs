//! Model-checked harnesses for the mining crate's concurrency protocols.
//!
//! Each harness runs the *real* production types — [`StealPool`],
//! [`CancelToken`], [`MemGauge`]/[`GaugeScope`] — under the
//! [`fingers_conc::model`] bounded schedule explorer and asserts an invariant
//! that must hold in **every** interleaving within the preemption bound:
//!
//! 1. **Deque partition** — tasks claimed from a [`StealPool`] (including
//!    through the steal-and-split path) always partition the seeded root
//!    range: every root mined exactly once, none lost, none duplicated.
//! 2. **Cancel all-or-nothing** — replicating the worker protocol of
//!    `parallel::try_count_plan_parallel_governed`: if no worker observed
//!    the token cancelled, the summed result covers every root.
//! 3. **Gauge drain** — concurrent [`GaugeScope`] publishes into a
//!    parent/child gauge chain always drain both gauges back to baseline,
//!    and the recorded peak stays within the outstanding-publish envelope.
//!
//! A fourth harness drives the intentionally broken
//! [`StealPool::claim_racy`] and must *catch* its TOCTOU bug — evidence the
//! checker has teeth. The server crate hosts the phoenix-rebuild harness.
//!
//! Keep harnesses tiny: state-space size is exponential in schedule points.
//! The shapes below exhaust in well under a second each in release mode;
//! `tests/model_check.rs` asserts completeness, and the `conc_check` binary
//! (server crate) records the state-space statistics in
//! `BENCH_conc_check.json`.

use crate::cancel::CancelToken;
use crate::gauge::{GaugeScope, MemGauge};
use crate::parallel::StealPool;
use crate::task::MiningTask;
use fingers_conc::model::{check, CheckOptions, CheckReport};
use fingers_conc::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Roots seeded into the deque harnesses (kept tiny on purpose).
const DEQUE_ROOTS: usize = 4;

/// Collect every root of every task `me` can claim, via `claim`.
fn drain_pool(pool: &StealPool, me: usize) -> Vec<u32> {
    let mut mined = Vec::new();
    while let Some(t) = pool.claim(me) {
        mined.extend(t.roots());
    }
    mined
}

/// Invariant 1: claimed tasks partition the seeded roots, two workers
/// racing over striped deques (covers local pop and whole-task steal).
pub fn deque_partition_check(opts: CheckOptions) -> CheckReport {
    check("deque-partition", opts, |sim| {
        let tasks = MiningTask::partition(DEQUE_ROOTS, 3);
        let pool = Arc::new(StealPool::new(&tasks, 2));
        let workers: Vec<_> = (0..2)
            .map(|me| {
                let pool = Arc::clone(&pool);
                sim.spawn(move || drain_pool(&pool, me))
            })
            .collect();
        let mut mined: Vec<u32> = workers.into_iter().flat_map(|w| w.join()).collect();
        mined.sort_unstable();
        let expected: Vec<u32> = (0..DEQUE_ROOTS as u32).collect();
        assert_eq!(mined, expected, "claimed roots must partition the range");
    })
}

/// Invariant 1, split path: one worker owns a lone splittable task, the
/// other must go through `steal_from`'s `split_off_half` arm. The partition
/// must survive a steal-split racing the owner's own pop.
pub fn deque_split_check(opts: CheckOptions) -> CheckReport {
    check("deque-split", opts, |sim| {
        let tasks = vec![MiningTask {
            start: 0,
            end: DEQUE_ROOTS as u32,
        }];
        let pool = Arc::new(StealPool::new(&tasks, 2));
        let workers: Vec<_> = (0..2)
            .map(|me| {
                let pool = Arc::clone(&pool);
                sim.spawn(move || drain_pool(&pool, me))
            })
            .collect();
        let mut mined: Vec<u32> = workers.into_iter().flat_map(|w| w.join()).collect();
        mined.sort_unstable();
        let expected: Vec<u32> = (0..DEQUE_ROOTS as u32).collect();
        assert_eq!(mined, expected, "split steal must preserve the partition");
    })
}

/// Seeded-bug fixture: the same partition invariant over
/// [`StealPool::claim_racy`], which drops the deque lock between peek and
/// pop. The checker must find the schedule where a thief splits the peeked
/// task inside the window, double-mining its upper half.
pub fn deque_racy_check(opts: CheckOptions) -> CheckReport {
    check("deque-racy", opts, |sim| {
        let tasks = vec![MiningTask {
            start: 0,
            end: DEQUE_ROOTS as u32,
        }];
        let pool = Arc::new(StealPool::new(&tasks, 2));
        let workers: Vec<_> = (0..2)
            .map(|me| {
                let pool = Arc::clone(&pool);
                sim.spawn(move || {
                    let mut mined = Vec::new();
                    while let Some(t) = pool.claim_racy(me) {
                        mined.extend(t.roots());
                    }
                    mined
                })
            })
            .collect();
        let mut mined: Vec<u32> = workers.into_iter().flat_map(|w| w.join()).collect();
        mined.sort_unstable();
        let expected: Vec<u32> = (0..DEQUE_ROOTS as u32).collect();
        assert_eq!(mined, expected, "racy claim must break the partition");
    })
}

/// Invariant 2: the cancel protocol of the governed parallel engine. A
/// worker claims from a real pool and polls a real [`CancelToken`] at task
/// boundaries, latching the shared `interrupted` flag exactly as
/// `parallel.rs` workers do, while a second thread fires `cancel()` at an
/// arbitrary point — including inside the window between two task claims,
/// the only place a partial tally exists. All-or-nothing: if the worker
/// never observed the cancel, its result must cover every root (an observed
/// cancel makes the engine discard everything, so partial sums never leak).
/// One worker keeps the space small; the multi-worker claim protocol is
/// exhausted separately by the deque harnesses.
pub fn cancel_all_or_nothing_check(opts: CheckOptions) -> CheckReport {
    check("cancel-all-or-nothing", opts, |sim| {
        let roots = 2u32;
        let tasks = MiningTask::partition(roots as usize, 2);
        let pool = Arc::new(StealPool::new(&tasks, 1));
        let token = CancelToken::new();
        let interrupted = Arc::new(AtomicBool::new(false));
        let worker = {
            let pool = Arc::clone(&pool);
            let token = token.clone();
            let interrupted = Arc::clone(&interrupted);
            sim.spawn(move || {
                let mut local = 0u64;
                loop {
                    if token.is_cancelled() {
                        // ord: relaxed(mirrors the production worker protocol under test)
                        interrupted.store(true, Ordering::Relaxed);
                        break;
                    }
                    let Some(t) = pool.claim(0) else { break };
                    local += t.len() as u64;
                }
                local
            })
        };
        let canceller = {
            let token = token.clone();
            sim.spawn(move || token.cancel())
        };
        let total: u64 = worker.join();
        canceller.join();
        // ord: relaxed(verdict read after the worker has joined)
        if !interrupted.load(Ordering::Relaxed) {
            assert_eq!(
                total,
                u64::from(roots),
                "uncancelled verdict requires every root mined exactly once"
            );
        }
    })
}

/// Invariant 3: concurrent [`GaugeScope`]s over a parent/child gauge chain.
/// After every scope has dropped, both gauges read exactly zero (nothing
/// lost to a racing release, nothing double-charged and stranded), and the
/// peak lies within [largest single publish, sum of publishes].
pub fn gauge_drain_check(opts: CheckOptions) -> CheckReport {
    check("gauge-drain", opts, |sim| {
        let global = MemGauge::new();
        let query = global.child();
        let workers: Vec<_> = [30u64, 50]
            .iter()
            .map(|&amount| {
                let query = query.clone();
                sim.spawn(move || {
                    let mut scope = GaugeScope::new(query, Some(60));
                    if let Some((used, budget)) = scope.publish(amount) {
                        assert!(
                            used > budget,
                            "budget violation must only fire past the budget"
                        );
                    }
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        assert_eq!(query.bytes(), 0, "query gauge must drain to baseline");
        assert_eq!(global.bytes(), 0, "global gauge must drain to baseline");
        let peak = global.peak_bytes();
        assert!(peak >= 50, "peak covers the largest single publish: {peak}");
        assert!(peak <= 80, "peak bounded by the sum of publishes: {peak}");
    })
}
