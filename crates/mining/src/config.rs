//! Engine-wide tuning knobs for the software miner.

use std::sync::Arc;

use fingers_graph::hubs::HubSet;
use fingers_graph::CsrGraph;

/// Default number of top-degree vertices whose adjacencies are eligible
/// for the dense-bitmap kernel tier. Power-law set-op time concentrates in
/// hubs, but the crossover microbench showed the win keeps growing well
/// past the first few dozen: 1024 hubs roughly doubles clique-counting
/// throughput on the heavy-tail stand-ins where 64 barely moved it. `k`
/// also bounds the most bitmaps a cache could ever hold.
pub const DEFAULT_BITMAP_HUBS: usize = 1024;

/// Default per-worker bitmap-cache capacity in resident bitmaps. Sized to
/// match [`DEFAULT_BITMAP_HUBS`] so a warm cache never evicts (eviction
/// churn was the dominant cost of a small cache). Each slot costs
/// `⌈n/64⌉` words for an n-vertex graph (≈ 12 KiB at n = 100 000), but
/// bitmaps are built lazily, so a worker only pays for hubs whose
/// adjacencies its tasks actually probe.
pub const DEFAULT_BITMAP_CACHE_SLOTS: usize = 1024;

/// Tuning configuration of the plan-driven mining engine.
///
/// Every setting is performance-only: **counts are identical under every
/// configuration** (all kernel tiers are property-tested equivalent), so
/// configs can be swept freely in benchmarks without re-validating
/// results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// How many top-degree vertices get dense bitmaps (0 disables the
    /// bitmap tier entirely; merge/galloping dispatch still applies).
    pub bitmap_hubs: usize,
    /// Per-worker bitmap-cache capacity (resident hub bitmaps). Clamped to
    /// at least 1 when the bitmap tier is enabled.
    pub bitmap_cache_slots: usize,
    /// Route terminal-counting plan levels through the fused count kernels
    /// (count + bound pushing, no leaf-set materialization; DESIGN.md
    /// § count fusion & bound pushing). Counting sinks only — the listing
    /// path is unaffected either way. Off reinstates the materialize-then-
    /// count baseline, for determinism sweeps and before/after benchmarks
    /// (CLI `--no-count-fusion`).
    pub fuse_terminal_counts: bool,
    /// Let the adaptive tier choosers pick the SIMD block-compare kernels
    /// ([`fingers_setops::simd`]) in the merge's balanced region. A policy
    /// toggle only: the selectors AND it with the build/CPU probe, so `true`
    /// on a machine without the vector path degrades silently to the
    /// scalar tiers. Off reinstates the three-tier baseline (CLI
    /// `--no-simd`).
    pub simd: bool,
    /// Let parallel workers steal root-range tasks from each other's
    /// deques instead of claiming from the shared cursor. Counts are
    /// bit-identical either way (the reduction is an order-independent
    /// `u64` sum); off reinstates the shared-cursor baseline (CLI
    /// `--no-steal`).
    pub work_stealing: bool,
    /// Per-query scratch-memory budget in bytes (`None` = unlimited). When
    /// a query's combined metered footprint — scratch arenas, bitmap
    /// caches, and listing sinks across all its workers — crosses the
    /// budget, the run aborts cooperatively at the next root-task boundary
    /// with [`crate::EngineError::MemBudgetExceeded`] and discards every
    /// partial count (the cancellation contract). A budget can only abort
    /// a run, never change what a completed run counts, so the "counts are
    /// identical under every configuration" guarantee still holds for
    /// every run that completes.
    pub query_mem_budget: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            bitmap_hubs: DEFAULT_BITMAP_HUBS,
            bitmap_cache_slots: DEFAULT_BITMAP_CACHE_SLOTS,
            fuse_terminal_counts: true,
            simd: true,
            work_stealing: true,
            query_mem_budget: None,
        }
    }
}

impl EngineConfig {
    /// The merge/galloping-only baseline: bitmap tier disabled.
    pub fn without_bitmap() -> Self {
        Self {
            bitmap_hubs: 0,
            ..Self::default()
        }
    }

    /// The materialize-every-level baseline: terminal-count fusion off.
    pub fn without_count_fusion() -> Self {
        Self {
            fuse_terminal_counts: false,
            ..Self::default()
        }
    }

    /// The scalar-kernels baseline: SIMD tier disabled (merge, galloping,
    /// and bitmap dispatch still apply).
    pub fn without_simd() -> Self {
        Self {
            simd: false,
            ..Self::default()
        }
    }

    /// The shared-cursor baseline: work stealing disabled.
    pub fn without_stealing() -> Self {
        Self {
            work_stealing: false,
            ..Self::default()
        }
    }

    /// A config enforcing a per-query scratch-memory budget of `bytes`.
    pub fn with_query_mem_budget(bytes: u64) -> Self {
        Self {
            query_mem_budget: Some(bytes),
            ..Self::default()
        }
    }

    /// A config with the given hub budget and default cache sizing.
    pub fn with_bitmap_hubs(bitmap_hubs: usize) -> Self {
        Self {
            bitmap_hubs,
            ..Self::default()
        }
    }

    /// Whether the bitmap tier is enabled.
    pub fn bitmap_enabled(&self) -> bool {
        self.bitmap_hubs > 0
    }

    /// Identifies this config's hub set for `graph`, shared (via `Arc`)
    /// across the parallel workers so top-k selection runs once per mining
    /// call rather than once per worker. `None` when the tier is disabled
    /// or no vertex qualifies.
    pub fn hub_set(&self, graph: &CsrGraph) -> Option<Arc<HubSet>> {
        if !self.bitmap_enabled() {
            return None;
        }
        let hubs = HubSet::top_k(graph, self.bitmap_hubs);
        if hubs.is_empty() {
            None
        } else {
            Some(Arc::new(hubs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingers_graph::GraphBuilder;

    #[test]
    fn default_enables_bitmap_tier() {
        let c = EngineConfig::default();
        assert!(c.bitmap_enabled());
        assert_eq!(c.bitmap_hubs, DEFAULT_BITMAP_HUBS);
        assert!(!EngineConfig::without_bitmap().bitmap_enabled());
        assert_eq!(EngineConfig::with_bitmap_hubs(3).bitmap_hubs, 3);
    }

    #[test]
    fn default_enables_count_fusion() {
        assert!(EngineConfig::default().fuse_terminal_counts);
        let off = EngineConfig::without_count_fusion();
        assert!(!off.fuse_terminal_counts);
        assert!(off.bitmap_enabled(), "fusion toggle must not touch bitmap");
    }

    #[test]
    fn default_enables_simd_and_stealing() {
        let c = EngineConfig::default();
        assert!(c.simd);
        assert!(c.work_stealing);
        let no_simd = EngineConfig::without_simd();
        assert!(!no_simd.simd);
        assert!(no_simd.work_stealing, "simd toggle must not touch stealing");
        let no_steal = EngineConfig::without_stealing();
        assert!(!no_steal.work_stealing);
        assert!(no_steal.simd, "steal toggle must not touch simd");
    }

    #[test]
    fn hub_set_respects_toggle_and_empty_graphs() {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2)]).build();
        assert!(EngineConfig::without_bitmap().hub_set(&g).is_none());
        let hubs = EngineConfig::default().hub_set(&g).expect("hubs");
        assert!(hubs.contains(1));
        let empty = GraphBuilder::new().vertex_count(3).build();
        assert!(EngineConfig::default().hub_set(&empty).is_none());
    }
}
