//! Deterministic seeded fault injection for robustness testing.
//!
//! The self-healing claims of the service layer (worker pools that rebuild
//! after panics, budgets that abort instead of OOM-ing, sockets that close
//! cleanly) are only credible if they are *exercised*. This module plants
//! cheap fault points at the places real failures originate —
//!
//! - [`ChaosSite::Alloc`]: fresh scratch/bitmap allocations (a simulated
//!   allocation failure panics, which the engine's per-task isolation
//!   converts into a typed [`crate::EngineError::WorkerPanic`]);
//! - [`ChaosSite::WorkerPanic`]: an engine worker dying mid-task;
//! - [`ChaosSite::SchedWorker`]: a scheduler pool worker dying outside the
//!   engine (exercises the supervisor's pool rebuild);
//! - [`ChaosSite::SocketIo`]: a connection handler dropping a live socket
//!   mid-request (clients see a transport failure, never a hang)
//!
//! — and drives them from one seeded plan. Decisions are pure functions of
//! `(seed, site, draw index)`: for a fixed seed, the multiset of faults
//! injected over the first N draws at a site is exactly reproducible, so a
//! chaos soak that passes once passes every time (which faults land on
//! which query still varies with thread interleaving — that is the point
//! of a soak).
//!
//! The plan is process-global (fault points live deep inside per-worker
//! hot structures where threading a handle through every layer would cost
//! more than it tests). When no plan is installed — the default, and the
//! only supported state outside dedicated chaos tests — every probe is a
//! single relaxed atomic load. Injected panics carry the
//! [`CHAOS_PANIC_PREFIX`] marker so harnesses can tell injected faults
//! from real bugs.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Marker prefixing every chaos-injected panic message.
pub const CHAOS_PANIC_PREFIX: &str = "chaos:";

/// A fault-injection point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosSite {
    /// Fresh heap allocation in the scratch arena / bitmap cache.
    Alloc,
    /// Engine mining worker, per claimed task.
    WorkerPanic,
    /// Scheduler pool worker, per dequeued job.
    SchedWorker,
    /// Server connection handler, per protocol request.
    SocketIo,
}

const SITES: usize = 4;

impl ChaosSite {
    fn index(self) -> usize {
        match self {
            ChaosSite::Alloc => 0,
            ChaosSite::WorkerPanic => 1,
            ChaosSite::SchedWorker => 2,
            ChaosSite::SocketIo => 3,
        }
    }

    /// Human-readable site name (report keys).
    pub fn name(self) -> &'static str {
        match self {
            ChaosSite::Alloc => "alloc",
            ChaosSite::WorkerPanic => "worker-panic",
            ChaosSite::SchedWorker => "sched-worker",
            ChaosSite::SocketIo => "socket-io",
        }
    }
}

/// Per-site fault rates in permille (0 = never, 1000 = every draw), plus
/// the seed that makes the draw sequence reproducible.
///
/// Sites draw at wildly different frequencies — an engine probes the
/// alloc site thousands of times per query but the socket site once per
/// request — so a rate alone cannot shape a survivable storm.
/// [`max_per_site`](Self::max_per_site) bounds the total faults any one
/// site injects: the storm front-loads its faults, then the site goes
/// quiet and recovery can actually be observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed of the decision stream.
    pub seed: u64,
    /// Permille of fresh allocations that fail.
    pub alloc_per_mille: u32,
    /// Permille of engine tasks whose worker panics.
    pub worker_panic_per_mille: u32,
    /// Permille of scheduled jobs whose pool worker panics.
    pub sched_worker_per_mille: u32,
    /// Permille of protocol requests whose connection is dropped.
    pub socket_io_per_mille: u32,
    /// Ceiling on faults injected per site (`u64::MAX` = unbounded). The
    /// hit *schedule* stays seed-deterministic; under concurrency the cap
    /// admits the first `max_per_site` scheduled hits in draw order.
    pub max_per_site: u64,
}

impl ChaosPlan {
    /// A plan injecting nothing (rates all zero) under `seed` — a base to
    /// build on with struct update syntax.
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            alloc_per_mille: 0,
            worker_panic_per_mille: 0,
            sched_worker_per_mille: 0,
            socket_io_per_mille: 0,
            max_per_site: u64::MAX,
        }
    }

    fn rate(&self, site: ChaosSite) -> u32 {
        match site {
            ChaosSite::Alloc => self.alloc_per_mille,
            ChaosSite::WorkerPanic => self.worker_panic_per_mille,
            ChaosSite::SchedWorker => self.sched_worker_per_mille,
            ChaosSite::SocketIo => self.socket_io_per_mille,
        }
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SEED: AtomicU64 = AtomicU64::new(0);
static CAP: AtomicU64 = AtomicU64::new(u64::MAX);
static RATES: [AtomicU32; SITES] = [
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
    AtomicU32::new(0),
];
static DRAWS: [AtomicU64; SITES] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static INJECTED: [AtomicU64; SITES] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Installs `plan` process-wide and resets the draw/injection counters.
/// Intended for dedicated chaos tests and the soak harness only; every
/// other test must run with chaos uninstalled (integration-test binaries
/// are separate processes, so a chaos suite cannot leak into its
/// neighbours).
pub fn install(plan: ChaosPlan) {
    // ord: relaxed(plan fields; the ACTIVE release store below publishes them)
    SEED.store(plan.seed, Ordering::Relaxed);
    // ord: relaxed(plan fields; the ACTIVE release store below publishes them)
    CAP.store(plan.max_per_site, Ordering::Relaxed);
    for site in [
        ChaosSite::Alloc,
        ChaosSite::WorkerPanic,
        ChaosSite::SchedWorker,
        ChaosSite::SocketIo,
    ] {
        let i = site.index();
        // ord: relaxed(plan fields; the ACTIVE release store below publishes them)
        RATES[i].store(plan.rate(site), Ordering::Relaxed);
        // ord: relaxed(plan fields; the ACTIVE release store below publishes them)
        DRAWS[i].store(0, Ordering::Relaxed);
        // ord: relaxed(plan fields; the ACTIVE release store below publishes them)
        INJECTED[i].store(0, Ordering::Relaxed);
    }
    // ord: release(publishes the plan fields stored above to any probe that acquires ACTIVE)
    ACTIVE.store(true, Ordering::Release);
}

/// Uninstalls any active plan; every subsequent probe is a no-op again.
pub fn clear() {
    // ord: release(pairs with the probes' acquire load; uninstall needs no data handoff but stays symmetric)
    ACTIVE.store(false, Ordering::Release);
}

/// Whether a chaos plan is currently installed.
pub fn active() -> bool {
    // ord: acquire(pairs with install's release store so the plan fields are visible)
    ACTIVE.load(Ordering::Acquire)
}

/// Faults injected so far at `site` under the current plan.
pub fn injected(site: ChaosSite) -> u64 {
    // ord: relaxed(test-side counter read after the run being measured has joined)
    INJECTED[site.index()].load(Ordering::Relaxed)
}

/// SplitMix64: the standard 64-bit finalizer, statistically strong enough
/// for fault scheduling (and dependency-free).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws one fault decision at `site`. `false` always when no plan is
/// installed; otherwise `true` on the deterministic per-mille schedule.
pub fn should_fail(site: ChaosSite) -> bool {
    // Upgraded from relaxed: a probe observing ACTIVE=true must also see
    // the seed/rates/cap stored by install before its release store.
    // ord: acquire(pairs with install's release store, which publishes the plan fields)
    if !ACTIVE.load(Ordering::Acquire) {
        return false;
    }
    let i = site.index();
    // ord: relaxed(plan fields are ordered by the ACTIVE acquire/release pair above)
    let rate = RATES[i].load(Ordering::Relaxed);
    if rate == 0 {
        return false;
    }
    // ord: relaxed(independent draw ticket; cross-thread draw order is intentionally unspecified)
    let draw = DRAWS[i].fetch_add(1, Ordering::Relaxed);
    // ord: relaxed(plan fields are ordered by the ACTIVE acquire/release pair above)
    let seed = SEED.load(Ordering::Relaxed);
    // Salt the site index in so sites draw independent streams.
    let hit = splitmix64(seed ^ ((i as u64) << 56) ^ draw) % 1000 < u64::from(rate);
    if !hit {
        return false;
    }
    // A scheduled hit past the per-site ceiling is withheld (and not
    // counted), so `injected()` never exceeds the cap.
    // ord: relaxed(plan fields are ordered by the ACTIVE acquire/release pair above)
    let cap = CAP.load(Ordering::Relaxed);
    // ord: relaxed(counter pair; over-reservation is corrected by the fetch_sub below)
    if INJECTED[i].fetch_add(1, Ordering::Relaxed) >= cap {
        // ord: relaxed(undoes this thread's own reservation)
        INJECTED[i].fetch_sub(1, Ordering::Relaxed);
        return false;
    }
    true
}

/// Probes the allocation site and panics — simulating the allocation
/// failure the real allocator would abort on — when the plan says so.
/// Callers sit under the engine's per-task `catch_unwind`, so the panic
/// surfaces as a typed [`crate::EngineError::WorkerPanic`], never a crash.
pub fn maybe_fail_alloc(what: &str) {
    if should_fail(ChaosSite::Alloc) {
        panic!("{CHAOS_PANIC_PREFIX} injected allocation failure ({what})");
    }
}

/// Probes the engine-worker site and panics when the plan says so.
pub fn maybe_panic_worker() {
    if should_fail(ChaosSite::WorkerPanic) {
        panic!("{CHAOS_PANIC_PREFIX} injected mining-worker panic");
    }
}

/// Probes the scheduler-worker site and panics when the plan says so.
pub fn maybe_panic_sched_worker() {
    if should_fail(ChaosSite::SchedWorker) {
        panic!("{CHAOS_PANIC_PREFIX} injected scheduler-worker panic");
    }
}

/// Whether `message` (a panic payload) is a chaos-injected fault rather
/// than a real bug.
pub fn is_chaos_panic(message: &str) -> bool {
    message.starts_with(CHAOS_PANIC_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All chaos unit tests share the process-global plan, so they run
    /// under one lock (and restore the uninstalled state on exit).
    fn with_plan<R>(plan: ChaosPlan, f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        install(plan);
        let r = f();
        clear();
        r
    }

    #[test]
    fn uninstalled_chaos_never_fires() {
        clear();
        assert!(!active());
        for _ in 0..100 {
            assert!(!should_fail(ChaosSite::Alloc));
        }
    }

    #[test]
    fn decision_stream_is_seed_deterministic() {
        let plan = ChaosPlan {
            worker_panic_per_mille: 250,
            ..ChaosPlan::quiet(42)
        };
        let first: Vec<bool> = with_plan(plan, || {
            (0..200)
                .map(|_| should_fail(ChaosSite::WorkerPanic))
                .collect()
        });
        let second: Vec<bool> = with_plan(plan, || {
            (0..200)
                .map(|_| should_fail(ChaosSite::WorkerPanic))
                .collect()
        });
        assert_eq!(first, second);
        let hits = first.iter().filter(|h| **h).count();
        assert!(hits > 10 && hits < 100, "250‰ over 200 draws hit {hits}×");
        assert_eq!(with_plan(plan, || injected(ChaosSite::WorkerPanic)), 0);
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = ChaosPlan {
            alloc_per_mille: 500,
            socket_io_per_mille: 500,
            ..ChaosPlan::quiet(7)
        };
        let (a, s): (Vec<bool>, Vec<bool>) = with_plan(plan, || {
            (
                (0..64).map(|_| should_fail(ChaosSite::Alloc)).collect(),
                (0..64).map(|_| should_fail(ChaosSite::SocketIo)).collect(),
            )
        });
        assert_ne!(a, s, "same-rate sites must not fire in lockstep");
    }

    #[test]
    fn injected_panics_carry_the_marker() {
        let plan = ChaosPlan {
            worker_panic_per_mille: 1000,
            ..ChaosPlan::quiet(1)
        };
        let message = with_plan(plan, || {
            let payload = std::panic::catch_unwind(maybe_panic_worker)
                .expect_err("1000‰ must fire on every draw");
            crate::error::panic_message(payload)
        });
        assert!(is_chaos_panic(&message), "{message}");
        assert!(!is_chaos_panic("index out of bounds"));
    }

    #[test]
    fn per_site_cap_bounds_injections() {
        let plan = ChaosPlan {
            alloc_per_mille: 1000,
            max_per_site: 3,
            ..ChaosPlan::quiet(9)
        };
        with_plan(plan, || {
            let hits = (0..50).filter(|_| should_fail(ChaosSite::Alloc)).count();
            assert_eq!(hits, 3, "cap must stop a 1000‰ site after 3 faults");
            assert_eq!(injected(ChaosSite::Alloc), 3);
        });
    }

    #[test]
    fn zero_rate_site_never_fires_even_when_active() {
        let plan = ChaosPlan {
            socket_io_per_mille: 1000,
            ..ChaosPlan::quiet(3)
        };
        with_plan(plan, || {
            for _ in 0..50 {
                assert!(!should_fail(ChaosSite::Alloc));
            }
            assert!(should_fail(ChaosSite::SocketIo));
        });
    }
}
