//! Plan-driven DFS execution (the paper's Figure 2 as an interpreter).

use fingers_graph::{CsrGraph, VertexId};
use fingers_pattern::benchmarks::Benchmark;
use fingers_pattern::{ExecutionPlan, MultiPlan, PlanOp};
use fingers_setops::{merge, Elem};
use serde::{Deserialize, Serialize};

/// Result of mining a (multi-)plan: per-pattern embedding counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MineOutcome {
    /// One embedding count per constituent plan, in plan order.
    pub per_pattern: Vec<u64>,
}

impl MineOutcome {
    /// Total embeddings across all patterns.
    pub fn total(&self) -> u64 {
        self.per_pattern.iter().sum()
    }
}

/// Counts embeddings of one compiled plan in `graph`.
pub fn count_plan(graph: &CsrGraph, plan: &ExecutionPlan) -> u64 {
    let mut count = 0u64;
    run_plan(graph, plan, &mut |_| count += 1);
    count
}

/// Invokes `visitor` with every embedding of `plan` in `graph` (the mapped
/// input-graph vertex for each level, in level order).
pub fn list_plan<F: FnMut(&[VertexId])>(graph: &CsrGraph, plan: &ExecutionPlan, visitor: &mut F) {
    run_plan(graph, plan, visitor);
}

/// Counts embeddings of every pattern in a multi-plan.
pub fn count_multi(graph: &CsrGraph, multi: &MultiPlan) -> MineOutcome {
    MineOutcome {
        per_pattern: multi.plans().iter().map(|p| count_plan(graph, p)).collect(),
    }
}

/// Counts embeddings for one of the paper's benchmark workloads.
pub fn count_benchmark(graph: &CsrGraph, benchmark: Benchmark) -> MineOutcome {
    count_multi(graph, &benchmark.plan())
}

struct Dfs<'a, F> {
    graph: &'a CsrGraph,
    plan: &'a ExecutionPlan,
    visitor: &'a mut F,
    mapped: Vec<VertexId>,
    /// Materialized candidate sets, indexed by target level.
    sets: Vec<Option<Vec<Elem>>>,
}

fn run_plan<F: FnMut(&[VertexId])>(graph: &CsrGraph, plan: &ExecutionPlan, visitor: &mut F) {
    let k = plan.pattern_size();
    let mut dfs = Dfs {
        graph,
        plan,
        visitor,
        mapped: Vec::with_capacity(k),
        sets: vec![None; k],
    };
    if k == 1 {
        for v in graph.vertices() {
            dfs.mapped.push(v);
            (dfs.visitor)(&dfs.mapped);
            dfs.mapped.pop();
        }
        return;
    }
    for v in graph.vertices() {
        dfs.enter(0, v);
    }
}

impl<F: FnMut(&[VertexId])> Dfs<'_, F> {
    /// Matches `v` at `level`, runs the level's scheduled set ops, recurses.
    fn enter(&mut self, level: usize, v: VertexId) {
        let k = self.plan.pattern_size();
        self.mapped.push(v);

        // Run the compiled actions for this level, remembering what to undo.
        let mut undo: Vec<(usize, Option<Vec<Elem>>)> = Vec::new();
        for op in self.plan.actions_at(level) {
            let target = op.target();
            let new_set = self.evaluate(op, level);
            undo.push((target, self.sets[target].take()));
            self.sets[target] = Some(new_set);
        }

        let next = level + 1;
        if next < k {
            // Iterate candidates for the next level.
            let candidates = self.sets[next]
                .take()
                .expect("schedule materializes S_{next} by level next-1");
            let start = self.candidate_start(next, &candidates);
            for &c in &candidates[start..] {
                if self.mapped.contains(&c) {
                    continue; // embeddings map distinct vertices
                }
                if next + 1 == k {
                    // Leaf: no deeper sets to build; emit directly.
                    self.mapped.push(c);
                    (self.visitor)(&self.mapped);
                    self.mapped.pop();
                } else {
                    self.enter(next, c);
                }
            }
            self.sets[next] = Some(candidates);
        }

        for (target, old) in undo.into_iter().rev() {
            self.sets[target] = old;
        }
        self.mapped.pop();
    }

    /// First candidate index satisfying the level's symmetry-breaking lower
    /// bounds (`u_level > u_a`), found by binary search on the sorted set.
    fn candidate_start(&self, level: usize, candidates: &[Elem]) -> usize {
        let bounds = &self.plan.schedule(level).lower_bounds;
        match bounds.iter().map(|&a| self.mapped[a]).max() {
            Some(bound) => candidates.partition_point(|&c| c <= bound),
            None => 0,
        }
    }

    /// Computes the new value of an op's target set.
    fn evaluate(&self, op: &PlanOp, level: usize) -> Vec<Elem> {
        let current = self.mapped[level];
        match *op {
            PlanOp::Init { .. } => self.graph.neighbors(current).to_vec(),
            PlanOp::InitAnti { short, .. } => {
                // N(u_level) − N(u_short): the postponed anti-subtraction.
                let long = self.graph.neighbors(current);
                let short_list = self.graph.neighbors(self.mapped[short]);
                merge::apply(fingers_setops::SetOpKind::AntiSubtract, short_list, long)
            }
            PlanOp::Apply { target, list, kind } => {
                let short = self.sets[target]
                    .as_ref()
                    .expect("Apply requires a materialized set");
                let long = self.graph.neighbors(self.mapped[list]);
                merge::apply(kind, short, long)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingers_graph::gen::erdos_renyi;
    use fingers_graph::GraphBuilder;
    use fingers_pattern::{Induced, Pattern};

    fn complete(n: usize) -> CsrGraph {
        let mut edges = Vec::new();
        for a in 0..n as VertexId {
            for b in (a + 1)..n as VertexId {
                edges.push((a, b));
            }
        }
        GraphBuilder::new().edges(edges).build()
    }

    fn choose(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let mut r = 1u64;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn triangles_in_complete_graphs() {
        for n in 3..=8 {
            let g = complete(n);
            let got = count_benchmark(&g, Benchmark::Tc).total();
            assert_eq!(got, choose(n as u64, 3), "K{n}");
        }
    }

    #[test]
    fn cliques_in_complete_graphs() {
        let g = complete(8);
        assert_eq!(count_benchmark(&g, Benchmark::Cl4).total(), choose(8, 4));
        assert_eq!(count_benchmark(&g, Benchmark::Cl5).total(), choose(8, 5));
    }

    #[test]
    fn vertex_induced_cycles_absent_in_complete_graphs() {
        // Every 4-subset of K_n has chords, so no *vertex-induced* 4-cycle.
        let g = complete(6);
        assert_eq!(count_benchmark(&g, Benchmark::Cyc).total(), 0);
        // Same for tailed triangles and diamonds (missing edges required).
        assert_eq!(count_benchmark(&g, Benchmark::Tt).total(), 0);
        assert_eq!(count_benchmark(&g, Benchmark::Dia).total(), 0);
    }

    #[test]
    fn edge_induced_cycles_in_complete_graph() {
        // Each 4-subset of K_n contains 3 (edge-induced) 4-cycles.
        let g = complete(6);
        let plan = ExecutionPlan::compile(&Pattern::four_cycle(), Induced::Edge);
        assert_eq!(count_plan(&g, &plan), 3 * choose(6, 4));
    }

    #[test]
    fn wedges_in_star() {
        // Star with c leaves: C(c, 2) wedges (vertex-induced), no triangles.
        let g = GraphBuilder::new().edges([(0, 1), (0, 2), (0, 3), (0, 4)]).build();
        let out = count_benchmark(&g, Benchmark::Mc3);
        assert_eq!(out.per_pattern, vec![0, 6]);
    }

    #[test]
    fn motif_census_covers_all_connected_triads() {
        // In any graph, #triangles + #wedges = number of connected 3-vertex
        // induced subgraphs. Cross-check on a random graph by direct count.
        let g = erdos_renyi(40, 120, 5);
        let out = count_benchmark(&g, Benchmark::Mc3);
        let mut triangles = 0u64;
        let mut wedges = 0u64;
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                for c in (b + 1)..40 {
                    let e = [g.has_edge(a, b), g.has_edge(a, c), g.has_edge(b, c)];
                    match e.iter().filter(|&&x| x).count() {
                        3 => triangles += 1,
                        2 => wedges += 1,
                        _ => {}
                    }
                }
            }
        }
        assert_eq!(out.per_pattern, vec![triangles, wedges]);
    }

    #[test]
    fn figure_1_tailed_triangle_embeddings() {
        // A Figure-1-style input graph: triangle {1, 2, 3}, with 4 and 5
        // hanging off it so that {2, 1, 3, 5} is a tailed-triangle
        // embedding (u0=2, {u1,u2}={1,3}, tail u3=5 adjacent only to 2) —
        // the example embedding the paper's Section 2.1 names.
        let g = GraphBuilder::new()
            .edges([(1, 2), (1, 3), (2, 3), (2, 4), (2, 5), (3, 4)])
            .build();
        let plan = ExecutionPlan::compile(&Pattern::tailed_triangle(), Induced::Vertex);
        let mut found = Vec::new();
        list_plan(&g, &plan, &mut |emb| found.push(emb.to_vec()));
        assert!(
            found.iter().any(|e| e[0] == 2 && e[3] == 5 && {
                let mut tri = [e[1], e[2]];
                tri.sort_unstable();
                tri == [1, 3]
            }),
            "expected embedding 2-{{1,3}}-5 in {found:?}"
        );
        // Each embedding's vertices are distinct.
        for e in &found {
            let mut s = e.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 4, "duplicate vertices in {e:?}");
        }
    }

    #[test]
    fn single_vertex_pattern_counts_vertices() {
        let g = erdos_renyi(10, 12, 1);
        let plan = ExecutionPlan::compile(&Pattern::from_edges_named(1, &[], "v"), Induced::Vertex);
        assert_eq!(count_plan(&g, &plan), 10);
    }

    #[test]
    fn empty_graph_counts_zero() {
        let g = GraphBuilder::new().vertex_count(5).build();
        for b in Benchmark::ALL {
            assert_eq!(count_benchmark(&g, b).total(), 0, "{b}");
        }
    }

    #[test]
    fn listed_embeddings_satisfy_restrictions() {
        let g = erdos_renyi(25, 90, 13);
        let plan = ExecutionPlan::compile(&Pattern::four_cycle(), Induced::Vertex);
        let mut count = 0u64;
        list_plan(&g, &plan, &mut |emb| {
            count += 1;
            for &(a, b) in plan.restrictions() {
                assert!(emb[a] < emb[b], "restriction u{a} < u{b} violated by {emb:?}");
            }
        });
        assert_eq!(count, count_plan(&g, &plan));
    }

    #[test]
    fn listed_embeddings_have_pattern_edges() {
        let g = erdos_renyi(20, 70, 21);
        for p in [Pattern::diamond(), Pattern::tailed_triangle()] {
            let plan = ExecutionPlan::compile(&p, Induced::Vertex);
            list_plan(&g, &plan, &mut |emb| {
                let pat = plan.pattern();
                for a in 0..pat.size() {
                    for b in (a + 1)..pat.size() {
                        assert_eq!(
                            pat.are_adjacent(a, b),
                            g.has_edge(emb[a], emb[b]),
                            "vertex-induced adjacency mismatch at ({a},{b}) in {emb:?}"
                        );
                    }
                }
            });
        }
    }

    #[test]
    fn wedges_on_paths_closed_form() {
        // A path on n vertices has exactly n−2 wedges and nothing else.
        for n in [3u32, 5, 9] {
            let g = GraphBuilder::new()
                .edges((0..n - 1).map(|i| (i, i + 1)))
                .build();
            let out = count_benchmark(&g, Benchmark::Mc3);
            assert_eq!(out.per_pattern, vec![0, (n - 2) as u64], "P{n}");
        }
    }

    #[test]
    fn cycles_on_rings_closed_form() {
        // C4 has one 4-cycle; C5 has none (vertex-induced 4-cycles need an
        // induced square); C6 likewise none, but C6 has 4-paths etc.
        let ring = |n: u32| {
            GraphBuilder::new()
                .edges((0..n).map(|i| (i, (i + 1) % n)))
                .build()
        };
        assert_eq!(count_benchmark(&ring(4), Benchmark::Cyc).total(), 1);
        assert_eq!(count_benchmark(&ring(5), Benchmark::Cyc).total(), 0);
        assert_eq!(count_benchmark(&ring(6), Benchmark::Cyc).total(), 0);
    }

    #[test]
    fn disconnected_components_mine_independently() {
        // Two disjoint K4s: counts double a single K4's.
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    edges.push((base + a, base + b));
                }
            }
        }
        let g = GraphBuilder::new().edges(edges).build();
        assert_eq!(count_benchmark(&g, Benchmark::Tc).total(), 8);
        assert_eq!(count_benchmark(&g, Benchmark::Cl4).total(), 2);
    }
}
