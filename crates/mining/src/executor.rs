//! Plan-driven DFS execution (the paper's Figure 2 as an interpreter).
//!
//! The interpreter is layered, replacing the seed's monolithic closure
//! walker:
//!
//! - [`PlanMiner`] — a reusable worker that executes [`MiningTask`]s (runs
//!   of level-0 roots) against one compiled plan, materializing candidate
//!   sets into a [`ScratchArena`] so steady-state mining never allocates
//!   per embedding.
//! - [`Sink`] — what happens at each match: [`CountSink`] counts leaf runs
//!   in bulk, [`FnSink`] materializes embeddings for listing.
//! - [`count_plan`] / [`list_plan`] / [`count_multi`] — thin sequential
//!   wrappers over the engine, API-compatible with the seed.
//! - [`crate::parallel`] — root-partitioned execution of the same engine
//!   across threads, with an order-independent reduction.

// lint: hot-path(alloc)

use crate::config::EngineConfig;
use crate::gauge::{GaugeScope, MemGauge};
use crate::scratch::{BitmapCache, ScratchArena};
use crate::sink::{CountSink, FnSink, Sink};
use crate::task::MiningTask;
use fingers_graph::hubs::HubSet;
use fingers_graph::{CsrGraph, VertexId};
use fingers_pattern::benchmarks::Benchmark;
use fingers_pattern::{ExecutionPlan, MultiPlan, PlanOp};
use fingers_setops::adaptive::{select_count_tier_with, select_tier_with, KernelTier};
use fingers_setops::bitmap::NeighborBitmap;
use fingers_setops::{bitmap, bound, galloping, merge, simd, Elem, SetOpKind};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Result of mining a (multi-)plan: per-pattern embedding counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MineOutcome {
    /// One embedding count per constituent plan, in plan order.
    pub per_pattern: Vec<u64>,
}

impl MineOutcome {
    /// Total embeddings across all patterns.
    pub fn total(&self) -> u64 {
        self.per_pattern.iter().sum()
    }
}

/// Counts embeddings of one compiled plan in `graph` with the default
/// [`EngineConfig`].
pub fn count_plan(graph: &CsrGraph, plan: &ExecutionPlan) -> u64 {
    count_plan_with(graph, plan, &EngineConfig::default())
}

/// Counts embeddings of one compiled plan under an explicit engine config.
/// The count is identical for every config — only timing changes.
pub fn count_plan_with(graph: &CsrGraph, plan: &ExecutionPlan, config: &EngineConfig) -> u64 {
    let mut sink = CountSink::default();
    PlanMiner::with_config(graph, plan, config).run(MiningTask::all(graph), &mut sink);
    sink.count
}

/// Invokes `visitor` with every embedding of `plan` in `graph` (the mapped
/// input-graph vertex for each level, in level order).
pub fn list_plan<F: FnMut(&[VertexId])>(graph: &CsrGraph, plan: &ExecutionPlan, visitor: &mut F) {
    let mut sink = FnSink::new(visitor);
    PlanMiner::new(graph, plan).run(MiningTask::all(graph), &mut sink);
}

/// Counts embeddings of every pattern in a multi-plan.
pub fn count_multi(graph: &CsrGraph, multi: &MultiPlan) -> MineOutcome {
    count_multi_with(graph, multi, &EngineConfig::default())
}

/// Counts embeddings of every pattern in a multi-plan under an explicit
/// engine config.
pub fn count_multi_with(graph: &CsrGraph, multi: &MultiPlan, config: &EngineConfig) -> MineOutcome {
    MineOutcome {
        per_pattern: multi
            .plans()
            .iter()
            .map(|p| count_plan_with(graph, p, config))
            .collect(), // lint: allow-alloc(one vector per mining run, not per embedding)
    }
}

/// Counts embeddings for one of the paper's benchmark workloads.
pub fn count_benchmark(graph: &CsrGraph, benchmark: Benchmark) -> MineOutcome {
    count_multi(graph, &benchmark.plan())
}

/// Counts embeddings for a benchmark workload under an explicit engine
/// config.
pub fn count_benchmark_with(
    graph: &CsrGraph,
    benchmark: Benchmark,
    config: &EngineConfig,
) -> MineOutcome {
    count_multi_with(graph, &benchmark.plan(), config)
}

/// A reusable plan-execution worker: one graph, one compiled plan, and the
/// scratch memory to run any number of [`MiningTask`]s against them.
///
/// Construction is cheap; the arena warms up during the first task and is
/// reused across tasks, which is what makes one `PlanMiner` per parallel
/// worker (rather than per task) the right shape. The same lifecycle holds
/// for the worker's [`BitmapCache`]: hub bitmaps built during one task
/// stay resident for later tasks and deeper DFS levels.
///
/// Every scheduled set operation dispatches adaptively across the four
/// kernel tiers (merge / galloping / dense bitmap / SIMD block compare)
/// via [`fingers_setops::adaptive::select_tier_with`]; all tiers produce
/// identical sorted outputs, so tier choice — and therefore cache state,
/// thread count, and configuration — can never change counts.
///
/// For counting sinks ([`Sink::COUNTS_ONLY`]) with
/// `EngineConfig::fuse_terminal_counts` on (the default), the action that
/// would materialize the *leaf* candidate set instead dispatches a fused,
/// bound-pushed count kernel ([`select_count_tier`]) — the leaf set is
/// never written, and the symmetry-breaking bound trims both operands
/// before the kernel runs. Totals are bit-identical with fusion on or off;
/// listing sinks always take the materializing path.
///
/// # Invariants
///
/// The interpreter trusts two properties of compiler-produced plans, and
/// panics (rather than silently miscounting) if handed a plan violating
/// them: every level's candidate set is materialized by the previous
/// level's actions, and every `Apply` refines a set already materialized
/// at its own level. Both are structural guarantees of
/// `ExecutionPlan::compile*`; no user input can break them.
///
/// # Example
///
/// ```
/// use fingers_graph::GraphBuilder;
/// use fingers_mining::{CountSink, MiningTask, PlanMiner};
/// use fingers_pattern::{ExecutionPlan, Induced, Pattern};
///
/// let g = GraphBuilder::new()
///     .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
///     .build();
/// let plan = ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex);
/// let mut miner = PlanMiner::new(&g, &plan);
/// let mut sink = CountSink::default();
/// miner.run(MiningTask::all(&g), &mut sink);
/// assert_eq!(sink.count, 4); // K4 has 4 triangles
/// ```
#[derive(Debug)]
pub struct PlanMiner<'g, 'p> {
    graph: &'g CsrGraph,
    plan: &'p ExecutionPlan,
    arena: ScratchArena,
    mapped: Vec<VertexId>,
    /// Materialized candidate sets, indexed by target level.
    sets: Vec<Option<Vec<Elem>>>,
    /// Per-level undo stacks `(target, previous set)`, reused across roots.
    undo: Vec<Vec<(usize, Option<Vec<Elem>>)>>,
    /// Vertices eligible for the dense-bitmap tier (`None` disables it).
    /// Shared across a mining call's workers; selection runs once.
    hubs: Option<Arc<HubSet>>,
    /// This worker's resident hub bitmaps.
    cache: BitmapCache,
    /// Per-level symmetry-breaking bound sources, precomputed once per plan
    /// so the per-embedding restriction check reduces to `mapped[]` reads.
    bound_sources: Vec<BoundSource>,
    /// Whether terminal-counting levels run the fused count kernels
    /// (`EngineConfig::fuse_terminal_counts`; counting sinks only).
    fuse: bool,
    /// Whether the tier choosers may pick the SIMD block-compare kernels
    /// (`EngineConfig::simd`; ANDed with the build/CPU probe inside
    /// [`select_tier_with`]).
    simd: bool,
    /// Memory-governor window (`None` = ungoverned): publishes this
    /// worker's scratch footprint into a shared gauge at root-task
    /// boundaries and reports budget violations (see [`crate::gauge`]).
    governor: Option<GaugeScope>,
}

/// Why a governed run stopped before finishing its task. Same cooperative
/// contract for both arms: the halt was observed at a root-task boundary,
/// the sink holds an unpredictable partial tally that the caller must
/// discard, and the miner is immediately reusable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunHalt {
    /// The run's [`crate::cancel::CancelToken`] fired.
    Cancelled,
    /// The governed gauge crossed its byte budget.
    MemBudget {
        /// Metered bytes at the boundary that tripped the budget.
        used_bytes: u64,
        /// The configured budget.
        budget_bytes: u64,
    },
}

/// Where a level's symmetry-breaking lower bound comes from — hoisted out
/// of the per-embedding loop into a table built once per [`PlanMiner`].
/// Most restricted levels have exactly one bound ancestor, so the common
/// case resolves with a single indexed read instead of an iterator max
/// over `schedule(level).lower_bounds`.
#[derive(Debug, Clone)]
enum BoundSource {
    /// Unrestricted level: every candidate is eligible.
    None,
    /// Bound is the vertex mapped at one ancestor level.
    Single(usize),
    /// Bound is the max over several ancestor levels' mapped vertices.
    Max(Vec<usize>),
}

impl BoundSource {
    fn from_levels(levels: &[usize]) -> Self {
        match levels {
            [] => BoundSource::None,
            [a] => BoundSource::Single(*a),
            // lint: allow-alloc(plan-construction time, once per schedule level)
            many => BoundSource::Max(many.to_vec()),
        }
    }

    /// The level's effective lower bound for the current prefix (`None`
    /// when unrestricted).
    #[inline]
    fn resolve(&self, mapped: &[VertexId]) -> Option<VertexId> {
        match self {
            BoundSource::None => None,
            BoundSource::Single(a) => Some(mapped[*a]),
            BoundSource::Max(list) => list.iter().map(|&a| mapped[a]).max(),
        }
    }
}

impl<'g, 'p> PlanMiner<'g, 'p> {
    /// A worker for executing `plan` over `graph` with the default
    /// [`EngineConfig`].
    pub fn new(graph: &'g CsrGraph, plan: &'p ExecutionPlan) -> Self {
        Self::with_config(graph, plan, &EngineConfig::default())
    }

    /// A worker configured by `config`; identifies the hub set itself.
    /// Parallel callers that share one hub set across workers should use
    /// [`PlanMiner::with_hubs`] instead.
    pub fn with_config(
        graph: &'g CsrGraph,
        plan: &'p ExecutionPlan,
        config: &EngineConfig,
    ) -> Self {
        Self::with_hubs(graph, plan, config.hub_set(graph), config)
    }

    /// A worker using a pre-identified (possibly shared) hub set (`None`
    /// disables the bitmap tier for this worker); every other knob is read
    /// from `config`.
    pub fn with_hubs(
        graph: &'g CsrGraph,
        plan: &'p ExecutionPlan,
        hubs: Option<Arc<HubSet>>,
        config: &EngineConfig,
    ) -> Self {
        // Every construction path funnels through here, so this is the
        // debug-build gate: a plan that fails static verification would
        // make the interpreter read unmaterialized buffers or miscount.
        #[cfg(debug_assertions)]
        {
            let report = fingers_verify::verify(plan);
            assert!(report.is_sound(), "unsound execution plan:\n{report}");
        }
        let k = plan.pattern_size();
        // Level 0 has no schedule (roots are unrestricted by construction).
        let bound_sources = (0..k)
            .map(|j| {
                if j == 0 {
                    BoundSource::None
                } else {
                    BoundSource::from_levels(&plan.schedule(j).lower_bounds)
                }
            })
            .collect(); // lint: allow-alloc(one-time interpreter construction, not per embedding)
        Self {
            graph,
            plan,
            arena: ScratchArena::new(),
            // lint: allow-alloc(one-time interpreter construction, not per embedding)
            mapped: Vec::with_capacity(k),
            sets: vec![None; k], // lint: allow-alloc(one-time interpreter construction, not per embedding)
            // lint: allow-alloc(one-time interpreter construction, not per embedding)
            undo: (0..k).map(|_| Vec::new()).collect(),
            hubs,
            cache: BitmapCache::new(config.bitmap_cache_slots),
            bound_sources,
            fuse: config.fuse_terminal_counts,
            simd: config.simd,
            governor: None,
        }
    }

    /// Puts this miner under memory governance: its scratch footprint is
    /// published into `gauge` at every root-task boundary, and — when
    /// `budget` is set — a governed run ([`PlanMiner::run_governed`])
    /// aborts with [`RunHalt::MemBudget`] once the gauge (shared across
    /// all miners publishing into it) exceeds the budget. Dropping the
    /// miner releases everything it published, so the gauge returns to
    /// its prior baseline.
    pub fn attach_gauge(&mut self, gauge: MemGauge, budget: Option<u64>) {
        self.governor = Some(GaugeScope::new(gauge, budget));
    }

    /// Runs the plan DFS for every root in `task`, reporting matches to
    /// `sink`. Scratch buffers persist across calls, so running many tasks
    /// through one miner allocates no more than running one.
    pub fn run<S: Sink>(&mut self, task: MiningTask, sink: &mut S) {
        let k = self.plan.pattern_size();
        if k == 1 {
            for v in task.roots() {
                self.mapped.push(v);
                sink.embedding(&self.mapped);
                self.mapped.pop();
            }
            return;
        }
        for v in task.roots() {
            self.enter(0, v, sink);
        }
    }

    /// Like [`PlanMiner::run`], but polls `cancel` between level-0 roots
    /// and stops early once it fires. Returns `true` when the whole task
    /// completed and `false` on interruption — an interrupted task has
    /// reported an unpredictable prefix of its embeddings to `sink`, so
    /// callers must discard the sink's tally (the parallel engine does,
    /// returning [`crate::EngineError::Cancelled`]).
    ///
    /// The poll is per *root*, never per embedding: a live token costs one
    /// relaxed atomic load (plus a clock read when a deadline is armed) per
    /// level-0 vertex, preserving the engine's zero-per-embedding-overhead
    /// property. A subtree below one root is never interrupted mid-walk,
    /// so scratch state stays consistent and the miner is immediately
    /// reusable after an interruption.
    pub fn run_cancellable<S: Sink>(
        &mut self,
        task: MiningTask,
        sink: &mut S,
        cancel: &crate::cancel::CancelToken,
    ) -> bool {
        self.run_governed(task, sink, cancel).is_ok()
    }

    /// The governed superset of [`PlanMiner::run_cancellable`]: the same
    /// per-root cancellation poll, plus — when a gauge is attached via
    /// [`PlanMiner::attach_gauge`] — a footprint publish and budget check
    /// at the same boundary. Cancellation is checked before the budget, so
    /// a query that is both cancelled and over budget reports the
    /// cancellation (the caller asked for it; the budget was incidental).
    ///
    /// Both halts share the cancellation contract: `sink` holds an
    /// unpredictable partial tally the caller must discard, and the miner
    /// is immediately reusable. An ungoverned miner never returns
    /// [`RunHalt::MemBudget`], and pays nothing for the feature.
    ///
    /// # Errors
    ///
    /// [`RunHalt::Cancelled`] when the token fired, [`RunHalt::MemBudget`]
    /// when the governed gauge crossed its budget.
    pub fn run_governed<S: Sink>(
        &mut self,
        task: MiningTask,
        sink: &mut S,
        cancel: &crate::cancel::CancelToken,
    ) -> Result<(), RunHalt> {
        let k = self.plan.pattern_size();
        if k == 1 {
            for v in task.roots() {
                if cancel.is_cancelled() {
                    return Err(RunHalt::Cancelled);
                }
                self.mapped.push(v);
                sink.embedding(&self.mapped);
                self.mapped.pop();
            }
            return Ok(());
        }
        for v in task.roots() {
            if cancel.is_cancelled() {
                return Err(RunHalt::Cancelled);
            }
            self.poll_governor(sink.heap_bytes())?;
            self.enter(0, v, sink);
        }
        // Final publish so a completed task's full footprint is visible to
        // sibling workers' budget checks without waiting for this worker's
        // next claim.
        self.poll_governor(sink.heap_bytes())
    }

    /// Publishes the miner's current footprint into the attached gauge and
    /// converts a budget violation into the governed halt. No-op (and no
    /// atomics) when ungoverned.
    fn poll_governor(&mut self, sink_bytes: u64) -> Result<(), RunHalt> {
        let Some(governor) = self.governor.as_mut() else {
            return Ok(());
        };
        let footprint = self.arena.footprint_bytes() + self.cache.footprint_bytes() + sink_bytes;
        match governor.publish(footprint) {
            Some((used_bytes, budget_bytes)) => Err(RunHalt::MemBudget {
                used_bytes,
                budget_bytes,
            }),
            None => Ok(()),
        }
    }

    /// Scratch-memory statistics, for tests asserting the
    /// no-per-embedding-allocation property.
    pub fn arena(&self) -> &ScratchArena {
        &self.arena
    }

    /// Bitmap-cache statistics (hits, builds, allocation bounds), for tests
    /// asserting the cache half of the no-per-embedding-allocation
    /// property.
    pub fn bitmap_cache(&self) -> &BitmapCache {
        &self.cache
    }

    /// Matches `v` at `level`, runs the level's scheduled set ops, recurses.
    fn enter<S: Sink>(&mut self, level: usize, v: VertexId, sink: &mut S) {
        let k = self.plan.pattern_size();
        let plan = self.plan;
        self.mapped.push(v);

        let actions = plan.actions_at(level);
        // Terminal-count fusion (DESIGN.md § count fusion & bound pushing):
        // when the next level is the leaf and the sink only counts, this
        // level's *finalizing* action on the leaf set — actions are
        // target-ordered, so any op for S_{k−1} scheduled here comes last —
        // runs as a fused count kernel instead of materializing. Earlier
        // actions (including partial refinements of S_{k−1}) materialize as
        // usual; if the leaf set was finalized at an earlier level there is
        // no such action and the materializing leaf path below runs.
        let fused = if S::COUNTS_ONLY && self.fuse && level + 2 == k {
            actions
                .split_last()
                .filter(|(last, _)| last.target() + 1 == k)
        } else {
            None
        };
        let run_actions = fused.map_or(actions, |(_, rest)| rest);

        // Run the compiled actions for this level, remembering what to undo.
        // `undo[level]` is empty here: each invocation drains it before
        // returning and recursion only touches deeper levels.
        for op in run_actions {
            let target = op.target();
            let mut buf = self.arena.take();
            self.evaluate_into(op, level, &mut buf);
            let old = self.sets[target].take();
            self.undo[level].push((target, old));
            self.sets[target] = Some(buf);
        }

        if let Some((op, _)) = fused {
            sink.leaf_count(self.count_terminal(op, level));
        } else {
            let next = level + 1;
            if next < k {
                // Iterate candidates for the next level. The compiler
                // schedules every set `S_next` to be materialized by level
                // `next − 1`, so a missing set here is a plan-compiler bug,
                // not a data error.
                // §11: see the comment above — fingers-verify proves this
                // materialization statically before the engine runs.
                #[allow(clippy::expect_used)]
                let candidates = self.sets[next]
                    .take()
                    .expect("schedule materializes S_{next} by level next-1");
                let start = self.candidate_start(next, &candidates);
                if next + 1 == k {
                    // Leaf: the whole remaining run extends `mapped`.
                    sink.leaf_run(&mut self.mapped, &candidates[start..]);
                } else {
                    for &c in &candidates[start..] {
                        if self.mapped.contains(&c) {
                            continue; // embeddings map distinct vertices
                        }
                        self.enter(next, c, sink);
                    }
                }
                self.sets[next] = Some(candidates);
            }
        }

        while let Some((target, old)) = self.undo[level].pop() {
            if let Some(fresh) = std::mem::replace(&mut self.sets[target], old) {
                self.arena.recycle(fresh);
            }
        }
        self.mapped.pop();
    }

    /// First candidate index satisfying the level's symmetry-breaking lower
    /// bounds (`u_level > u_a`), found by binary search on the sorted set.
    fn candidate_start(&self, level: usize, candidates: &[Elem]) -> usize {
        match self.bound_sources[level].resolve(&self.mapped) {
            Some(b) => bound::lower_bound_start(candidates, b),
            None => 0,
        }
    }

    /// Executes a terminal level's finalizing action as a count: the number
    /// of embeddings the materializing path would have reported for this
    /// prefix — `|result above bound| − |prefix ∩ result above bound|` —
    /// with the restriction bound pushed into the operands and no output
    /// written.
    fn count_terminal(&mut self, op: &PlanOp, level: usize) -> u64 {
        let leaf = self.plan.pattern_size() - 1;
        let lower = self.bound_sources[leaf].resolve(&self.mapped);
        let current = self.mapped[level];
        match *op {
            PlanOp::Init { .. } => {
                // Leaf set = N(u_level) wholesale: no kernel needed, only
                // the bound trim and prefix-duplicate exclusion.
                let long = bound::trim(self.graph.neighbors(current), lower);
                let dup = self
                    .mapped
                    .iter()
                    .filter(|p| long.binary_search(p).is_ok())
                    .count();
                (long.len() - dup) as u64
            }
            PlanOp::InitAnti { short, .. } => count_dispatch(
                self.graph,
                self.hubs.as_deref(),
                &mut self.cache,
                SetOpKind::AntiSubtract,
                self.graph.neighbors(self.mapped[short]),
                current,
                lower,
                &self.mapped,
                self.simd,
            ),
            PlanOp::Apply { target, list, kind } => {
                // §11: same materialized-set invariant as `evaluate_into`,
                // proven statically by fingers-verify's use-before-init check.
                #[allow(clippy::expect_used)]
                let short = self.sets[target]
                    .as_ref()
                    .expect("Apply requires a materialized set");
                count_dispatch(
                    self.graph,
                    self.hubs.as_deref(),
                    &mut self.cache,
                    kind,
                    short,
                    self.mapped[list],
                    lower,
                    &self.mapped,
                    self.simd,
                )
            }
        }
    }

    /// Computes the new value of an op's target set into `out` (cleared).
    fn evaluate_into(&mut self, op: &PlanOp, level: usize, out: &mut Vec<Elem>) {
        let current = self.mapped[level];
        match *op {
            PlanOp::Init { .. } => {
                out.clear();
                out.extend_from_slice(self.graph.neighbors(current));
            }
            PlanOp::InitAnti { short, .. } => {
                // N(u_level) − N(u_short): the postponed anti-subtraction.
                let short_list = self.graph.neighbors(self.mapped[short]);
                kernel_dispatch(
                    self.graph,
                    self.hubs.as_deref(),
                    &mut self.cache,
                    SetOpKind::AntiSubtract,
                    short_list,
                    current,
                    out,
                    self.simd,
                );
            }
            PlanOp::Apply { target, list, kind } => {
                // §11: `Apply` only ever refines a set a previous op of this
                // same level materialized; fingers-verify proves the action
                // order statically. Absence is a compiler bug.
                #[allow(clippy::expect_used)] // §11: justified above
                let short = self.sets[target]
                    .as_ref()
                    .expect("Apply requires a materialized set");
                kernel_dispatch(
                    self.graph,
                    self.hubs.as_deref(),
                    &mut self.cache,
                    kind,
                    short,
                    self.mapped[list],
                    out,
                    self.simd,
                );
            }
        }
    }
}

/// Four-tier adaptive kernel dispatch for one scheduled set operation
/// whose long operand is the adjacency of `long_v`.
///
/// Tier choice is delegated to [`select_tier_with`]: the dense-bitmap tier
/// is a candidate only when `long_v` is a configured hub (its bitmap is
/// then fetched or lazily built through the worker's cache); otherwise the
/// merge/galloping crossover applies, with the SIMD block compare taking
/// the merge's balanced region when `use_simd` (the `EngineConfig::simd`
/// policy toggle) and the build/CPU probe both hold. All four tiers
/// produce identical sorted outputs, so this function is a pure
/// performance decision.
#[allow(clippy::too_many_arguments)]
fn kernel_dispatch(
    graph: &CsrGraph,
    hubs: Option<&HubSet>,
    cache: &mut BitmapCache,
    kind: SetOpKind,
    short: &[Elem],
    long_v: VertexId,
    out: &mut Vec<Elem>,
    use_simd: bool,
) {
    let long = graph.neighbors(long_v);
    let resident_words = hubs
        .filter(|h| h.contains(long_v))
        .map(|_| NeighborBitmap::words_for(graph.vertex_count()));
    match select_tier_with(kind, short.len(), long.len(), resident_words, use_simd) {
        KernelTier::Bitmap => {
            let bm = cache.get_or_build(graph, long_v);
            bitmap::apply_into(kind, short, bm, out);
        }
        KernelTier::Galloping => galloping::apply_into(kind, short, long, out),
        KernelTier::Merge => merge::apply_into(kind, short, long, out),
        KernelTier::Simd => simd::apply_into(kind, short, long, out),
    }
}

/// Fused count dispatch for a terminal level's finalizing set operation:
/// returns how many embeddings the prefix `mapped` completes, without
/// materializing the leaf set.
///
/// Bound pushing happens here: both operands are trimmed to elements
/// strictly above `lower` *before* the kernel runs (the shared
/// [`bound::trim`] convention), so restricted elements are never compared,
/// unlike the materializing path which filters the finished set. Tier
/// choice is delegated to [`select_count_tier_with`] — counting reduces
/// every kind to intersect counting, so a resident bitmap always wins (no
/// anti-subtract word-scan caveat), and the SIMD block compare counts the
/// merge's balanced region via `movemask` popcounts when `use_simd` holds.
/// The prefix-duplicate exclusion mirrors
/// `CountSink::leaf_run`: each mapped vertex that would have appeared in
/// the trimmed result is one overcount, checked by binary searches against
/// the trimmed operands (valid because the vertex is itself above the
/// bound).
#[allow(clippy::too_many_arguments)]
fn count_dispatch(
    graph: &CsrGraph,
    hubs: Option<&HubSet>,
    cache: &mut BitmapCache,
    kind: SetOpKind,
    short_full: &[Elem],
    long_v: VertexId,
    lower: Option<Elem>,
    mapped: &[VertexId],
    use_simd: bool,
) -> u64 {
    let short = bound::trim(short_full, lower);
    let long = bound::trim(graph.neighbors(long_v), lower);
    let resident = hubs.is_some_and(|h| h.contains(long_v));
    let n = match select_count_tier_with(kind, short.len(), long.len(), resident, use_simd) {
        KernelTier::Bitmap => {
            let bm = cache.get_or_build(graph, long_v);
            bitmap::count(kind, short, bm, long.len())
        }
        KernelTier::Galloping => galloping::count(kind, short, long),
        KernelTier::Merge => merge::count(kind, short, long),
        // Operands are already bound-trimmed above, so the unbounded
        // count form is the right one here (same as the other tiers).
        KernelTier::Simd => simd::count(kind, short, long),
    };
    let dup = mapped
        .iter()
        .filter(|&&p| {
            lower.is_none_or(|b| p > b) && {
                let in_short = short.binary_search(&p).is_ok();
                let in_long = long.binary_search(&p).is_ok();
                match kind {
                    SetOpKind::Intersect => in_short && in_long,
                    SetOpKind::Subtract => in_short && !in_long,
                    SetOpKind::AntiSubtract => in_long && !in_short,
                }
            }
        })
        .count() as u64;
    n - dup
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingers_graph::gen::erdos_renyi;
    use fingers_graph::GraphBuilder;
    use fingers_pattern::{Induced, Pattern};

    fn complete(n: usize) -> CsrGraph {
        let mut edges = Vec::new();
        for a in 0..n as VertexId {
            for b in (a + 1)..n as VertexId {
                edges.push((a, b));
            }
        }
        GraphBuilder::new().edges(edges).build()
    }

    fn choose(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let mut r = 1u64;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn triangles_in_complete_graphs() {
        for n in 3..=8 {
            let g = complete(n);
            let got = count_benchmark(&g, Benchmark::Tc).total();
            assert_eq!(got, choose(n as u64, 3), "K{n}");
        }
    }

    #[test]
    fn cliques_in_complete_graphs() {
        let g = complete(8);
        assert_eq!(count_benchmark(&g, Benchmark::Cl4).total(), choose(8, 4));
        assert_eq!(count_benchmark(&g, Benchmark::Cl5).total(), choose(8, 5));
    }

    #[test]
    fn vertex_induced_cycles_absent_in_complete_graphs() {
        // Every 4-subset of K_n has chords, so no *vertex-induced* 4-cycle.
        let g = complete(6);
        assert_eq!(count_benchmark(&g, Benchmark::Cyc).total(), 0);
        // Same for tailed triangles and diamonds (missing edges required).
        assert_eq!(count_benchmark(&g, Benchmark::Tt).total(), 0);
        assert_eq!(count_benchmark(&g, Benchmark::Dia).total(), 0);
    }

    #[test]
    fn edge_induced_cycles_in_complete_graph() {
        // Each 4-subset of K_n contains 3 (edge-induced) 4-cycles.
        let g = complete(6);
        let plan = ExecutionPlan::compile(&Pattern::four_cycle(), Induced::Edge);
        assert_eq!(count_plan(&g, &plan), 3 * choose(6, 4));
    }

    #[test]
    fn wedges_in_star() {
        // Star with c leaves: C(c, 2) wedges (vertex-induced), no triangles.
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (0, 4)])
            .build();
        let out = count_benchmark(&g, Benchmark::Mc3);
        assert_eq!(out.per_pattern, vec![0, 6]);
    }

    #[test]
    fn motif_census_covers_all_connected_triads() {
        // In any graph, #triangles + #wedges = number of connected 3-vertex
        // induced subgraphs. Cross-check on a random graph by direct count.
        let g = erdos_renyi(40, 120, 5);
        let out = count_benchmark(&g, Benchmark::Mc3);
        let mut triangles = 0u64;
        let mut wedges = 0u64;
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                for c in (b + 1)..40 {
                    let e = [g.has_edge(a, b), g.has_edge(a, c), g.has_edge(b, c)];
                    match e.iter().filter(|&&x| x).count() {
                        3 => triangles += 1,
                        2 => wedges += 1,
                        _ => {}
                    }
                }
            }
        }
        assert_eq!(out.per_pattern, vec![triangles, wedges]);
    }

    #[test]
    fn figure_1_tailed_triangle_embeddings() {
        // A Figure-1-style input graph: triangle {1, 2, 3}, with 4 and 5
        // hanging off it so that {2, 1, 3, 5} is a tailed-triangle
        // embedding (u0=2, {u1,u2}={1,3}, tail u3=5 adjacent only to 2) —
        // the example embedding the paper's Section 2.1 names.
        let g = GraphBuilder::new()
            .edges([(1, 2), (1, 3), (2, 3), (2, 4), (2, 5), (3, 4)])
            .build();
        let plan = ExecutionPlan::compile(&Pattern::tailed_triangle(), Induced::Vertex);
        let mut found = Vec::new();
        list_plan(&g, &plan, &mut |emb| found.push(emb.to_vec()));
        assert!(
            found.iter().any(|e| e[0] == 2 && e[3] == 5 && {
                let mut tri = [e[1], e[2]];
                tri.sort_unstable();
                tri == [1, 3]
            }),
            "expected embedding 2-{{1,3}}-5 in {found:?}"
        );
        // Each embedding's vertices are distinct.
        for e in &found {
            let mut s = e.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 4, "duplicate vertices in {e:?}");
        }
    }

    #[test]
    fn single_vertex_pattern_counts_vertices() {
        let g = erdos_renyi(10, 12, 1);
        let plan = ExecutionPlan::compile(&Pattern::from_edges_named(1, &[], "v"), Induced::Vertex);
        assert_eq!(count_plan(&g, &plan), 10);
    }

    #[test]
    fn empty_graph_counts_zero() {
        let g = GraphBuilder::new().vertex_count(5).build();
        for b in Benchmark::ALL {
            assert_eq!(count_benchmark(&g, b).total(), 0, "{b}");
        }
    }

    #[test]
    fn listed_embeddings_satisfy_restrictions() {
        let g = erdos_renyi(25, 90, 13);
        let plan = ExecutionPlan::compile(&Pattern::four_cycle(), Induced::Vertex);
        let mut count = 0u64;
        list_plan(&g, &plan, &mut |emb| {
            count += 1;
            for &(a, b) in plan.restrictions() {
                assert!(
                    emb[a] < emb[b],
                    "restriction u{a} < u{b} violated by {emb:?}"
                );
            }
        });
        assert_eq!(count, count_plan(&g, &plan));
    }

    #[test]
    fn listed_embeddings_have_pattern_edges() {
        let g = erdos_renyi(20, 70, 21);
        for p in [Pattern::diamond(), Pattern::tailed_triangle()] {
            let plan = ExecutionPlan::compile(&p, Induced::Vertex);
            list_plan(&g, &plan, &mut |emb| {
                let pat = plan.pattern();
                for a in 0..pat.size() {
                    for b in (a + 1)..pat.size() {
                        assert_eq!(
                            pat.are_adjacent(a, b),
                            g.has_edge(emb[a], emb[b]),
                            "vertex-induced adjacency mismatch at ({a},{b}) in {emb:?}"
                        );
                    }
                }
            });
        }
    }

    #[test]
    fn wedges_on_paths_closed_form() {
        // A path on n vertices has exactly n−2 wedges and nothing else.
        for n in [3u32, 5, 9] {
            let g = GraphBuilder::new()
                .edges((0..n - 1).map(|i| (i, i + 1)))
                .build();
            let out = count_benchmark(&g, Benchmark::Mc3);
            assert_eq!(out.per_pattern, vec![0, (n - 2) as u64], "P{n}");
        }
    }

    #[test]
    fn cycles_on_rings_closed_form() {
        // C4 has one 4-cycle; C5 has none (vertex-induced 4-cycles need an
        // induced square); C6 likewise none, but C6 has 4-paths etc.
        let ring = |n: u32| {
            GraphBuilder::new()
                .edges((0..n).map(|i| (i, (i + 1) % n)))
                .build()
        };
        assert_eq!(count_benchmark(&ring(4), Benchmark::Cyc).total(), 1);
        assert_eq!(count_benchmark(&ring(5), Benchmark::Cyc).total(), 0);
        assert_eq!(count_benchmark(&ring(6), Benchmark::Cyc).total(), 0);
    }

    #[test]
    fn disconnected_components_mine_independently() {
        // Two disjoint K4s: counts double a single K4's.
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    edges.push((base + a, base + b));
                }
            }
        }
        let g = GraphBuilder::new().edges(edges).build();
        assert_eq!(count_benchmark(&g, Benchmark::Tc).total(), 8);
        assert_eq!(count_benchmark(&g, Benchmark::Cl4).total(), 2);
    }

    #[test]
    fn task_union_equals_full_run() {
        // Splitting the root range into tasks partitions the embeddings.
        let g = erdos_renyi(30, 110, 4);
        let plan = ExecutionPlan::compile(&Pattern::diamond(), Induced::Vertex);
        let full = count_plan(&g, &plan);
        let mut miner = PlanMiner::new(&g, &plan);
        let mut sum = 0u64;
        for task in MiningTask::partition(g.vertex_count(), 7) {
            let mut sink = CountSink::default();
            miner.run(task, &mut sink);
            sum += sink.count;
        }
        assert_eq!(sum, full);
    }

    #[test]
    fn no_per_embedding_allocation() {
        // The arena creates at most one buffer per scheduled op per level —
        // never one per embedding. K8 Cl4 has 70 embeddings and far more
        // partial ones; the arena must stay in the single digits.
        let g = complete(8);
        let plan = ExecutionPlan::compile(&Pattern::clique(4), Induced::Vertex);
        let mut miner = PlanMiner::new(&g, &plan);
        let mut sink = CountSink::default();
        miner.run(MiningTask::all(&g), &mut sink);
        assert_eq!(sink.count, choose(8, 4));
        let ops: usize = (0..plan.pattern_size())
            .map(|l| plan.actions_at(l).len())
            .sum();
        assert!(
            miner.arena().fresh_buffers() <= ops.max(1),
            "{} fresh buffers for {} scheduled ops",
            miner.arena().fresh_buffers(),
            ops
        );
        // A second full run on the warmed arena must allocate nothing new.
        let before = miner.arena().fresh_buffers();
        let mut sink2 = CountSink::default();
        miner.run(MiningTask::all(&g), &mut sink2);
        assert_eq!(sink2.count, sink.count);
        assert_eq!(miner.arena().fresh_buffers(), before);
        // Same discipline for the bitmap tier: storage allocations are
        // bounded by the cache capacity, never by embeddings, and a warmed
        // cache serves repeat runs from residency.
        let cache = miner.bitmap_cache();
        assert!(
            cache.fresh_bitmaps() <= cache.capacity(),
            "{} bitmap allocations exceed capacity {}",
            cache.fresh_bitmaps(),
            cache.capacity()
        );
        assert!(
            cache.hits() > 0,
            "a K8 clique run must reuse hub bitmaps across embeddings"
        );
    }

    #[test]
    fn fused_counts_match_listing() {
        // The listing path is fusion-blind (FnSink never counts), so the
        // number of listed embeddings is an independent oracle for the
        // fused count — including patterns whose terminal action is an
        // Init (path), InitAnti, or Apply of every kind.
        let g = erdos_renyi(35, 140, 9);
        for p in [
            Pattern::triangle(),
            Pattern::clique(4),
            Pattern::four_cycle(),
            Pattern::tailed_triangle(),
            Pattern::diamond(),
            Pattern::from_edges_named(4, &[(0, 1), (1, 2), (2, 3)], "path4"),
            Pattern::from_edges_named(4, &[(0, 1), (0, 2), (0, 3)], "star4"),
        ] {
            for induced in [Induced::Vertex, Induced::Edge] {
                let plan = ExecutionPlan::compile(&p, induced);
                let mut listed = 0u64;
                list_plan(&g, &plan, &mut |_| listed += 1);
                assert_eq!(
                    count_plan_with(&g, &plan, &EngineConfig::default()),
                    listed,
                    "fused count vs listing for {p:?} ({induced:?})"
                );
            }
        }
    }

    #[test]
    fn fused_runs_keep_allocation_discipline() {
        // Fusion removes the leaf buffer entirely; what remains must still
        // obey the no-per-embedding-allocation property.
        let g = complete(8);
        let plan = ExecutionPlan::compile(&Pattern::clique(4), Induced::Vertex);
        let mut miner = PlanMiner::new(&g, &plan);
        let mut sink = CountSink::default();
        miner.run(MiningTask::all(&g), &mut sink);
        assert_eq!(sink.count, choose(8, 4));
        let before = miner.arena().fresh_buffers();
        let mut sink2 = CountSink::default();
        miner.run(MiningTask::all(&g), &mut sink2);
        assert_eq!(sink2.count, sink.count);
        assert_eq!(miner.arena().fresh_buffers(), before);
    }

    #[test]
    fn configs_agree_on_counts() {
        // Bit-identical counts across every kernel-tier configuration.
        let g = erdos_renyi(60, 600, 77);
        for b in Benchmark::ALL {
            let baseline = count_benchmark_with(&g, b, &EngineConfig::without_bitmap());
            for cfg in [
                EngineConfig::default(),
                EngineConfig::with_bitmap_hubs(1),
                EngineConfig::without_count_fusion(),
                EngineConfig::without_simd(),
                EngineConfig {
                    bitmap_hubs: 8,
                    bitmap_cache_slots: 2,
                    ..EngineConfig::default()
                },
                EngineConfig {
                    bitmap_hubs: 0,
                    fuse_terminal_counts: false,
                    ..EngineConfig::default()
                },
                EngineConfig {
                    bitmap_hubs: 0,
                    fuse_terminal_counts: false,
                    simd: false,
                    ..EngineConfig::default()
                },
            ] {
                assert_eq!(
                    count_benchmark_with(&g, b, &cfg).per_pattern,
                    baseline.per_pattern,
                    "{b} under {cfg:?}"
                );
            }
        }
    }
}
